//! The compiled JSON Schema AST.
//!
//! One [`SchemaNode`] carries every validation keyword of the draft-04/06
//! core. Absent keywords impose no constraint, so the zero value of the
//! node accepts everything — exactly the formal semantics' treatment of the
//! empty schema `{}`.

use jsonx_data::{Kind, Number, Value};
use jsonx_regex::Regex;
use std::sync::Arc;

/// A compiled schema: the boolean schemas `true`/`false`, or a keyword node.
///
/// Cloning is cheap (`Arc`), which is what lets `$ref` targets be shared.
#[derive(Debug, Clone)]
pub enum Schema {
    /// `true` or `{}` — accepts every value.
    Any,
    /// `false` — rejects every value.
    Never,
    /// A constraining schema object.
    Node(Arc<SchemaNode>),
}

impl Schema {
    /// Wraps a node.
    pub fn node(node: SchemaNode) -> Schema {
        Schema::Node(Arc::new(node))
    }
}

/// A `pattern` keyword: the source text plus its compiled matcher.
#[derive(Debug, Clone)]
pub struct CompiledPattern {
    /// The original pattern text (for error messages and printing).
    pub source: String,
    /// The compiled automaton.
    pub regex: Regex,
}

/// The `items` keyword: a single schema for all elements, or a positional
/// tuple of schemas.
#[derive(Debug, Clone)]
pub enum Items {
    /// `"items": { … }` — every element must match.
    All(Schema),
    /// `"items": [ … ]` — element *i* must match schema *i*; extras fall to
    /// `additionalItems`.
    Tuple(Vec<Schema>),
}

/// One entry of the `dependencies` keyword.
#[derive(Debug, Clone)]
pub enum Dependency {
    /// Property dependency: if the key is present, these keys must be too
    /// (Joi's `with` constraint is the same idea).
    Keys(Vec<String>),
    /// Schema dependency: if the key is present, the whole object must also
    /// match this schema.
    Schema(Schema),
}

/// All validation keywords of one schema object.
///
/// `Default` is the unconstrained node (equivalent to [`Schema::Any`]).
#[derive(Debug, Clone, Default)]
pub struct SchemaNode {
    // -- general ---------------------------------------------------------
    /// `type`: admissible kinds (empty = unconstrained). `integer` and
    /// `number` follow the spec: `number` admits integers.
    pub types: Option<Vec<Kind>>,
    /// `enum`: the value must equal one member (canonical equality).
    pub enumeration: Option<Vec<Value>>,
    /// `const`: the value must equal this (draft-06).
    pub const_value: Option<Value>,

    // -- combinators (the union/intersection/negation types of §2) --------
    /// `allOf`: every subschema must accept.
    pub all_of: Vec<Schema>,
    /// `anyOf`: at least one subschema must accept (union type).
    pub any_of: Vec<Schema>,
    /// `oneOf`: exactly one subschema must accept.
    pub one_of: Vec<Schema>,
    /// `not`: the subschema must reject (negation type).
    pub not: Option<Schema>,
    /// `if`: condition for `then`/`else` (draft-07 conditional applicator).
    pub if_schema: Option<Schema>,
    /// `then`: applied when `if` accepts.
    pub then_schema: Option<Schema>,
    /// `else`: applied when `if` rejects.
    pub else_schema: Option<Schema>,

    // -- string ------------------------------------------------------------
    /// `minLength` in Unicode scalar values.
    pub min_length: Option<u64>,
    /// `maxLength` in Unicode scalar values.
    pub max_length: Option<u64>,
    /// `pattern`: unanchored regex search.
    pub pattern: Option<CompiledPattern>,
    /// `format`: annotation; enforced only when the validator opts in.
    pub format: Option<String>,

    // -- number ------------------------------------------------------------
    /// `minimum` (inclusive).
    pub minimum: Option<Number>,
    /// `maximum` (inclusive).
    pub maximum: Option<Number>,
    /// `exclusiveMinimum` (numeric, draft-06 form).
    pub exclusive_minimum: Option<Number>,
    /// `exclusiveMaximum` (numeric, draft-06 form).
    pub exclusive_maximum: Option<Number>,
    /// `multipleOf` (must be positive).
    pub multiple_of: Option<Number>,

    // -- array -------------------------------------------------------------
    /// `items`.
    pub items: Option<Items>,
    /// `additionalItems` (only meaningful with tuple `items`).
    pub additional_items: Option<Schema>,
    /// `minItems`.
    pub min_items: Option<u64>,
    /// `maxItems`.
    pub max_items: Option<u64>,
    /// `uniqueItems`.
    pub unique_items: bool,
    /// `contains`: at least one element matches (draft-06).
    pub contains: Option<Schema>,

    // -- object ------------------------------------------------------------
    /// `properties`.
    pub properties: Vec<(String, Schema)>,
    /// `patternProperties`.
    pub pattern_properties: Vec<(CompiledPattern, Schema)>,
    /// `additionalProperties`: schema for fields matched by neither
    /// `properties` nor `patternProperties`.
    pub additional_properties: Option<Schema>,
    /// `required`.
    pub required: Vec<String>,
    /// `minProperties`.
    pub min_properties: Option<u64>,
    /// `maxProperties`.
    pub max_properties: Option<u64>,
    /// `propertyNames`: every key (as a string value) must match (draft-06).
    pub property_names: Option<Schema>,
    /// `dependencies` (the co-occurrence constraints Joi popularised).
    pub dependencies: Vec<(String, Dependency)>,

    // -- reference / metadata ----------------------------------------------
    /// `$ref`: an intra-document JSON Pointer (`#`, `#/definitions/x`, …).
    /// When present, the spec says sibling keywords are ignored.
    pub reference: Option<String>,
    /// `title` (annotation only).
    pub title: Option<String>,
    /// `description` (annotation only).
    pub description: Option<String>,
}

impl SchemaNode {
    /// True when the node constrains nothing (annotations aside).
    pub fn is_unconstrained(&self) -> bool {
        self.types.is_none()
            && self.enumeration.is_none()
            && self.const_value.is_none()
            && self.all_of.is_empty()
            && self.any_of.is_empty()
            && self.one_of.is_empty()
            && self.not.is_none()
            && self.if_schema.is_none()
            && self.then_schema.is_none()
            && self.else_schema.is_none()
            && self.min_length.is_none()
            && self.max_length.is_none()
            && self.pattern.is_none()
            && self.format.is_none()
            && self.minimum.is_none()
            && self.maximum.is_none()
            && self.exclusive_minimum.is_none()
            && self.exclusive_maximum.is_none()
            && self.multiple_of.is_none()
            && self.items.is_none()
            && self.additional_items.is_none()
            && self.min_items.is_none()
            && self.max_items.is_none()
            && !self.unique_items
            && self.contains.is_none()
            && self.properties.is_empty()
            && self.pattern_properties.is_empty()
            && self.additional_properties.is_none()
            && self.required.is_empty()
            && self.min_properties.is_none()
            && self.max_properties.is_none()
            && self.property_names.is_none()
            && self.dependencies.is_empty()
            && self.reference.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_node_is_unconstrained() {
        assert!(SchemaNode::default().is_unconstrained());
    }

    #[test]
    fn any_keyword_breaks_unconstrained() {
        let node = SchemaNode {
            required: vec!["x".into()],
            ..Default::default()
        };
        assert!(!node.is_unconstrained());
        let node = SchemaNode {
            unique_items: true,
            ..Default::default()
        };
        assert!(!node.is_unconstrained());
    }

    #[test]
    fn schema_clone_is_shallow() {
        let s = Schema::node(SchemaNode::default());
        let t = s.clone();
        if let (Schema::Node(a), Schema::Node(b)) = (&s, &t) {
            assert!(Arc::ptr_eq(a, b));
        } else {
            panic!("expected nodes");
        }
    }
}
