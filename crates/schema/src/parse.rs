//! Schema document compilation.
//!
//! [`CompiledSchema::compile`] turns a JSON value (the schema document)
//! into the [`Schema`] AST, validating keyword shapes along the way and
//! pre-compiling every `pattern` / `patternProperties` regex, then lowers
//! the AST into the flat validation IR of [`crate::ir`]. Every `$ref`
//! reachable from the root is resolved and compiled **at compile time**
//! (recursive schemas included, via placeholder slots — no fixpoint
//! pass); validation-time resolution is a plain table lookup, and the IR
//! path skips even that by carrying arena indices.

use crate::ast::{CompiledPattern, Dependency, Items, Schema, SchemaNode};
use crate::errors::SchemaError;
use crate::ir::{self, Ir};
use jsonx_data::{Kind, Number, Pointer, Value};
use jsonx_regex::Regex;
use parking_lot::Mutex;
use std::collections::HashMap;

/// A compiled schema document, ready to validate instances.
#[derive(Debug)]
pub struct CompiledSchema {
    /// Compiled root schema.
    root: Schema,
    /// The original document, kept for `$ref` target lookup.
    source: Value,
    /// The flattened validation IR (pre-resolved refs, sorted property
    /// tables, pattern slots) driving the fail-fast path.
    ir: Ir,
    /// Every reference reachable from the root, resolved at compile time —
    /// including failed resolutions, so the error path never re-walks the
    /// document for a reference already known to be bad.
    ref_table: HashMap<String, Result<Schema, SchemaError>>,
    /// Fallback memo for references *not* reachable from the root (only
    /// hit through the public [`resolve_ref`](Self::resolve_ref) API).
    ref_cache: Mutex<HashMap<String, Schema>>,
}

impl CompiledSchema {
    /// Compiles a schema document.
    pub fn compile(document: &Value) -> Result<CompiledSchema, SchemaError> {
        let root = compile_schema(document, "#")?;
        let (ir, ref_table) = ir::build(&root, document);
        Ok(CompiledSchema {
            root,
            source: document.clone(),
            ir,
            ref_table,
            ref_cache: Mutex::new(HashMap::new()),
        })
    }

    /// The compiled root schema.
    pub fn root(&self) -> &Schema {
        &self.root
    }

    /// The lowered validation IR.
    pub(crate) fn ir(&self) -> &Ir {
        &self.ir
    }

    /// The root-level field names the fail-fast verdict of this schema
    /// can depend on when the document is an object, or `None` when the
    /// schema inspects objects in ways projection cannot preserve
    /// (combinators, enum/const, `patternProperties`, property counts,
    /// constraining `additionalProperties`, …).
    ///
    /// This is the validation side of projection pushdown: a streaming
    /// driver may skip-parse every root field outside the returned set
    /// and still produce verdicts identical to validating full documents.
    pub fn root_projection(&self) -> Option<Vec<String>> {
        self.ir.root_projection()
    }

    /// Resolves and compiles a `$ref` target. `reference` must be an
    /// intra-document fragment: `#` or `#/<json-pointer>`.
    ///
    /// References reachable from the root were resolved at compile time,
    /// so this is a table lookup returning a cheap (`Arc`) clone; novel
    /// references (possible only through this public API) fall back to
    /// on-demand resolution with its own memo.
    pub fn resolve_ref(&self, reference: &str) -> Result<Schema, SchemaError> {
        if let Some(resolved) = self.ref_table.get(reference) {
            return resolved.clone();
        }
        if let Some(hit) = self.ref_cache.lock().get(reference) {
            return Ok(hit.clone());
        }
        let compiled = resolve_and_compile(&self.source, reference)?;
        self.ref_cache
            .lock()
            .insert(reference.to_string(), compiled.clone());
        Ok(compiled)
    }
}

/// Resolves `reference` against `source` and compiles the target in
/// place, without cloning the target subtree.
pub(crate) fn resolve_and_compile(source: &Value, reference: &str) -> Result<Schema, SchemaError> {
    let Some(fragment) = reference.strip_prefix('#') else {
        return Err(SchemaError::new(
            reference,
            "only intra-document references ('#...') are supported",
        ));
    };
    let pointer = percent_decode(fragment);
    let target = if pointer.is_empty() {
        source
    } else {
        let ptr = Pointer::parse(&pointer)
            .map_err(|e| SchemaError::new(reference, format!("bad pointer: {e}")))?;
        ptr.resolve(source)
            .ok_or_else(|| SchemaError::new(reference, "reference target not found"))?
    };
    compile_schema(target, reference)
}

/// Decodes the small set of percent-escapes pointers in fragments need.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
            if let Some(v) = hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                out.push(v);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8(out).unwrap_or_else(|_| s.to_string())
}

/// Compiles one schema value (recursively).
pub fn compile_schema(value: &Value, path: &str) -> Result<Schema, SchemaError> {
    match value {
        Value::Bool(true) => Ok(Schema::Any),
        Value::Bool(false) => Ok(Schema::Never),
        Value::Obj(obj) => {
            let mut node = SchemaNode::default();
            let sub = |key: &str| format!("{path}/{key}");

            for (key, val) in obj.iter() {
                match key {
                    "type" => node.types = Some(parse_types(val, &sub(key))?),
                    "enum" => {
                        let arr = expect_array(val, &sub(key))?;
                        if arr.is_empty() {
                            return Err(SchemaError::new(sub(key), "enum must be non-empty"));
                        }
                        node.enumeration = Some(arr.to_vec());
                    }
                    "const" => node.const_value = Some(val.clone()),
                    "allOf" => node.all_of = parse_schema_array(val, &sub(key))?,
                    "anyOf" => node.any_of = parse_schema_array(val, &sub(key))?,
                    "oneOf" => node.one_of = parse_schema_array(val, &sub(key))?,
                    "not" => node.not = Some(compile_schema(val, &sub(key))?),
                    "if" => node.if_schema = Some(compile_schema(val, &sub(key))?),
                    "then" => node.then_schema = Some(compile_schema(val, &sub(key))?),
                    "else" => node.else_schema = Some(compile_schema(val, &sub(key))?),
                    "minLength" => node.min_length = Some(expect_count(val, &sub(key))?),
                    "maxLength" => node.max_length = Some(expect_count(val, &sub(key))?),
                    "pattern" => node.pattern = Some(compile_pattern(val, &sub(key))?),
                    "format" => {
                        node.format = Some(expect_string(val, &sub(key))?.to_string());
                    }
                    "minimum" => node.minimum = Some(expect_number(val, &sub(key))?),
                    "maximum" => node.maximum = Some(expect_number(val, &sub(key))?),
                    "exclusiveMinimum" => {
                        node.exclusive_minimum = Some(expect_number(val, &sub(key))?)
                    }
                    "exclusiveMaximum" => {
                        node.exclusive_maximum = Some(expect_number(val, &sub(key))?)
                    }
                    "multipleOf" => {
                        let n = expect_number(val, &sub(key))?;
                        if n.as_f64() <= 0.0 {
                            return Err(SchemaError::new(sub(key), "multipleOf must be > 0"));
                        }
                        node.multiple_of = Some(n);
                    }
                    "items" => {
                        node.items = Some(match val {
                            Value::Arr(schemas) => {
                                let mut tuple = Vec::with_capacity(schemas.len());
                                for (i, s) in schemas.iter().enumerate() {
                                    tuple.push(compile_schema(s, &format!("{path}/items/{i}"))?);
                                }
                                Items::Tuple(tuple)
                            }
                            other => Items::All(compile_schema(other, &sub(key))?),
                        });
                    }
                    "additionalItems" => {
                        node.additional_items = Some(compile_schema(val, &sub(key))?)
                    }
                    "minItems" => node.min_items = Some(expect_count(val, &sub(key))?),
                    "maxItems" => node.max_items = Some(expect_count(val, &sub(key))?),
                    "uniqueItems" => {
                        node.unique_items = val
                            .as_bool()
                            .ok_or_else(|| SchemaError::new(sub(key), "expected a boolean"))?;
                    }
                    "contains" => node.contains = Some(compile_schema(val, &sub(key))?),
                    "properties" => {
                        let props = expect_object(val, &sub(key))?;
                        for (name, s) in props.iter() {
                            let compiled = compile_schema(s, &format!("{path}/properties/{name}"))?;
                            node.properties.push((name.to_string(), compiled));
                        }
                    }
                    "patternProperties" => {
                        let props = expect_object(val, &sub(key))?;
                        for (pat, s) in props.iter() {
                            let compiled_pat = compile_pattern(
                                &Value::Str(pat.to_string()),
                                &format!("{path}/patternProperties/{pat}"),
                            )?;
                            let compiled =
                                compile_schema(s, &format!("{path}/patternProperties/{pat}"))?;
                            node.pattern_properties.push((compiled_pat, compiled));
                        }
                    }
                    "additionalProperties" => {
                        node.additional_properties = Some(compile_schema(val, &sub(key))?)
                    }
                    "required" => {
                        let arr = expect_array(val, &sub(key))?;
                        let mut names = Vec::with_capacity(arr.len());
                        for item in arr {
                            names.push(expect_string(item, &sub(key))?.to_string());
                        }
                        node.required = names;
                    }
                    "minProperties" => node.min_properties = Some(expect_count(val, &sub(key))?),
                    "maxProperties" => node.max_properties = Some(expect_count(val, &sub(key))?),
                    "propertyNames" => node.property_names = Some(compile_schema(val, &sub(key))?),
                    "dependencies" => {
                        let deps = expect_object(val, &sub(key))?;
                        for (name, spec) in deps.iter() {
                            let dep = match spec {
                                Value::Arr(keys) => {
                                    let mut names = Vec::with_capacity(keys.len());
                                    for k in keys {
                                        names.push(
                                            expect_string(
                                                k,
                                                &format!("{path}/dependencies/{name}"),
                                            )?
                                            .to_string(),
                                        );
                                    }
                                    Dependency::Keys(names)
                                }
                                other => Dependency::Schema(compile_schema(
                                    other,
                                    &format!("{path}/dependencies/{name}"),
                                )?),
                            };
                            node.dependencies.push((name.to_string(), dep));
                        }
                    }
                    "$ref" => {
                        node.reference = Some(expect_string(val, &sub(key))?.to_string());
                    }
                    "title" => node.title = Some(expect_string(val, &sub(key))?.to_string()),
                    "description" => {
                        node.description = Some(expect_string(val, &sub(key))?.to_string())
                    }
                    // `definitions`, `$schema`, `$id`, `default`, `examples`
                    // and unknown keywords are non-validating; the raw
                    // document stays available for `$ref` resolution.
                    _ => {}
                }
            }
            if node.is_unconstrained() {
                Ok(Schema::Any)
            } else {
                Ok(Schema::node(node))
            }
        }
        other => Err(SchemaError::new(
            path,
            format!(
                "a schema must be an object or boolean, found {}",
                other.kind()
            ),
        )),
    }
}

fn parse_types(val: &Value, path: &str) -> Result<Vec<Kind>, SchemaError> {
    let parse_one = |v: &Value| -> Result<Kind, SchemaError> {
        let name = v
            .as_str()
            .ok_or_else(|| SchemaError::new(path, "type must be a string"))?;
        Kind::from_name(name)
            .ok_or_else(|| SchemaError::new(path, format!("unknown type '{name}'")))
    };
    match val {
        Value::Arr(items) => {
            if items.is_empty() {
                return Err(SchemaError::new(path, "type array must be non-empty"));
            }
            items.iter().map(parse_one).collect()
        }
        other => Ok(vec![parse_one(other)?]),
    }
}

fn parse_schema_array(val: &Value, path: &str) -> Result<Vec<Schema>, SchemaError> {
    let arr = expect_array(val, path)?;
    if arr.is_empty() {
        return Err(SchemaError::new(
            path,
            "must be a non-empty array of schemas",
        ));
    }
    arr.iter()
        .enumerate()
        .map(|(i, s)| compile_schema(s, &format!("{path}/{i}")))
        .collect()
}

fn compile_pattern(val: &Value, path: &str) -> Result<CompiledPattern, SchemaError> {
    let source = expect_string(val, path)?;
    let regex =
        Regex::compile(source).map_err(|e| SchemaError::new(path, format!("bad pattern: {e}")))?;
    Ok(CompiledPattern {
        source: source.to_string(),
        regex,
    })
}

fn expect_string<'v>(val: &'v Value, path: &str) -> Result<&'v str, SchemaError> {
    val.as_str()
        .ok_or_else(|| SchemaError::new(path, "expected a string"))
}

fn expect_array<'v>(val: &'v Value, path: &str) -> Result<&'v [Value], SchemaError> {
    val.as_array()
        .ok_or_else(|| SchemaError::new(path, "expected an array"))
}

fn expect_object<'v>(val: &'v Value, path: &str) -> Result<&'v jsonx_data::Object, SchemaError> {
    val.as_object()
        .ok_or_else(|| SchemaError::new(path, "expected an object"))
}

fn expect_number(val: &Value, path: &str) -> Result<Number, SchemaError> {
    val.as_number()
        .copied()
        .ok_or_else(|| SchemaError::new(path, "expected a number"))
}

fn expect_count(val: &Value, path: &str) -> Result<u64, SchemaError> {
    match val.as_i64() {
        Some(i) if i >= 0 => Ok(i as u64),
        _ => Err(SchemaError::new(path, "expected a non-negative integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    #[test]
    fn boolean_schemas() {
        assert!(matches!(
            compile_schema(&json!(true), "#").unwrap(),
            Schema::Any
        ));
        assert!(matches!(
            compile_schema(&json!(false), "#").unwrap(),
            Schema::Never
        ));
        assert!(matches!(
            compile_schema(&json!({}), "#").unwrap(),
            Schema::Any
        ));
    }

    #[test]
    fn non_schema_values_rejected() {
        assert!(compile_schema(&json!(3), "#").is_err());
        assert!(compile_schema(&json!("s"), "#").is_err());
        assert!(compile_schema(&json!([1]), "#").is_err());
    }

    #[test]
    fn keyword_shape_validation() {
        for bad in [
            json!({"type": "strang"}),
            json!({"type": []}),
            json!({"type": 3}),
            json!({"minLength": -1}),
            json!({"minLength": 1.5}),
            json!({"enum": []}),
            json!({"multipleOf": 0}),
            json!({"allOf": []}),
            json!({"required": [1]}),
            json!({"uniqueItems": "yes"}),
            json!({"pattern": "["}),
            json!({"properties": []}),
        ] {
            assert!(
                CompiledSchema::compile(&bad).is_err(),
                "expected {bad} to be rejected"
            );
        }
    }

    #[test]
    fn error_paths_are_pointers() {
        let err = CompiledSchema::compile(&json!({
            "properties": { "a": { "minimum": "x" } }
        }))
        .unwrap_err();
        assert_eq!(err.schema_path, "#/properties/a/minimum");
    }

    #[test]
    fn ref_resolution() {
        let doc = json!({
            "definitions": { "pos": { "type": "integer", "minimum": 1 } },
            "$ref": "#/definitions/pos"
        });
        let compiled = CompiledSchema::compile(&doc).unwrap();
        let target = compiled.resolve_ref("#/definitions/pos").unwrap();
        assert!(matches!(target, Schema::Node(_)));
        // Memoized: second resolution hits the cache.
        let again = compiled.resolve_ref("#/definitions/pos").unwrap();
        if let (Schema::Node(a), Schema::Node(b)) = (&target, &again) {
            assert!(std::sync::Arc::ptr_eq(a, b));
        }
    }

    #[test]
    fn ref_errors() {
        let compiled = CompiledSchema::compile(&json!({"$ref": "#/nope"})).unwrap();
        assert!(compiled.resolve_ref("#/nope").is_err());
        assert!(compiled
            .resolve_ref("http://elsewhere/schema.json")
            .is_err());
    }

    #[test]
    fn root_ref_resolves_to_whole_document() {
        let compiled = CompiledSchema::compile(&json!({"type": "array"})).unwrap();
        let target = compiled.resolve_ref("#").unwrap();
        assert!(matches!(target, Schema::Node(_)));
    }

    #[test]
    fn percent_encoded_pointer() {
        let doc = json!({
            "definitions": { "a b": { "type": "null" } }
        });
        let compiled = CompiledSchema::compile(&doc).unwrap();
        assert!(compiled.resolve_ref("#/definitions/a%20b").is_ok());
    }

    #[test]
    fn unknown_keywords_ignored() {
        let s = CompiledSchema::compile(&json!({
            "$schema": "http://json-schema.org/draft-06/schema#",
            "x-vendor": {"anything": true},
            "default": 3
        }))
        .unwrap();
        assert!(matches!(s.root(), Schema::Any));
    }
}
