//! `format` keyword checkers.
//!
//! JSON Schema treats `format` as an annotation unless the validator opts
//! in. These checkers cover the formats that appear throughout the
//! tutorial's example datasets (timestamps in Twitter/GitHub feeds, URLs in
//! NYTimes articles, identifiers everywhere). Unknown formats always pass,
//! per spec.

/// Checks `value` against a named format. Returns `true` for unknown
/// formats (they are annotations, not constraints).
pub fn check_format(format: &str, value: &str) -> bool {
    match format {
        "date-time" => is_date_time(value),
        "date" => is_date(value),
        "time" => is_time(value),
        "email" => is_email(value),
        "hostname" => is_hostname(value),
        "ipv4" => is_ipv4(value),
        "uri" => is_uri(value),
        "uuid" => is_uuid(value),
        _ => true,
    }
}

/// The set of formats [`check_format`] actually enforces.
pub const KNOWN_FORMATS: [&str; 8] = [
    "date-time",
    "date",
    "time",
    "email",
    "hostname",
    "ipv4",
    "uri",
    "uuid",
];

fn digits(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit())
}

fn in_range(s: &str, lo: u32, hi: u32) -> bool {
    digits(s) && s.parse::<u32>().map(|v| (lo..=hi).contains(&v)) == Ok(true)
}

/// RFC 3339 `full-date`: `YYYY-MM-DD` with real month/day ranges
/// (including leap-year handling for February).
pub fn is_date(s: &str) -> bool {
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3 || parts[0].len() != 4 || parts[1].len() != 2 || parts[2].len() != 2 {
        return false;
    }
    if !digits(parts[0]) || !in_range(parts[1], 1, 12) {
        return false;
    }
    let year: u32 = parts[0].parse().unwrap_or(0);
    let month: u32 = parts[1].parse().unwrap_or(0);
    let max_day = match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if year.is_multiple_of(4) && (!year.is_multiple_of(100) || year.is_multiple_of(400)) {
                29
            } else {
                28
            }
        }
        _ => return false,
    };
    in_range(parts[2], 1, max_day)
}

/// RFC 3339 `full-time`: `HH:MM:SS[.fff](Z|±HH:MM)`.
pub fn is_time(s: &str) -> bool {
    // Split off the offset.
    let (clock, offset_ok) =
        if let Some(stripped) = s.strip_suffix('Z').or_else(|| s.strip_suffix('z')) {
            (stripped, true)
        } else if let Some(idx) = s.rfind(['+', '-']) {
            let (clock, off) = s.split_at(idx);
            let off = &off[1..];
            let parts: Vec<&str> = off.split(':').collect();
            let ok = parts.len() == 2
                && parts[0].len() == 2
                && parts[1].len() == 2
                && in_range(parts[0], 0, 23)
                && in_range(parts[1], 0, 59);
            (clock, ok)
        } else {
            return false;
        };
    if !offset_ok {
        return false;
    }
    let (hms, frac_ok) = match clock.split_once('.') {
        Some((hms, frac)) => (hms, digits(frac)),
        None => (clock, true),
    };
    if !frac_ok {
        return false;
    }
    let parts: Vec<&str> = hms.split(':').collect();
    parts.len() == 3
        && parts.iter().all(|p| p.len() == 2)
        && in_range(parts[0], 0, 23)
        && in_range(parts[1], 0, 59)
        && in_range(parts[2], 0, 60) // leap second
}

/// RFC 3339 `date-time`: `<date>T<time>`.
pub fn is_date_time(s: &str) -> bool {
    match s.split_once(['T', 't']) {
        Some((d, t)) => is_date(d) && is_time(t),
        None => false,
    }
}

/// A pragmatic email shape check (one `@`, non-empty local part, valid
/// hostname domain) — the level of rigour real-world validators apply.
pub fn is_email(s: &str) -> bool {
    let Some((local, domain)) = s.rsplit_once('@') else {
        return false;
    };
    !local.is_empty()
        && local.len() <= 64
        && !local.starts_with('.')
        && !local.ends_with('.')
        && !local.contains("..")
        && local
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || "!#$%&'*+-/=?^_`{|}~.".contains(c))
        && is_hostname(domain)
}

/// RFC 1123 hostname.
pub fn is_hostname(s: &str) -> bool {
    if s.is_empty() || s.len() > 253 {
        return false;
    }
    s.split('.').all(|label| {
        !label.is_empty()
            && label.len() <= 63
            && !label.starts_with('-')
            && !label.ends_with('-')
            && label.chars().all(|c| c.is_ascii_alphanumeric() || c == '-')
    })
}

/// Dotted-quad IPv4.
pub fn is_ipv4(s: &str) -> bool {
    let parts: Vec<&str> = s.split('.').collect();
    parts.len() == 4
        && parts.iter().all(|p| {
            digits(p)
                && p.len() <= 3
                && (*p == "0" || !p.starts_with('0'))
                && p.parse::<u32>().map(|v| v <= 255) == Ok(true)
        })
}

/// A URI with a scheme (absolute URI per RFC 3986's coarse grammar).
pub fn is_uri(s: &str) -> bool {
    let Some((scheme, rest)) = s.split_once(':') else {
        return false;
    };
    !scheme.is_empty()
        && scheme
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic())
        && scheme
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || "+-.".contains(c))
        && !rest.contains(' ')
}

/// RFC 4122 textual UUID.
pub fn is_uuid(s: &str) -> bool {
    let parts: Vec<&str> = s.split('-').collect();
    let lens = [8, 4, 4, 4, 12];
    parts.len() == 5
        && parts
            .iter()
            .zip(lens)
            .all(|(p, l)| p.len() == l && p.chars().all(|c| c.is_ascii_hexdigit()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dates() {
        assert!(is_date("2019-03-26"));
        assert!(is_date("2020-02-29")); // leap year
        assert!(!is_date("2019-02-29"));
        assert!(!is_date("2019-13-01"));
        assert!(!is_date("2019-00-01"));
        assert!(!is_date("19-03-26"));
        assert!(!is_date("2019/03/26"));
    }

    #[test]
    fn times() {
        assert!(is_time("23:59:59Z"));
        assert!(is_time("00:00:00.123Z"));
        assert!(is_time("12:30:00+02:00"));
        assert!(is_time("12:30:60Z")); // leap second allowed
        assert!(!is_time("24:00:00Z"));
        assert!(!is_time("12:30:00"));
        assert!(!is_time("12:30:00+25:00"));
    }

    #[test]
    fn date_times() {
        assert!(is_date_time("2019-03-26T12:30:00Z"));
        assert!(is_date_time("2019-03-26t12:30:00+01:00"));
        assert!(!is_date_time("2019-03-26 12:30:00Z"));
        assert!(!is_date_time("2019-03-26"));
    }

    #[test]
    fn emails() {
        assert!(is_email("a.b+c@example.com"));
        assert!(!is_email("no-at-sign"));
        assert!(!is_email("@example.com"));
        assert!(!is_email("a..b@example.com"));
        assert!(!is_email("a@-bad-.com"));
    }

    #[test]
    fn hostnames_and_ips() {
        assert!(is_hostname("api.twitter.com"));
        assert!(!is_hostname("-leading.example"));
        assert!(!is_hostname(""));
        assert!(is_ipv4("192.168.0.1"));
        assert!(!is_ipv4("256.0.0.1"));
        assert!(!is_ipv4("01.2.3.4"));
        assert!(!is_ipv4("1.2.3"));
    }

    #[test]
    fn uris_and_uuids() {
        assert!(is_uri("https://www.data.gov"));
        assert!(is_uri("urn:isbn:978-3-89318-081-3"));
        assert!(!is_uri("not a uri"));
        assert!(!is_uri("://missing-scheme"));
        assert!(is_uuid("123e4567-e89b-12d3-a456-426614174000"));
        assert!(!is_uuid("123e4567e89b12d3a456426614174000"));
    }

    #[test]
    fn unknown_formats_pass() {
        assert!(check_format("regex", "anything"));
        assert!(check_format("no-such-format", ""));
    }

    #[test]
    fn dispatcher_routes() {
        assert!(check_format("date", "2019-03-26"));
        assert!(!check_format("date", "garbage"));
        assert!(!check_format("uuid", "nope"));
    }
}
