//! Structural subtyping, TypeScript-style.
//!
//! `subtype(s, t)` ⇔ every value of type `s` is usable where `t` is
//! expected: records use width + depth subtyping, arrays and tuples are
//! covariant (as in TS), literals are subtypes of their base type, unions
//! follow introduction (`s <: t_i` for some i) on the right and
//! elimination (every member fits) on the left.

use crate::types::Ty;
use jsonx_data::Value;

/// Is `s` a subtype of `t`?
pub fn subtype(s: &Ty, t: &Ty) -> bool {
    match (s, t) {
        (_, Ty::Any) => true,
        (Ty::Never, _) => true,
        (Ty::Any, _) => false, // TS would need a cast; we are strict
        // Union on the left: every member must fit.
        (Ty::Union(ms), t) => ms.iter().all(|m| subtype(m, t)),
        // Union on the right: some member accommodates s.
        (s, Ty::Union(ms)) => ms.iter().any(|m| subtype(s, m)),
        (Ty::Null, Ty::Null) => true,
        (Ty::Bool, Ty::Bool) => true,
        (Ty::Number, Ty::Number) => true,
        (Ty::Str, Ty::Str) => true,
        (Ty::Literal(a), Ty::Literal(b)) => a == b,
        (Ty::Literal(v), base) => literal_base(v, base),
        (Ty::Array(a), Ty::Array(b)) => subtype(a, b),
        (Ty::Tuple(xs), Ty::Tuple(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| subtype(x, y))
        }
        // A tuple is usable as an array of the member-type union.
        (Ty::Tuple(xs), Ty::Array(b)) => xs.iter().all(|x| subtype(x, b)),
        (Ty::Record(sub), Ty::Record(sup)) => sup.iter().all(|want| {
            match sub.iter().find(|f| f.name == want.name) {
                Some(have) => {
                    // A required field satisfies an optional or required
                    // one; an optional field only satisfies optional.
                    (want.optional || !have.optional) && subtype(&have.ty, &want.ty)
                }
                None => want.optional,
            }
        }),
        _ => false,
    }
}

fn literal_base(v: &Value, base: &Ty) -> bool {
    matches!(
        (v, base),
        (Value::Str(_), Ty::Str)
            | (Value::Num(_), Ty::Number)
            | (Value::Bool(_), Ty::Bool)
            | (Value::Null, Ty::Null)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ty;

    #[test]
    fn primitives_and_top_bottom() {
        assert!(subtype(&ty::number(), &ty::number()));
        assert!(!subtype(&ty::number(), &ty::string()));
        assert!(subtype(&ty::string(), &ty::any()));
        assert!(subtype(&ty::never(), &ty::string()));
        assert!(!subtype(&ty::any(), &ty::string()));
    }

    #[test]
    fn literal_types() {
        assert!(subtype(&ty::literal("a"), &ty::string()));
        assert!(subtype(&ty::literal(3), &ty::number()));
        assert!(!subtype(&ty::literal("a"), &ty::number()));
        assert!(subtype(&ty::literal("a"), &ty::literal("a")));
        assert!(!subtype(&ty::literal("a"), &ty::literal("b")));
        assert!(!subtype(&ty::string(), &ty::literal("a")));
    }

    #[test]
    fn union_rules() {
        let s_or_n = ty::union([ty::string(), ty::number()]);
        assert!(subtype(&ty::string(), &s_or_n));
        assert!(subtype(
            &s_or_n,
            &ty::union([ty::string(), ty::number(), ty::null()])
        ));
        assert!(!subtype(&s_or_n, &ty::string()));
        assert!(subtype(
            &ty::union([ty::literal("a"), ty::literal("b")]),
            &ty::string()
        ));
    }

    #[test]
    fn record_width_and_depth() {
        let point = ty::record([("x", ty::number()), ("y", ty::number())]);
        let labeled = ty::record([
            ("x", ty::number()),
            ("y", ty::number()),
            ("label", ty::string()),
        ]);
        assert!(subtype(&labeled, &point)); // width
        assert!(!subtype(&point, &labeled));
        let precise = ty::record([("x", ty::literal(0)), ("y", ty::number())]);
        assert!(subtype(&precise, &point)); // depth
    }

    #[test]
    fn optional_fields() {
        let opt = ty::record([("a", ty::number())]).with_optional("b", ty::string());
        let req = ty::record([("a", ty::number()), ("b", ty::string())]);
        assert!(subtype(&req, &opt)); // required satisfies optional
        assert!(!subtype(&opt, &req)); // optional does not satisfy required
        let empty = ty::record([]);
        assert!(subtype(
            &empty,
            &ty::record([]).with_optional("z", ty::any())
        ));
    }

    #[test]
    fn arrays_and_tuples() {
        assert!(subtype(
            &ty::array(ty::literal(1)),
            &ty::array(ty::number())
        ));
        assert!(subtype(
            &ty::tuple([ty::number(), ty::string()]),
            &ty::tuple([ty::number(), ty::string()])
        ));
        assert!(!subtype(
            &ty::tuple([ty::number()]),
            &ty::tuple([ty::number(), ty::string()])
        ));
        // Tuple-as-array.
        assert!(subtype(
            &ty::tuple([ty::number(), ty::number()]),
            &ty::array(ty::number())
        ));
        assert!(!subtype(
            &ty::tuple([ty::number(), ty::string()]),
            &ty::array(ty::number())
        ));
    }

    #[test]
    fn reflexive_on_compound() {
        let t = ty::record([
            ("u", ty::record([("id", ty::number())])),
            ("tags", ty::array(ty::union([ty::string(), ty::number()]))),
        ]);
        assert!(subtype(&t, &t));
    }
}
