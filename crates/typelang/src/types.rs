//! The structural type language.

use jsonx_data::Value;
use std::fmt;

/// A structural type in the TypeScript/Swift mould.
#[derive(Debug, Clone, PartialEq)]
pub enum Ty {
    /// `any` — top.
    Any,
    /// `never` — bottom (TS), useful for exhaustiveness.
    Never,
    /// `null`.
    Null,
    /// `boolean`.
    Bool,
    /// `number` (both languages use doubles for JSON numbers).
    Number,
    /// `string`.
    Str,
    /// A literal type, e.g. `"Point"` or `42` (TS literal types / Swift
    /// enum raw values).
    Literal(Value),
    /// `T[]` / `[T]`.
    Array(Box<Ty>),
    /// Fixed-arity tuple `[T1, T2, …]`.
    Tuple(Vec<Ty>),
    /// `{ name: T, other?: U }` — fields sorted by name.
    Record(Vec<Field>),
    /// `T | U | …`.
    Union(Vec<Ty>),
}

/// One record field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    pub name: String,
    pub ty: Ty,
    /// `?`-marked in TS; decoded as `Optional` in Swift.
    pub optional: bool,
}

impl Ty {
    /// Record field lookup.
    pub fn field(&self, name: &str) -> Option<&Field> {
        match self {
            Ty::Record(fields) => fields.iter().find(|f| f.name == name),
            _ => None,
        }
    }

    /// Adds an optional field to a record type (builder sugar).
    pub fn with_optional(self, name: impl Into<String>, ty: Ty) -> Ty {
        self.add_field(name, ty, true)
    }

    /// Adds a required field to a record type (builder sugar).
    pub fn with_field(self, name: impl Into<String>, ty: Ty) -> Ty {
        self.add_field(name, ty, false)
    }

    fn add_field(self, name: impl Into<String>, ty: Ty, optional: bool) -> Ty {
        let Ty::Record(mut fields) = self else {
            panic!("with_field on a non-record type")
        };
        fields.push(Field {
            name: name.into(),
            ty,
            optional,
        });
        fields.sort_by(|a, b| a.name.cmp(&b.name));
        Ty::Record(fields)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Any => write!(f, "any"),
            Ty::Never => write!(f, "never"),
            Ty::Null => write!(f, "null"),
            Ty::Bool => write!(f, "boolean"),
            Ty::Number => write!(f, "number"),
            Ty::Str => write!(f, "string"),
            Ty::Literal(v) => write!(f, "{v}"),
            Ty::Array(t) => write!(f, "{t}[]"),
            Ty::Tuple(ts) => {
                write!(f, "[")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "]")
            }
            Ty::Record(fields) => {
                write!(f, "{{")?;
                for (i, field) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(
                        f,
                        "{}{}: {}",
                        field.name,
                        if field.optional { "?" } else { "" },
                        field.ty
                    )?;
                }
                write!(f, "}}")
            }
            Ty::Union(ts) => {
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    // Parenthesise nested unions for readability.
                    write!(f, "{t}")?;
                }
                Ok(())
            }
        }
    }
}

/// Constructor helpers (TS-ish spelling).
pub mod ty {
    use super::{Field, Ty};
    use jsonx_data::Value;

    pub fn any() -> Ty {
        Ty::Any
    }
    pub fn never() -> Ty {
        Ty::Never
    }
    pub fn null() -> Ty {
        Ty::Null
    }
    pub fn boolean() -> Ty {
        Ty::Bool
    }
    pub fn number() -> Ty {
        Ty::Number
    }
    pub fn string() -> Ty {
        Ty::Str
    }

    /// A literal type, e.g. `literal("Point")`.
    pub fn literal(v: impl Into<Value>) -> Ty {
        Ty::Literal(v.into())
    }

    /// `T[]`.
    pub fn array(item: Ty) -> Ty {
        Ty::Array(Box::new(item))
    }

    /// `[T1, T2, …]`.
    pub fn tuple<I: IntoIterator<Item = Ty>>(items: I) -> Ty {
        Ty::Tuple(items.into_iter().collect())
    }

    /// `{ a: T, b: U }` (all required; chain `.with_optional` for `?`).
    pub fn record<'a, I: IntoIterator<Item = (&'a str, Ty)>>(fields: I) -> Ty {
        let mut fs: Vec<Field> = fields
            .into_iter()
            .map(|(name, ty)| Field {
                name: name.to_string(),
                ty,
                optional: false,
            })
            .collect();
        fs.sort_by(|a, b| a.name.cmp(&b.name));
        Ty::Record(fs)
    }

    /// `T | U | …`.
    pub fn union<I: IntoIterator<Item = Ty>>(members: I) -> Ty {
        Ty::Union(members.into_iter().collect())
    }

    /// `T | undefined`-ish: optional value position (`T | null`).
    pub fn optional(t: Ty) -> Ty {
        Ty::Union(vec![t, Ty::Null])
    }
}

#[cfg(test)]
mod tests {
    use super::ty;
    use super::*;

    #[test]
    fn display_forms() {
        let t = ty::record([("id", ty::number())])
            .with_optional("geo", ty::union([ty::null(), ty::string()]));
        assert_eq!(t.to_string(), "{geo?: null | string, id: number}");
        assert_eq!(ty::array(ty::string()).to_string(), "string[]");
        assert_eq!(
            ty::tuple([ty::number(), ty::string()]).to_string(),
            "[number, string]"
        );
        assert_eq!(ty::literal("Point").to_string(), "\"Point\"");
    }

    #[test]
    fn record_fields_sorted() {
        let t = ty::record([("z", ty::any()), ("a", ty::any())]);
        let Ty::Record(fields) = &t else { panic!() };
        assert_eq!(fields[0].name, "a");
    }

    #[test]
    #[should_panic(expected = "non-record")]
    fn with_field_on_scalar_panics() {
        let _ = ty::number().with_field("x", ty::any());
    }
}
