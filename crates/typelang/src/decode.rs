//! Checked decoding — Swift `Codable` semantics over [`Ty`].
//!
//! Swift's `JSONDecoder` fails with a typed error naming the coding path;
//! [`decode`] does the same. Unlike schema validation (which collects all
//! violations), decoding fails fast on the first error — that is how
//! `Codable` behaves and is the §3 contrast the tutorial draws between
//! language type systems and schema validators.

use crate::types::Ty;
use jsonx_data::{Pointer, Value};
use std::fmt;

/// A decoding failure, Swift-style: what was expected, where.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeError {
    /// Coding path to the failing position.
    pub path: Pointer,
    /// What the type demanded.
    pub expected: String,
    /// What the value provided.
    pub found: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.path.to_string();
        write!(
            f,
            "decoding failed at {}: expected {}, found {}",
            if p.is_empty() { "<root>" } else { &p },
            self.expected,
            self.found
        )
    }
}

impl std::error::Error for DecodeError {}

/// Decodes `value` against `ty`; `Ok(())` means the value is usable at
/// that type (fail-fast on the first mismatch).
pub fn decode(ty: &Ty, value: &Value) -> Result<(), DecodeError> {
    go(ty, value, &Pointer::root())
}

fn fail(ty: &Ty, value: &Value, path: &Pointer) -> Result<(), DecodeError> {
    Err(DecodeError {
        path: path.clone(),
        expected: ty.to_string(),
        found: value.kind().to_string(),
    })
}

fn go(ty: &Ty, value: &Value, path: &Pointer) -> Result<(), DecodeError> {
    match (ty, value) {
        (Ty::Any, _) => Ok(()),
        (Ty::Never, _) => fail(ty, value, path),
        (Ty::Null, Value::Null) => Ok(()),
        (Ty::Bool, Value::Bool(_)) => Ok(()),
        (Ty::Number, Value::Num(_)) => Ok(()),
        (Ty::Str, Value::Str(_)) => Ok(()),
        (Ty::Literal(expected), v) => {
            if expected == v {
                Ok(())
            } else {
                Err(DecodeError {
                    path: path.clone(),
                    expected: format!("literal {expected}"),
                    found: v.to_json_string(),
                })
            }
        }
        (Ty::Array(item), Value::Arr(items)) => {
            for (i, member) in items.iter().enumerate() {
                go(item, member, &path.push_index(i))?;
            }
            Ok(())
        }
        (Ty::Tuple(types), Value::Arr(items)) => {
            if types.len() != items.len() {
                return Err(DecodeError {
                    path: path.clone(),
                    expected: format!("tuple of {} elements", types.len()),
                    found: format!("array of {} elements", items.len()),
                });
            }
            for (i, (t, member)) in types.iter().zip(items).enumerate() {
                go(t, member, &path.push_index(i))?;
            }
            Ok(())
        }
        (Ty::Record(fields), Value::Obj(obj)) => {
            for field in fields {
                match obj.get(&field.name) {
                    Some(member) => go(&field.ty, member, &path.push_key(&field.name))?,
                    None if field.optional => {}
                    None => {
                        return Err(DecodeError {
                            path: path.clone(),
                            expected: format!("key '{}'", field.name),
                            found: "no value".to_string(),
                        })
                    }
                }
            }
            // Codable ignores unknown keys; so does TS structural typing.
            Ok(())
        }
        (Ty::Union(members), v) => {
            for m in members {
                if go(m, v, path).is_ok() {
                    return Ok(());
                }
            }
            fail(ty, value, path)
        }
        _ => fail(ty, value, path),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ty;
    use jsonx_data::json;

    #[test]
    fn scalars() {
        assert!(decode(&ty::number(), &json!(3.5)).is_ok());
        assert!(decode(&ty::string(), &json!("x")).is_ok());
        assert!(decode(&ty::null(), &json!(null)).is_ok());
        assert!(decode(&ty::number(), &json!("3")).is_err());
        assert!(decode(&ty::never(), &json!(null)).is_err());
    }

    #[test]
    fn record_decoding_ignores_unknown_keys() {
        let t = ty::record([("id", ty::number())]);
        assert!(decode(&t, &json!({"id": 1, "extra": true})).is_ok());
    }

    #[test]
    fn missing_key_names_the_key() {
        let t = ty::record([("id", ty::number())]);
        let err = decode(&t, &json!({})).unwrap_err();
        assert!(err.expected.contains("'id'"));
    }

    #[test]
    fn error_paths_are_coding_paths() {
        let t = ty::record([("xs", ty::array(ty::number()))]);
        let err = decode(&t, &json!({"xs": [1, "two"]})).unwrap_err();
        assert_eq!(err.path.to_string(), "/xs/1");
    }

    #[test]
    fn unions_try_each_member() {
        let t = ty::union([ty::string(), ty::record([("lat", ty::number())])]);
        assert!(decode(&t, &json!("Lisbon")).is_ok());
        assert!(decode(&t, &json!({"lat": 38.7})).is_ok());
        assert!(decode(&t, &json!(7)).is_err());
    }

    #[test]
    fn tuples_are_exact_arity() {
        let t = ty::tuple([ty::number(), ty::number()]);
        assert!(decode(&t, &json!([38.72, -9.13])).is_ok());
        assert!(decode(&t, &json!([38.72])).is_err());
        assert!(decode(&t, &json!([38.72, -9.13, 0.0])).is_err());
    }

    #[test]
    fn literals_and_discriminants() {
        let point = ty::record([("type", ty::literal("Point"))]);
        assert!(decode(&point, &json!({"type": "Point"})).is_ok());
        let err = decode(&point, &json!({"type": "Polygon"})).unwrap_err();
        assert!(err.expected.contains("literal"));
    }

    #[test]
    fn optional_fields_may_be_absent_but_not_mistyped() {
        let t = ty::record([("id", ty::number())]).with_optional("tag", ty::string());
        assert!(decode(&t, &json!({"id": 1})).is_ok());
        assert!(decode(&t, &json!({"id": 1, "tag": "x"})).is_ok());
        assert!(decode(&t, &json!({"id": 1, "tag": 9})).is_err());
    }
}
