//! Exporting language types as JSON Schema documents — §3's comparison
//! between programming-language types and schema languages, as code.
//!
//! The translation is semantics-preserving for [`decode`](crate::decode):
//! a value decodes at `ty` iff it validates against `to_schema(ty)`
//! (property-tested in `tests/prop_schema_agreement.rs` at the workspace
//! level).

use crate::types::Ty;
use jsonx_data::{json, Object, Value};

/// Renders a [`Ty`] as an equivalent JSON Schema document.
pub fn to_schema(ty: &Ty) -> Value {
    match ty {
        Ty::Any => Value::Bool(true),
        Ty::Never => Value::Bool(false),
        Ty::Null => json!({"type": "null"}),
        Ty::Bool => json!({"type": "boolean"}),
        Ty::Number => json!({"type": "number"}),
        Ty::Str => json!({"type": "string"}),
        Ty::Literal(v) => {
            let mut o = Object::new();
            o.insert("const", v.clone());
            Value::Obj(o)
        }
        Ty::Array(item) => {
            let mut o = Object::new();
            o.insert("type", Value::from("array"));
            o.insert("items", to_schema(item));
            Value::Obj(o)
        }
        Ty::Tuple(items) => {
            let mut o = Object::new();
            o.insert("type", Value::from("array"));
            o.insert("items", Value::Arr(items.iter().map(to_schema).collect()));
            o.insert("minItems", Value::from(items.len() as i64));
            o.insert("maxItems", Value::from(items.len() as i64));
            Value::Obj(o)
        }
        Ty::Record(fields) => {
            let mut properties = Object::new();
            let mut required: Vec<Value> = Vec::new();
            for field in fields {
                properties.insert(field.name.clone(), to_schema(&field.ty));
                if !field.optional {
                    required.push(Value::from(field.name.as_str()));
                }
            }
            let mut o = Object::new();
            o.insert("type", Value::from("object"));
            o.insert("properties", Value::Obj(properties));
            if !required.is_empty() {
                o.insert("required", Value::Arr(required));
            }
            // TS structural typing and Codable both ignore unknown keys —
            // additionalProperties stays open.
            Value::Obj(o)
        }
        Ty::Union(members) => {
            let mut o = Object::new();
            o.insert("anyOf", Value::Arr(members.iter().map(to_schema).collect()));
            Value::Obj(o)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ty;

    #[test]
    fn scalar_exports() {
        assert_eq!(to_schema(&ty::any()), Value::Bool(true));
        assert_eq!(to_schema(&ty::never()), Value::Bool(false));
        assert_eq!(to_schema(&ty::number()), json!({"type": "number"}));
        assert_eq!(to_schema(&ty::literal("x")), json!({"const": "x"}));
    }

    #[test]
    fn record_optionality_maps_to_required() {
        let t = ty::record([("a", ty::number())]).with_optional("b", ty::string());
        let schema = to_schema(&t);
        assert_eq!(schema.get("required"), Some(&json!(["a"])));
    }

    #[test]
    fn tuple_pins_arity() {
        let schema = to_schema(&ty::tuple([ty::number(), ty::string()]));
        assert_eq!(schema.get("minItems"), Some(&json!(2)));
        assert_eq!(schema.get("maxItems"), Some(&json!(2)));
    }

    #[test]
    fn union_becomes_any_of() {
        let schema = to_schema(&ty::union([ty::null(), ty::string()]));
        assert_eq!(
            schema,
            json!({"anyOf": [{"type": "null"}, {"type": "string"}]})
        );
    }
}
