//! Flow narrowing — the `typeof x === "string"` and discriminated-union
//! idioms TypeScript uses to make union types ergonomic (§3).

use crate::types::Ty;
use jsonx_data::{Kind, Value};

/// Narrows a type by a runtime kind test: the members that could have the
/// given kind survive (TS `typeof` narrowing; `Never` when none survive).
pub fn narrow_by_kind(ty: &Ty, kind: Kind) -> Ty {
    let members: Vec<Ty> = ty_members(ty)
        .iter()
        .filter(|m| member_matches_kind(m, kind))
        .cloned()
        .collect();
    rebuild(members)
}

/// Narrows a union of records by a discriminant field value (TS
/// discriminated unions, e.g. `if (shape.type === "Point")`).
pub fn narrow_by_discriminant(ty: &Ty, field: &str, value: &Value) -> Ty {
    let members: Vec<Ty> = ty_members(ty)
        .iter()
        .filter(|m| match m.field(field) {
            Some(f) => match &f.ty {
                Ty::Literal(lit) => lit == value,
                // A non-literal discriminant could hold any value of its
                // base type; keep the member when the value fits it.
                other => crate::decode::decode(other, value).is_ok(),
            },
            None => false,
        })
        .cloned()
        .collect();
    rebuild(members)
}

fn ty_members(ty: &Ty) -> Vec<Ty> {
    match ty {
        Ty::Union(ms) => ms.clone(),
        other => vec![other.clone()],
    }
}

fn rebuild(mut members: Vec<Ty>) -> Ty {
    match members.len() {
        0 => Ty::Never,
        1 => members.pop().expect("len checked"),
        _ => Ty::Union(members),
    }
}

fn member_matches_kind(ty: &Ty, kind: Kind) -> bool {
    match ty {
        Ty::Any => true,
        Ty::Never => false,
        Ty::Null => kind == Kind::Null,
        Ty::Bool => kind == Kind::Boolean,
        Ty::Number => kind == Kind::Number || kind == Kind::Integer,
        Ty::Str => kind == Kind::String,
        Ty::Literal(v) => {
            let k = v.kind();
            k == kind || (k == Kind::Integer && kind == Kind::Number)
        }
        Ty::Array(_) | Ty::Tuple(_) => kind == Kind::Array,
        Ty::Record(_) => kind == Kind::Object,
        Ty::Union(ms) => ms.iter().any(|m| member_matches_kind(m, kind)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ty;
    use jsonx_data::json;

    #[test]
    fn typeof_narrowing() {
        // coordinates: null | { lat: number } — the tweet geo union.
        let geo = ty::union([ty::null(), ty::record([("lat", ty::number())])]);
        assert_eq!(narrow_by_kind(&geo, Kind::Null), Ty::Null);
        assert_eq!(
            narrow_by_kind(&geo, Kind::Object),
            ty::record([("lat", ty::number())])
        );
        assert_eq!(narrow_by_kind(&geo, Kind::String), Ty::Never);
    }

    #[test]
    fn non_union_narrows_to_self_or_never() {
        assert_eq!(narrow_by_kind(&ty::string(), Kind::String), ty::string());
        assert_eq!(narrow_by_kind(&ty::string(), Kind::Boolean), Ty::Never);
    }

    #[test]
    fn discriminated_unions() {
        // type Shape = {type: "Point", xy: [number, number]}
        //            | {type: "Circle", r: number}
        let point = ty::record([
            ("type", ty::literal("Point")),
            ("xy", ty::tuple([ty::number(), ty::number()])),
        ]);
        let circle = ty::record([("type", ty::literal("Circle")), ("r", ty::number())]);
        let shape = ty::union([point.clone(), circle.clone()]);
        assert_eq!(
            narrow_by_discriminant(&shape, "type", &json!("Point")),
            point
        );
        assert_eq!(
            narrow_by_discriminant(&shape, "type", &json!("Circle")),
            circle
        );
        assert_eq!(
            narrow_by_discriminant(&shape, "type", &json!("Square")),
            Ty::Never
        );
        assert_eq!(
            narrow_by_discriminant(&shape, "missing", &json!("x")),
            Ty::Never
        );
    }

    #[test]
    fn non_literal_discriminants_narrow_by_fit() {
        let a = ty::record([("v", ty::number())]);
        let b = ty::record([("v", ty::string())]);
        let u = ty::union([a.clone(), b.clone()]);
        assert_eq!(narrow_by_discriminant(&u, "v", &json!(3)), a);
        assert_eq!(narrow_by_discriminant(&u, "v", &json!("s")), b);
    }

    #[test]
    fn multiple_survivors_stay_union() {
        let u = ty::union([ty::string(), ty::literal("x"), ty::number()]);
        let narrowed = narrow_by_kind(&u, Kind::String);
        assert_eq!(narrowed, ty::union([ty::string(), ty::literal("x")]));
    }
}
