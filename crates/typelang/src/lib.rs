//! # jsonx-typelang
//!
//! §3 of the tutorial as code: the record/sequence/union triad a
//! programming language needs "to directly and naturally manage JSON
//! data", modelled on TypeScript's structural types and Swift's `Codable`
//! decoding.
//!
//! * [`Ty`] — a structural type language with records, sequences, tuples,
//!   **union types** (the rare ingredient the tutorial highlights),
//!   optionals, literal types (TS string/number literals) and `Any`.
//! * [`subtype`] — TypeScript-style structural subtyping (width + depth
//!   for records, covariant arrays, union introduction/elimination).
//! * [`decode`] — Swift-`Codable`-style checked decoding of a
//!   [`Value`](jsonx_data::Value) against a type, with `DecodingError`
//!   paths like Swift's.
//! * [`narrow`] — TypeScript-style flow narrowing: `typeof`-tests and
//!   discriminated unions.
//!
//! ```
//! use jsonx_data::json;
//! use jsonx_typelang::{ty, decode, subtype};
//!
//! // type Tweet = { id: number, text: string, geo?: { lat: number } }
//! let tweet = ty::record([
//!     ("id", ty::number()),
//!     ("text", ty::string()),
//! ]).with_optional("geo", ty::record([("lat", ty::number())]));
//!
//! assert!(decode(&tweet, &json!({"id": 1, "text": "hi"})).is_ok());
//! assert!(decode(&tweet, &json!({"id": 1})).is_err()); // text missing
//!
//! // Width subtyping: a wider record is a subtype.
//! let wide = ty::record([("id", ty::number()), ("text", ty::string()),
//!                        ("extra", ty::boolean())]);
//! assert!(subtype(&wide, &tweet));
//! ```

pub mod decode;
pub mod export;
pub mod narrow;
pub mod subtype;
pub mod types;

pub use decode::{decode, DecodeError};
pub use export::to_schema;
pub use narrow::{narrow_by_discriminant, narrow_by_kind};
pub use subtype::subtype;
pub use types::ty;
pub use types::{Field, Ty};
