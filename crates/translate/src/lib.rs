//! # jsonx-translate
//!
//! §5 of the tutorial ("Schema-Based Data Translation") as a working
//! system: "while JSON is very frequently used for exchanging and
//! publishing data, it is hardly used as internal data format in Big Data
//! management tools, that, instead, usually rely on formats like Avro and
//! Parquet. When input datasets are heterogeneous, schemas can improve the
//! efficiency and the effectiveness of data format conversion."
//!
//! Three translation targets, all driven by the inferred types of
//! `jsonx-core`:
//!
//! * [`columnar`] — Arrow/Parquet-flavoured column batches: records are
//!   shredded into typed columns with validity bitmaps; the schema decides
//!   the column layout up front (the *schema-aware* path E11 measures
//!   against a schema-blind discovery path).
//! * [`avro`] — an Avro-flavoured binary row format: zig-zag varints,
//!   length-prefixed strings, union branch indices — encoded and decoded
//!   against a writer schema derived from the inferred type.
//! * [`relational`] — DiScala & Abadi-style normalization (§4.1 \[16\]):
//!   nested documents become flat relations, arrays of records become
//!   child tables with foreign keys, and functional dependencies split
//!   out dimension tables.
//!
//! Two pieces close the loop from translation to storage:
//!
//! * [`jxc`] — `.jxc`, a binary columnar *file* format for
//!   [`columnar::ColumnarBatch`]: dictionary-encoded strings, validity
//!   bitmaps, nested-list offset arrays, schema footer.
//! * [`sink`] — one [`sink::OutputSink`] interface over all three
//!   targets, so callers dispatch on a target name instead of
//!   re-implementing per-format plumbing.

pub mod avro;
pub mod columnar;
pub mod jxc;
pub mod relational;
pub mod sink;

pub use avro::{AvroCodec, AvroError, AvroField, AvroSchema};
pub use columnar::{ColumnData, ColumnarBatch, ShredError, ShredStream, Shredder};
pub use jxc::{
    flatten_rows, read_jxc, read_jxc_file, rows_as_values, write_jxc, write_jxc_file, Encoding,
    JxcColumnInfo, JxcError, JxcFile,
};
pub use relational::{normalize, Relation};
pub use sink::{OutputSink, SinkReport};
