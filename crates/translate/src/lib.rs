//! # jsonx-translate
//!
//! §5 of the tutorial ("Schema-Based Data Translation") as a working
//! system: "while JSON is very frequently used for exchanging and
//! publishing data, it is hardly used as internal data format in Big Data
//! management tools, that, instead, usually rely on formats like Avro and
//! Parquet. When input datasets are heterogeneous, schemas can improve the
//! efficiency and the effectiveness of data format conversion."
//!
//! Three translation targets, all driven by the inferred types of
//! `jsonx-core`:
//!
//! * [`columnar`] — Arrow/Parquet-flavoured column batches: records are
//!   shredded into typed columns with validity bitmaps; the schema decides
//!   the column layout up front (the *schema-aware* path E11 measures
//!   against a schema-blind discovery path).
//! * [`avro`] — an Avro-flavoured binary row format: zig-zag varints,
//!   length-prefixed strings, union branch indices — encoded and decoded
//!   against a writer schema derived from the inferred type.
//! * [`relational`] — DiScala & Abadi-style normalization (§4.1 \[16\]):
//!   nested documents become flat relations, arrays of records become
//!   child tables with foreign keys, and functional dependencies split
//!   out dimension tables.

pub mod avro;
pub mod columnar;
pub mod relational;

pub use avro::{AvroCodec, AvroError, AvroField, AvroSchema};
pub use columnar::{ColumnData, ColumnarBatch, ShredError, ShredStream, Shredder};
pub use relational::{normalize, Relation};
