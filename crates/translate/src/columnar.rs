//! Columnar shredding (Arrow/Parquet-flavoured).
//!
//! A [`Shredder`] turns a stream of JSON records into a [`ColumnarBatch`]:
//! one typed column per scalar leaf path, with a validity bitmap for
//! optional/null positions. Nested records flatten into dotted paths;
//! arrays and union-typed leaves spill into a JSON-text column (the same
//! escape hatch production columnar stores use for "variant" data).
//!
//! The shredder has two constructions, which is exactly the E11 contrast:
//!
//! * [`Shredder::from_type`] — **schema-aware**: the column layout is
//!   fixed up front from an inferred [`JType`], so each record dispatches
//!   straight into pre-typed columns;
//! * [`Shredder::discovering`] — **schema-blind**: columns are discovered
//!   and retyped on the fly while scanning, the way a schema-less
//!   converter must.

use jsonx_core::JType;
use jsonx_data::{Number, Value};
use std::collections::HashMap;
use std::fmt;

/// A typed column's storage.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Bools(Vec<bool>),
    Ints(Vec<i64>),
    Floats(Vec<f64>),
    Strs(Vec<String>),
    /// Spill column: compact JSON text (arrays, nested unions, mixed types).
    Json(Vec<String>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Bools(v) => v.len(),
            ColumnData::Ints(v) => v.len(),
            ColumnData::Floats(v) => v.len(),
            ColumnData::Strs(v) => v.len(),
            ColumnData::Json(v) => v.len(),
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            ColumnData::Bools(_) => "bool",
            ColumnData::Ints(_) => "int64",
            ColumnData::Floats(_) => "float64",
            ColumnData::Strs(_) => "utf8",
            ColumnData::Json(_) => "json",
        }
    }
}

/// One column: dotted leaf path, values, validity.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Dotted path from the record root (e.g. `user.name`).
    pub path: String,
    /// Dense values (one slot per *valid* row position).
    pub data: ColumnData,
    /// `validity[row]` — row has a value in this column.
    pub validity: Vec<bool>,
}

/// A batch of shredded records.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarBatch {
    /// Columns in layout order.
    pub columns: Vec<Column>,
    /// Number of records shredded.
    pub rows: usize,
}

impl ColumnarBatch {
    /// Column lookup by path.
    pub fn column(&self, path: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.path == path)
    }

    /// A schema line for reports: `path:type` pairs.
    pub fn schema_string(&self) -> String {
        self.columns
            .iter()
            .map(|c| format!("{}:{}", c.path, c.data.type_name()))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Appends another batch row-wise. Both batches must come from the
    /// same fixed layout (the shard-merge case: per-shard batches built by
    /// one [`Shredder`], fused in shard order), so column paths and
    /// storage types line up position by position.
    ///
    /// The result is identical to shredding the concatenated record
    /// sequence in one pass: every cell write is per-row independent.
    ///
    /// # Panics
    ///
    /// Panics when the layouts disagree (different column count, path or
    /// storage type) — that is a caller bug, not a data error.
    pub fn append(&mut self, other: ColumnarBatch) {
        assert_eq!(
            self.columns.len(),
            other.columns.len(),
            "ColumnarBatch::append: column count mismatch"
        );
        for (a, b) in self.columns.iter_mut().zip(other.columns) {
            assert_eq!(a.path, b.path, "ColumnarBatch::append: path mismatch");
            a.validity.extend(b.validity);
            match (&mut a.data, b.data) {
                (ColumnData::Bools(x), ColumnData::Bools(y)) => x.extend(y),
                (ColumnData::Ints(x), ColumnData::Ints(y)) => x.extend(y),
                (ColumnData::Floats(x), ColumnData::Floats(y)) => x.extend(y),
                (ColumnData::Strs(x), ColumnData::Strs(y)) => x.extend(y),
                (ColumnData::Json(x), ColumnData::Json(y)) => x.extend(y),
                (a_data, b_data) => panic!(
                    "ColumnarBatch::append: storage mismatch at {} ({} vs {})",
                    a.path,
                    a_data.type_name(),
                    b_data.type_name()
                ),
            }
        }
        self.rows += other.rows;
    }
}

/// Shredding errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ShredError {
    /// A record was not a JSON object.
    NotARecord { row: usize },
}

impl fmt::Display for ShredError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShredError::NotARecord { row } => write!(f, "row {row} is not an object"),
        }
    }
}

impl std::error::Error for ShredError {}

/// Internal column type tags for layout planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Bool,
    Int,
    Float,
    Str,
    Json,
}

/// The shredder: fixed or discovering layout.
#[derive(Debug, Clone)]
pub struct Shredder {
    /// Layout: (path, slot type); columns in order.
    layout: Vec<(String, Slot)>,
    /// path → layout index.
    by_path: HashMap<String, usize>,
    /// Paths that flatten further (proper prefixes of layout paths).
    descend_paths: std::collections::HashSet<String>,
    /// Schema-blind mode grows/retypes the layout on the fly.
    discovering: bool,
    /// Top-level field names of the planned record type — the projection
    /// a streaming fast path may push down. `None` when the plan was not
    /// built from a record type (or is discovering), i.e. when every
    /// record must be parsed in full.
    root_fields: Option<Vec<String>>,
}

/// Collects every proper dotted prefix of the layout paths.
fn parent_prefixes(layout: &[(String, Slot)]) -> std::collections::HashSet<String> {
    let mut out = std::collections::HashSet::new();
    for (path, _) in layout {
        let mut end = 0;
        for (i, c) in path.char_indices() {
            if c == '.' {
                out.insert(path[..i].to_string());
            }
            end = i + c.len_utf8();
        }
        let _ = end;
    }
    out
}

impl Shredder {
    /// Schema-aware construction: derive the column layout from an
    /// inferred type (records flatten; arrays/unions become spill columns).
    pub fn from_type(ty: &JType) -> Shredder {
        let mut layout = Vec::new();
        plan(ty, String::new(), &mut layout);
        let by_path = layout
            .iter()
            .enumerate()
            .map(|(i, (p, _))| (p.clone(), i))
            .collect();
        let descend_paths = parent_prefixes(&layout);
        let root_fields = match ty {
            JType::Record(rt) => Some(rt.fields.iter().map(|(name, _)| name.to_string()).collect()),
            _ => None,
        };
        Shredder {
            layout,
            by_path,
            descend_paths,
            discovering: false,
            root_fields,
        }
    }

    /// Schema-blind construction: start empty, discover as you go.
    pub fn discovering() -> Shredder {
        Shredder {
            layout: Vec::new(),
            by_path: HashMap::new(),
            descend_paths: std::collections::HashSet::new(),
            discovering: true,
            root_fields: None,
        }
    }

    /// Number of planned columns.
    pub fn column_count(&self) -> usize {
        self.layout.len()
    }

    /// The top-level field names this plan reads from each record, or
    /// `None` when the plan requires whole records (non-record types,
    /// discovering mode). Every column path's first dotted segment is one
    /// of these names, so a driver that parses only these fields shreds
    /// identically — provided skipped records with literal dotted root
    /// keys are routed to the full parser (they could alias a nested
    /// column path).
    pub fn root_fields(&self) -> Option<&[String]> {
        self.root_fields.as_deref()
    }

    /// Shreds a collection into one batch.
    ///
    /// Dispatches on the construction: the schema-aware path writes
    /// straight into typed column storage (the layout is fixed, so every
    /// cell's destination type is known before the scan); the discovering
    /// path must buffer generic cells because columns can appear and
    /// retype mid-stream — that architectural difference is what E11
    /// measures.
    pub fn shred(&mut self, docs: &[Value]) -> Result<ColumnarBatch, ShredError> {
        if !self.discovering {
            return self.shred_typed(docs);
        }
        self.shred_generic(docs)
    }

    /// Begins incremental schema-aware shredding: records are pushed one
    /// at a time and finished into a batch. This is the entry point the
    /// streaming translation pipeline stage uses — each shard owns one
    /// `ShredStream` and the per-shard batches concatenate with
    /// [`ColumnarBatch::append`].
    ///
    /// # Panics
    ///
    /// Panics on a discovering shredder: a schema-blind layout can grow
    /// and retype mid-stream, so it must scan the whole collection via
    /// [`shred`](Self::shred).
    pub fn stream(&self) -> ShredStream<'_> {
        assert!(
            !self.discovering,
            "ShredStream requires a fixed layout (Shredder::from_type)"
        );
        ShredStream {
            shredder: self,
            builders: self
                .layout
                .iter()
                .map(|(_, slot)| TypedBuilder::new(*slot))
                .collect(),
            rows: 0,
        }
    }

    /// Schema-aware fast path: typed builders, no intermediate cells.
    /// One batch-sized [`ShredStream`] — the streaming stage uses the same
    /// code path record by record.
    fn shred_typed(&self, docs: &[Value]) -> Result<ColumnarBatch, ShredError> {
        let mut stream = self.stream();
        for doc in docs {
            stream.push(doc)?;
        }
        Ok(stream.finish())
    }

    fn typed_record(
        &self,
        obj: &jsonx_data::Object,
        prefix: Option<&str>,
        row: usize,
        builders: &mut [TypedBuilder],
    ) {
        let mut scratch = String::new();
        for (key, value) in obj.iter() {
            let path: &str = match prefix {
                None => key,
                Some(p) => {
                    scratch.clear();
                    scratch.push_str(p);
                    scratch.push('.');
                    scratch.push_str(key);
                    &scratch
                }
            };
            match value {
                Value::Obj(inner) if self.descend_paths.contains(path) => {
                    let owned = path.to_string();
                    self.typed_record(inner, Some(&owned), row, builders);
                }
                other => {
                    if let Some(&idx) = self.by_path.get(path) {
                        builders[idx].write(row, other);
                    }
                    // Fields outside the planned layout are dropped.
                }
            }
        }
    }

    /// Schema-blind path: generic cell buffering with on-the-fly layout
    /// growth and retyping.
    fn shred_generic(&mut self, docs: &[Value]) -> Result<ColumnarBatch, ShredError> {
        // Cell buffer: per column, per row, an optional scalar.
        let mut cells: Vec<Vec<Option<Value>>> = vec![Vec::new(); self.layout.len()];
        for (row, doc) in docs.iter().enumerate() {
            let obj = doc.as_object().ok_or(ShredError::NotARecord { row })?;
            let mut seen = vec![false; self.layout.len()];
            self.shred_record(obj, String::new(), row, &mut cells, &mut seen);
            // Pad unseen columns for this row.
            for (i, seen) in seen.iter().enumerate() {
                if !seen {
                    pad_to(&mut cells[i], row + 1);
                }
            }
            for column in &mut cells {
                pad_to(column, row + 1);
            }
        }
        // Materialise typed storage.
        let mut columns = Vec::with_capacity(self.layout.len());
        for (i, (path, slot)) in self.layout.iter().enumerate() {
            let column_cells = &cells[i];
            columns.push(materialize(path, *slot, column_cells, docs.len()));
        }
        Ok(ColumnarBatch {
            columns,
            rows: docs.len(),
        })
    }

    fn shred_record(
        &mut self,
        obj: &jsonx_data::Object,
        prefix: String,
        row: usize,
        cells: &mut Vec<Vec<Option<Value>>>,
        seen: &mut Vec<bool>,
    ) {
        for (key, value) in obj.iter() {
            let path = if prefix.is_empty() {
                key.to_string()
            } else {
                format!("{prefix}.{key}")
            };
            match value {
                Value::Obj(inner) if self.descends(&path) => {
                    self.shred_record(inner, path, row, cells, seen);
                }
                other => self.write_cell(&path, other, row, cells, seen),
            }
        }
    }

    /// Whether this path is flattened further (true when the layout has
    /// any column under it, or when discovering).
    fn descends(&self, path: &str) -> bool {
        self.discovering || self.descend_paths.contains(path)
    }

    fn write_cell(
        &mut self,
        path: &str,
        value: &Value,
        row: usize,
        cells: &mut Vec<Vec<Option<Value>>>,
        seen: &mut Vec<bool>,
    ) {
        let idx = match self.by_path.get(path) {
            Some(&i) => i,
            None if self.discovering => {
                let slot = slot_of(value);
                self.layout.push((path.to_string(), slot));
                self.by_path.insert(path.to_string(), self.layout.len() - 1);
                cells.push(Vec::new());
                seen.push(false);
                self.layout.len() - 1
            }
            // Schema-aware mode drops fields outside the planned layout
            // (they were not in the inferred schema).
            None => return,
        };
        if self.discovering {
            // Retype the column when observations conflict (the cost of
            // schema-blind conversion: every value re-checks the slot).
            let slot = self.layout[idx].1;
            let incoming = slot_of(value);
            if slot != incoming && !value.is_null() {
                self.layout[idx].1 = widen(slot, incoming);
            }
        }
        if cells[idx].len() > row {
            // A flattened path collided with a literal dotted key
            // (e.g. `{"a.b": 1}` vs `{"a": {"b": 1}}`): first write wins.
            return;
        }
        pad_to(&mut cells[idx], row);
        cells[idx].push(Some(value.clone()));
        if let Some(s) = seen.get_mut(idx) {
            *s = true;
        }
    }
}

/// Incremental schema-aware shredding over a fixed layout.
///
/// Created by [`Shredder::stream`]; push records with
/// [`push`](Self::push) and materialise the batch with
/// [`finish`](Self::finish). `shred` over the same records produces an
/// identical batch — pushing is per-row independent.
#[derive(Debug)]
pub struct ShredStream<'s> {
    shredder: &'s Shredder,
    builders: Vec<TypedBuilder>,
    rows: usize,
}

impl ShredStream<'_> {
    /// Shreds one record into the stream's columns. The error's `row` is
    /// this stream's local row index (records pushed so far).
    pub fn push(&mut self, doc: &Value) -> Result<(), ShredError> {
        let obj = doc
            .as_object()
            .ok_or(ShredError::NotARecord { row: self.rows })?;
        self.shredder
            .typed_record(obj, None, self.rows, &mut self.builders);
        self.rows += 1;
        Ok(())
    }

    /// Records pushed so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Materialises the batch, null-padding columns to the row count.
    pub fn finish(self) -> ColumnarBatch {
        let rows = self.rows;
        let columns = self
            .shredder
            .layout
            .iter()
            .zip(self.builders)
            .map(|((path, _), b)| b.finish(path, rows))
            .collect();
        ColumnarBatch { columns, rows }
    }

    /// Materialises the rows pushed so far and resets the stream to
    /// empty, keeping it usable for further pushes — the chunked pipeline
    /// extracts one batch per claimed chunk from a long-lived per-worker
    /// stream. `take_batch` then pushing more rows is equivalent to two
    /// separate streams: pushes are per-row independent.
    pub fn take_batch(&mut self) -> ColumnarBatch {
        std::mem::replace(self, self.shredder.stream()).finish()
    }
}

/// Direct typed column construction for the schema-aware path.
#[derive(Debug)]
struct TypedBuilder {
    data: ColumnData,
    validity: Vec<bool>,
}

impl TypedBuilder {
    fn new(slot: Slot) -> TypedBuilder {
        TypedBuilder {
            data: match slot {
                Slot::Bool => ColumnData::Bools(Vec::new()),
                Slot::Int => ColumnData::Ints(Vec::new()),
                Slot::Float => ColumnData::Floats(Vec::new()),
                Slot::Str => ColumnData::Strs(Vec::new()),
                Slot::Json => ColumnData::Json(Vec::new()),
            },
            validity: Vec::new(),
        }
    }

    /// Appends `value` at `row`, null-padding skipped rows. Values that
    /// do not fit the planned type (or literal-dotted-key collisions on
    /// an already-written row) record as invalid/ignored.
    fn write(&mut self, row: usize, value: &Value) {
        if self.validity.len() > row {
            return; // first write wins (dotted-key collision)
        }
        while self.validity.len() < row {
            self.validity.push(false);
        }
        let ok = match &mut self.data {
            ColumnData::Bools(v) => match value.as_bool() {
                Some(b) => {
                    v.push(b);
                    true
                }
                None => false,
            },
            ColumnData::Ints(v) => match value.as_i64() {
                Some(i) => {
                    v.push(i);
                    true
                }
                None => false,
            },
            ColumnData::Floats(v) => match value.as_f64() {
                Some(f) => {
                    v.push(f);
                    true
                }
                None => false,
            },
            ColumnData::Strs(v) => match value.as_str() {
                Some(s) => {
                    v.push(s.to_string());
                    true
                }
                None => false,
            },
            ColumnData::Json(v) => {
                if value.is_null() {
                    false
                } else {
                    v.push(value.to_json_string());
                    true
                }
            }
        };
        self.validity.push(ok);
    }

    fn finish(mut self, path: &str, rows: usize) -> Column {
        while self.validity.len() < rows {
            self.validity.push(false);
        }
        Column {
            path: path.to_string(),
            data: self.data,
            validity: self.validity,
        }
    }
}

fn pad_to(cells: &mut Vec<Option<Value>>, row: usize) {
    while cells.len() < row {
        cells.push(None);
    }
}

fn slot_of(value: &Value) -> Slot {
    match value {
        Value::Bool(_) => Slot::Bool,
        Value::Num(n) if n.is_integer() => Slot::Int,
        Value::Num(_) => Slot::Float,
        Value::Str(_) => Slot::Str,
        _ => Slot::Json,
    }
}

fn widen(a: Slot, b: Slot) -> Slot {
    match (a, b) {
        (Slot::Int, Slot::Float) | (Slot::Float, Slot::Int) => Slot::Float,
        (x, y) if x == y => x,
        _ => Slot::Json,
    }
}

/// Plans columns from an inferred type.
fn plan(ty: &JType, prefix: String, layout: &mut Vec<(String, Slot)>) {
    match ty {
        JType::Record(rt) => {
            for (name, field) in &rt.fields {
                let path = if prefix.is_empty() {
                    name.to_string()
                } else {
                    format!("{prefix}.{name}")
                };
                plan(&field.ty, path, layout);
            }
        }
        JType::Bool { .. } => layout.push((prefix, Slot::Bool)),
        JType::Int { .. } => layout.push((prefix, Slot::Int)),
        JType::Float { .. } => layout.push((prefix, Slot::Float)),
        JType::Str { .. } => layout.push((prefix, Slot::Str)),
        // Unions of Int+Float widen to Float; Null+T takes T (validity
        // covers the nulls); everything else spills to JSON.
        JType::Union(ms) => {
            let non_null: Vec<&JType> = ms
                .iter()
                .filter(|m| !matches!(m, JType::Null { .. }))
                .collect();
            match non_null.as_slice() {
                [single] => plan(single, prefix, layout),
                [JType::Int { .. }, JType::Float { .. }]
                | [JType::Float { .. }, JType::Int { .. }] => layout.push((prefix, Slot::Float)),
                _ => layout.push((prefix, Slot::Json)),
            }
        }
        // Arrays, bare nulls and Bottom: spill (validity handles nulls).
        _ => layout.push((prefix, Slot::Json)),
    }
}

fn materialize(path: &str, slot: Slot, cells: &[Option<Value>], rows: usize) -> Column {
    let mut validity = Vec::with_capacity(rows);
    let data = match slot {
        Slot::Bool => {
            let mut out = Vec::new();
            for cell in cells {
                match cell.as_ref().and_then(Value::as_bool) {
                    Some(b) => {
                        out.push(b);
                        validity.push(true);
                    }
                    None => validity.push(false),
                }
            }
            ColumnData::Bools(out)
        }
        Slot::Int => {
            let mut out = Vec::new();
            for cell in cells {
                match cell.as_ref().and_then(Value::as_i64) {
                    Some(i) => {
                        out.push(i);
                        validity.push(true);
                    }
                    None => validity.push(false),
                }
            }
            ColumnData::Ints(out)
        }
        Slot::Float => {
            let mut out = Vec::new();
            for cell in cells {
                match cell.as_ref().and_then(Value::as_f64) {
                    Some(f) => {
                        out.push(f);
                        validity.push(true);
                    }
                    None => validity.push(false),
                }
            }
            ColumnData::Floats(out)
        }
        Slot::Str => {
            let mut out = Vec::new();
            for cell in cells {
                match cell.as_ref().and_then(Value::as_str) {
                    Some(s) => {
                        out.push(s.to_string());
                        validity.push(true);
                    }
                    None => validity.push(false),
                }
            }
            ColumnData::Strs(out)
        }
        Slot::Json => {
            let mut out = Vec::new();
            for cell in cells {
                match cell {
                    Some(v) if !v.is_null() => {
                        out.push(v.to_json_string());
                        validity.push(true);
                    }
                    _ => validity.push(false),
                }
            }
            ColumnData::Json(out)
        }
    };
    debug_assert_eq!(validity.len(), rows);
    debug_assert_eq!(data.len(), validity.iter().filter(|v| **v).count());
    Column {
        path: path.to_string(),
        data,
        validity,
    }
}

/// Rebuilds the scalar projection of row `row` from a batch (used by the
/// round-trip tests; arrays/unions come back as JSON text).
pub fn row_scalar(batch: &ColumnarBatch, path: &str, row: usize) -> Option<Number> {
    let col = batch.column(path)?;
    if !col.validity.get(row).copied().unwrap_or(false) {
        return None;
    }
    let dense_idx = col.validity[..row].iter().filter(|v| **v).count();
    match &col.data {
        ColumnData::Ints(v) => Some(Number::Int(v[dense_idx])),
        ColumnData::Floats(v) => Number::from_f64(v[dense_idx]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_core::{infer_collection, Equivalence};
    use jsonx_data::json;

    fn docs() -> Vec<Value> {
        vec![
            json!({"id": 1, "name": "a", "geo": {"lat": 1.5}, "tags": [1]}),
            json!({"id": 2, "geo": {"lat": 2.5}, "tags": []}),
            json!({"id": 3, "name": "c", "geo": {"lat": -1.0}, "extra": true}),
        ]
    }

    fn aware_batch() -> ColumnarBatch {
        let ty = infer_collection(&docs(), Equivalence::Kind);
        Shredder::from_type(&ty).shred(&docs()).unwrap()
    }

    #[test]
    fn schema_aware_layout_flattens_records() {
        let b = aware_batch();
        let paths: Vec<&str> = b.columns.iter().map(|c| c.path.as_str()).collect();
        assert!(paths.contains(&"id"));
        assert!(paths.contains(&"geo.lat"));
        assert!(paths.contains(&"tags")); // spill
        assert_eq!(b.rows, 3);
    }

    #[test]
    fn validity_tracks_optionality() {
        let b = aware_batch();
        let name = b.column("name").unwrap();
        assert_eq!(name.validity, vec![true, false, true]);
        assert_eq!(name.data, ColumnData::Strs(vec!["a".into(), "c".into()]));
    }

    #[test]
    fn typed_columns() {
        let b = aware_batch();
        assert!(matches!(b.column("id").unwrap().data, ColumnData::Ints(_)));
        assert!(matches!(
            b.column("geo.lat").unwrap().data,
            ColumnData::Floats(_)
        ));
        assert!(matches!(
            b.column("extra").unwrap().data,
            ColumnData::Bools(_)
        ));
        assert!(matches!(
            b.column("tags").unwrap().data,
            ColumnData::Json(_)
        ));
    }

    #[test]
    fn union_typed_fields_spill() {
        let docs = vec![json!({"v": 1}), json!({"v": "s"})];
        let ty = infer_collection(&docs, Equivalence::Kind);
        let b = Shredder::from_type(&ty).shred(&docs).unwrap();
        assert!(matches!(b.column("v").unwrap().data, ColumnData::Json(_)));
        // Int+Float widens instead.
        let docs = vec![json!({"v": 1}), json!({"v": 2.5})];
        let ty = infer_collection(&docs, Equivalence::Kind);
        let b = Shredder::from_type(&ty).shred(&docs).unwrap();
        assert_eq!(
            b.column("v").unwrap().data,
            ColumnData::Floats(vec![1.0, 2.5])
        );
    }

    #[test]
    fn null_unions_use_validity() {
        let docs = vec![json!({"v": null}), json!({"v": 7})];
        let ty = infer_collection(&docs, Equivalence::Kind);
        let b = Shredder::from_type(&ty).shred(&docs).unwrap();
        let col = b.column("v").unwrap();
        assert_eq!(col.data, ColumnData::Ints(vec![7]));
        assert_eq!(col.validity, vec![false, true]);
    }

    #[test]
    fn discovering_matches_aware_on_layout_paths() {
        let aware = aware_batch();
        let blind = Shredder::discovering().shred(&docs()).unwrap();
        let mut a: Vec<&str> = aware.columns.iter().map(|c| c.path.as_str()).collect();
        let mut d: Vec<&str> = blind.columns.iter().map(|c| c.path.as_str()).collect();
        a.sort_unstable();
        d.sort_unstable();
        assert_eq!(a, d);
        // Values agree column by column.
        for col in &aware.columns {
            let other = blind.column(&col.path).unwrap();
            assert_eq!(col.validity, other.validity, "path {}", col.path);
        }
    }

    #[test]
    fn discovering_retypes_on_conflict() {
        let docs = vec![json!({"v": 1}), json!({"v": 2.5}), json!({"v": 3})];
        let b = Shredder::discovering().shred(&docs).unwrap();
        assert_eq!(
            b.column("v").unwrap().data,
            ColumnData::Floats(vec![1.0, 2.5, 3.0])
        );
        let docs = vec![json!({"v": 1}), json!({"v": "s"})];
        let b = Shredder::discovering().shred(&docs).unwrap();
        assert!(matches!(b.column("v").unwrap().data, ColumnData::Json(_)));
    }

    #[test]
    fn row_scalar_reads_back() {
        let b = aware_batch();
        assert_eq!(row_scalar(&b, "id", 1), Some(Number::Int(2)));
        assert_eq!(row_scalar(&b, "geo.lat", 2), Number::from_f64(-1.0));
        assert_eq!(row_scalar(&b, "name", 1), None); // invalid slot
    }

    #[test]
    fn non_records_rejected() {
        let mut s = Shredder::discovering();
        let err = s.shred(&[json!([1])]).unwrap_err();
        assert_eq!(err, ShredError::NotARecord { row: 0 });
    }

    #[test]
    fn stream_push_equals_batch_shred() {
        let ty = infer_collection(&docs(), Equivalence::Kind);
        let shredder = Shredder::from_type(&ty);
        let batch = shredder.clone().shred(&docs()).unwrap();
        let mut stream = shredder.stream();
        for doc in &docs() {
            stream.push(doc).unwrap();
        }
        assert_eq!(stream.finish(), batch);
    }

    #[test]
    fn append_equals_one_pass_shred() {
        let ty = infer_collection(&docs(), Equivalence::Kind);
        let shredder = Shredder::from_type(&ty);
        let whole = shredder.clone().shred(&docs()).unwrap();
        for split in 0..=docs().len() {
            let all = docs();
            let (a, b) = all.split_at(split);
            let mut left = shredder.clone().shred(a).unwrap();
            let right = shredder.clone().shred(b).unwrap();
            left.append(right);
            assert_eq!(left, whole, "split at {split}");
        }
    }

    #[test]
    fn stream_reports_local_row_for_non_records() {
        let ty = infer_collection(&docs(), Equivalence::Kind);
        let shredder = Shredder::from_type(&ty);
        let mut stream = shredder.stream();
        stream.push(&docs()[0]).unwrap();
        let err = stream.push(&json!([1])).unwrap_err();
        assert_eq!(err, ShredError::NotARecord { row: 1 });
    }

    #[test]
    #[should_panic(expected = "fixed layout")]
    fn discovering_shredders_cannot_stream() {
        let _ = Shredder::discovering().stream();
    }

    #[test]
    fn schema_string_renders() {
        let b = aware_batch();
        let s = b.schema_string();
        assert!(s.contains("id:int64"));
        assert!(s.contains("geo.lat:float64"));
    }
}
