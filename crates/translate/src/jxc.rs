//! `.jxc` — the workspace's binary columnar file format.
//!
//! A `.jxc` file is a [`ColumnarBatch`] on disk: one block per column
//! (validity bitmap + encoded values), a schema footer describing every
//! column, and a trailer pointing back at the footer so readers seek
//! straight to the schema without scanning data. The §5 story of the
//! paper — schema-driven translation feeding columnar analytics — ends
//! here instead of at an in-memory struct.
//!
//! ## Layout
//!
//! ```text
//! ┌─────────┬───────────────────────┬─────────┬──────────┬────────────┬─────────┐
//! │ "JXC1"  │ column blocks …       │ footer  │ ftr_crc  │ footer_off │ "JXC1"  │
//! │ 4 bytes │ (per-column, in order)│         │ u32 LE   │ u64 LE     │ 4 bytes │
//! └─────────┴───────────────────────┴─────────┴──────────┴────────────┴─────────┘
//!
//! footer := rows:u64, ncols:u32,
//!           ncols × { path_len:u16, path:bytes, type_tag:u8, enc:u8,
//!                     block_off:u64, block_len:u64, valid_count:u64,
//!                     block_crc:u32 }
//!
//! block  := validity bitmap (⌈rows/8⌉ bytes, LSB-first), then dense
//!           values (one entry per *valid* row) under the encoding:
//!   plain    bool: bit-packed; int64: i64 LE; float64: f64 bits LE
//!   dict     dict_len:u32, dict_len × {len:u32, bytes}, codes:u32 …
//!   list-int (n+1):u32 offsets, then Σ items × i64 LE
//!   list-str (n+1):u32 offsets, dict (as above), then Σ items × u32 codes
//! ```
//!
//! All integers are little-endian. Every string column is
//! dictionary-encoded (first-appearance order). JSON spill columns are
//! inspected at write time: when **every** valid cell is an integer
//! array — or a string array — whose compact serialization matches the
//! stored text byte for byte, the column is stored as nested-list
//! offset arrays instead of opaque text, which is what gives `jsonx cat
//! --flatten` its cross-join semantics (and costs nothing when the data
//! doesn't fit: the column falls back to a text dictionary). The
//! round-trip verification makes `read(write(batch)) == batch` exact by
//! construction, pinned by `tests/prop_jxc.rs`.
//!
//! Counts (rows per column, dictionary entries, total list items) are
//! bounded by `u32::MAX` per column block; the writer panics past that —
//! a single batch that large should be written as multiple files.
//!
//! ## Integrity and crash semantics
//!
//! Every column block and the footer carry a CRC-32
//! ([`jsonx_data::crc32`]), and the trailing magic doubles as a
//! **finalize marker**: it is the last thing written, so its absence
//! means the writer died mid-file. The reader therefore distinguishes
//! two failure worlds:
//!
//! * [`JxcError::Truncated`] — the leading magic is present but the
//!   trailer (checksum + footer offset + finalize marker) is not, or the
//!   file ends before a structure it promises: the classic
//!   crash-mid-write shape. The run that produced it can be re-finalized
//!   with `--resume`.
//! * [`JxcError::Corrupt`] — the file *claims* to be complete but a
//!   checksum or structural invariant fails: bit rot or foul play, not
//!   an interrupted write. Resuming cannot help; the file is bad.

use crate::columnar::{Column, ColumnData, ColumnarBatch};
use jsonx_data::{crc32, Number, Object, Value};
use std::collections::HashMap;
use std::fmt;
use std::io::Write as _;
use std::path::Path;

const MAGIC: &[u8; 4] = b"JXC1";

/// How one column's dense values are encoded on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Fixed-width scalars (bit-packed bools, i64/f64 words).
    Plain,
    /// Dictionary: unique strings once, u32 codes per value.
    Dict,
    /// Nested integer lists: offset array + flat i64 items.
    ListInt,
    /// Nested string lists: offset array + dictionary + flat u32 codes.
    ListStr,
}

impl Encoding {
    /// Stable label used by `jsonx cat` and the footer docs.
    pub fn label(&self) -> &'static str {
        match self {
            Encoding::Plain => "plain",
            Encoding::Dict => "dict",
            Encoding::ListInt => "list-int",
            Encoding::ListStr => "list-str",
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Encoding::Plain => 0,
            Encoding::Dict => 1,
            Encoding::ListInt => 2,
            Encoding::ListStr => 3,
        }
    }

    fn from_tag(tag: u8) -> Option<Encoding> {
        Some(match tag {
            0 => Encoding::Plain,
            1 => Encoding::Dict,
            2 => Encoding::ListInt,
            3 => Encoding::ListStr,
            _ => return None,
        })
    }
}

/// Why a `.jxc` file could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JxcError {
    /// The leading magic is missing — not a `.jxc` file at all.
    BadMagic,
    /// The file starts as `.jxc` but ends before a structure it
    /// promises — including a missing finalize marker, the signature of
    /// a writer killed mid-write. The producing run is resumable.
    Truncated,
    /// The file claims completeness but fails a checksum or structural
    /// invariant (bad tags, offsets, codes, CRC mismatches).
    Corrupt(String),
    /// The underlying file could not be read.
    Io(String),
}

impl fmt::Display for JxcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JxcError::BadMagic => write!(f, "not a .jxc file (bad magic)"),
            JxcError::Truncated => write!(
                f,
                ".jxc file is truncated (likely interrupted mid-write; the producing run is resumable)"
            ),
            JxcError::Corrupt(msg) => write!(f, "corrupt .jxc file: {msg}"),
            JxcError::Io(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for JxcError {}

/// Per-column facts a reader learns from the footer — what `jsonx cat`
/// prints next to the schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JxcColumnInfo {
    /// Dotted leaf path.
    pub path: String,
    /// Storage type name (`bool`, `int64`, `float64`, `utf8`, `json`).
    pub type_name: &'static str,
    /// On-disk encoding of the dense values.
    pub encoding: Encoding,
    /// The column block's size in bytes (bitmap + values).
    pub block_bytes: usize,
    /// Number of valid (non-null) cells.
    pub valid_count: usize,
    /// Dictionary entry count, for dictionary-bearing encodings.
    pub dict_len: Option<usize>,
    /// Total flattened list items, for list encodings.
    pub list_items: Option<usize>,
}

/// A decoded `.jxc` file: the batch plus the footer's per-column facts.
#[derive(Debug, Clone, PartialEq)]
pub struct JxcFile {
    /// The reconstructed batch — equal to the batch that was written.
    pub batch: ColumnarBatch,
    /// Per-column encodings and sizes, in column order.
    pub columns: Vec<JxcColumnInfo>,
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn as_u32(n: usize, what: &str) -> u32 {
    u32::try_from(n).unwrap_or_else(|_| panic!(".jxc writer: {what} ({n}) exceeds u32::MAX"))
}

/// LSB-first bit-pack of a bool sequence.
fn pack_bits(bits: impl ExactSizeIterator<Item = bool>, out: &mut Vec<u8>) {
    let n = bits.len();
    let start = out.len();
    out.resize(start + n.div_ceil(8), 0);
    for (i, bit) in bits.enumerate() {
        if bit {
            out[start + i / 8] |= 1 << (i % 8);
        }
    }
}

/// The shape a JSON spill column must verify against to earn a list
/// encoding.
enum ListShape {
    Ints(Vec<Vec<i64>>),
    Strs(Vec<Vec<String>>),
}

/// Inspects a JSON spill column's texts: `Some(shape)` when every cell
/// is an integer array (or, failing that, a string array) whose compact
/// serialization reproduces the stored text exactly. The byte-equality
/// check is what lets the reader re-serialize lists without keeping the
/// original text around.
fn sniff_lists(texts: &[String]) -> Option<ListShape> {
    let mut ints: Option<Vec<Vec<i64>>> = Some(Vec::with_capacity(texts.len()));
    let mut strs: Option<Vec<Vec<String>>> = Some(Vec::with_capacity(texts.len()));
    for text in texts {
        if ints.is_none() && strs.is_none() {
            return None;
        }
        let Ok(value) = jsonx_syntax::parse(text) else {
            return None;
        };
        let Value::Arr(items) = &value else {
            return None;
        };
        if value.to_json_string() != *text {
            return None;
        }
        if let Some(acc) = &mut ints {
            let parsed: Option<Vec<i64>> = items
                .iter()
                .map(|v| match v {
                    Value::Num(Number::Int(i)) => Some(*i),
                    _ => None,
                })
                .collect();
            match parsed {
                Some(row) => acc.push(row),
                None => ints = None,
            }
        }
        if let Some(acc) = &mut strs {
            let parsed: Option<Vec<String>> = items
                .iter()
                .map(|v| match v {
                    Value::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .collect();
            match parsed {
                Some(row) => acc.push(row),
                None => strs = None,
            }
        }
    }
    match (ints, strs) {
        (Some(rows), _) => Some(ListShape::Ints(rows)),
        (None, Some(rows)) => Some(ListShape::Strs(rows)),
        (None, None) => None,
    }
}

/// Appends a string dictionary (first-appearance order) and returns each
/// input's code.
fn write_dict<'a>(values: impl Iterator<Item = &'a str>, out: &mut Vec<u8>) -> Vec<u32> {
    let mut index: HashMap<&'a str, u32> = HashMap::new();
    let mut entries: Vec<&'a str> = Vec::new();
    let codes: Vec<u32> = values
        .map(|s| {
            *index.entry(s).or_insert_with(|| {
                entries.push(s);
                as_u32(entries.len() - 1, "dictionary size")
            })
        })
        .collect();
    put_u32(out, as_u32(entries.len(), "dictionary size"));
    for entry in &entries {
        put_u32(out, as_u32(entry.len(), "dictionary entry size"));
        out.extend_from_slice(entry.as_bytes());
    }
    codes
}

/// Encodes one column's block (bitmap + dense values); returns the
/// chosen encoding.
fn write_block(col: &Column, out: &mut Vec<u8>) -> Encoding {
    pack_bits(col.validity.iter().copied(), out);
    match &col.data {
        ColumnData::Bools(v) => {
            pack_bits(v.iter().copied(), out);
            Encoding::Plain
        }
        ColumnData::Ints(v) => {
            for i in v {
                put_u64(out, *i as u64);
            }
            Encoding::Plain
        }
        ColumnData::Floats(v) => {
            for f in v {
                put_u64(out, f.to_bits());
            }
            Encoding::Plain
        }
        ColumnData::Strs(v) => {
            let codes = write_dict(v.iter().map(String::as_str), out);
            for code in codes {
                put_u32(out, code);
            }
            Encoding::Dict
        }
        ColumnData::Json(texts) => match sniff_lists(texts) {
            Some(ListShape::Ints(rows)) => {
                let mut offset = 0u32;
                put_u32(out, 0);
                for row in &rows {
                    offset = offset
                        .checked_add(as_u32(row.len(), "list length"))
                        .unwrap_or_else(|| panic!(".jxc writer: list items exceed u32::MAX"));
                    put_u32(out, offset);
                }
                for row in &rows {
                    for i in row {
                        put_u64(out, *i as u64);
                    }
                }
                Encoding::ListInt
            }
            Some(ListShape::Strs(rows)) => {
                let mut offset = 0u32;
                put_u32(out, 0);
                for row in &rows {
                    offset = offset
                        .checked_add(as_u32(row.len(), "list length"))
                        .unwrap_or_else(|| panic!(".jxc writer: list items exceed u32::MAX"));
                    put_u32(out, offset);
                }
                let codes = write_dict(
                    rows.iter().flat_map(|row| row.iter().map(String::as_str)),
                    out,
                );
                for code in codes {
                    put_u32(out, code);
                }
                Encoding::ListStr
            }
            None => {
                let codes = write_dict(texts.iter().map(String::as_str), out);
                for code in codes {
                    put_u32(out, code);
                }
                Encoding::Dict
            }
        },
    }
}

fn type_tag(data: &ColumnData) -> u8 {
    match data {
        ColumnData::Bools(_) => 0,
        ColumnData::Ints(_) => 1,
        ColumnData::Floats(_) => 2,
        ColumnData::Strs(_) => 3,
        ColumnData::Json(_) => 4,
    }
}

/// Serializes a batch to `.jxc` bytes.
///
/// # Panics
///
/// Panics when a column's validity length disagrees with the batch row
/// count or its dense data length disagrees with its valid count (layout
/// invariant violations), or when a per-column count exceeds `u32::MAX`.
pub fn write_jxc(batch: &ColumnarBatch) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    let mut blocks: Vec<(usize, usize, Encoding, usize)> = Vec::with_capacity(batch.columns.len());
    for col in &batch.columns {
        assert_eq!(
            col.validity.len(),
            batch.rows,
            ".jxc writer: validity length mismatch at {}",
            col.path
        );
        let valid_count = col.validity.iter().filter(|v| **v).count();
        assert_eq!(
            data_len(&col.data),
            valid_count,
            ".jxc writer: dense length mismatch at {}",
            col.path
        );
        let off = out.len();
        let enc = write_block(col, &mut out);
        blocks.push((off, out.len() - off, enc, valid_count));
    }
    let footer_off = out.len();
    put_u64(&mut out, batch.rows as u64);
    put_u32(&mut out, as_u32(batch.columns.len(), "column count"));
    for (col, (off, len, enc, valid_count)) in batch.columns.iter().zip(&blocks) {
        let block_crc = crc32(&out[*off..*off + *len]);
        let path = col.path.as_bytes();
        put_u16(
            &mut out,
            u16::try_from(path.len())
                .unwrap_or_else(|_| panic!(".jxc writer: column path longer than 64 KiB")),
        );
        out.extend_from_slice(path);
        out.push(type_tag(&col.data));
        out.push(enc.tag());
        put_u64(&mut out, *off as u64);
        put_u64(&mut out, *len as u64);
        put_u64(&mut out, *valid_count as u64);
        put_u32(&mut out, block_crc);
    }
    let footer_crc = crc32(&out[footer_off..]);
    put_u32(&mut out, footer_crc);
    put_u64(&mut out, footer_off as u64);
    // The trailing magic is the finalize marker: written last, so its
    // presence certifies the file was completely written.
    out.extend_from_slice(MAGIC);
    out
}

/// Writes a batch to `path` as `.jxc`; returns the file size in bytes.
pub fn write_jxc_file(path: &Path, batch: &ColumnarBatch) -> std::io::Result<u64> {
    let bytes = write_jxc(batch);
    let mut file = std::fs::File::create(path)?;
    file.write_all(&bytes)?;
    Ok(bytes.len() as u64)
}

fn data_len(data: &ColumnData) -> usize {
    match data {
        ColumnData::Bools(v) => v.len(),
        ColumnData::Ints(v) => v.len(),
        ColumnData::Floats(v) => v.len(),
        ColumnData::Strs(v) => v.len(),
        ColumnData::Json(v) => v.len(),
    }
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian cursor.
struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], JxcError> {
        let end = self.pos.checked_add(n).ok_or(JxcError::Truncated)?;
        if end > self.bytes.len() {
            return Err(JxcError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u16(&mut self) -> Result<u16, JxcError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, JxcError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, JxcError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn unpack_bits(bytes: &[u8], n: usize) -> Vec<bool> {
    (0..n).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect()
}

fn read_dict(cur: &mut Cur<'_>) -> Result<Vec<String>, JxcError> {
    let len = cur.u32()? as usize;
    let mut dict = Vec::with_capacity(len.min(1 << 16));
    for _ in 0..len {
        let bytes = cur.u32()? as usize;
        let entry = std::str::from_utf8(cur.take(bytes)?)
            .map_err(|_| JxcError::Corrupt("non-UTF-8 dictionary entry".into()))?;
        dict.push(entry.to_owned());
    }
    Ok(dict)
}

fn read_codes(cur: &mut Cur<'_>, n: usize, dict: &[String]) -> Result<Vec<String>, JxcError> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let code = cur.u32()? as usize;
        let entry = dict
            .get(code)
            .ok_or_else(|| JxcError::Corrupt(format!("dictionary code {code} out of range")))?;
        out.push(entry.clone());
    }
    Ok(out)
}

fn read_offsets(cur: &mut Cur<'_>, n: usize) -> Result<Vec<usize>, JxcError> {
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(cur.u32()? as usize);
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) || offsets[0] != 0 {
        return Err(JxcError::Corrupt("non-monotone list offsets".into()));
    }
    Ok(offsets)
}

fn read_block(
    block: &[u8],
    rows: usize,
    valid_count: usize,
    type_tag: u8,
    enc: Encoding,
    path: &str,
) -> Result<(Column, Option<usize>, Option<usize>), JxcError> {
    let bitmap_bytes = rows.div_ceil(8);
    let mut cur = Cur {
        bytes: block,
        pos: 0,
    };
    let validity = unpack_bits(cur.take(bitmap_bytes)?, rows);
    if validity.iter().filter(|v| **v).count() != valid_count {
        return Err(JxcError::Corrupt(format!(
            "validity bitmap of {path} disagrees with its valid count"
        )));
    }
    let mut dict_len = None;
    let mut list_items = None;
    let data = match (type_tag, enc) {
        (0, Encoding::Plain) => {
            let packed = cur.take(valid_count.div_ceil(8))?;
            ColumnData::Bools(unpack_bits(packed, valid_count))
        }
        (1, Encoding::Plain) => {
            let mut v = Vec::with_capacity(valid_count);
            for _ in 0..valid_count {
                v.push(cur.u64()? as i64);
            }
            ColumnData::Ints(v)
        }
        (2, Encoding::Plain) => {
            let mut v = Vec::with_capacity(valid_count);
            for _ in 0..valid_count {
                v.push(f64::from_bits(cur.u64()?));
            }
            ColumnData::Floats(v)
        }
        (3, Encoding::Dict) | (4, Encoding::Dict) => {
            let dict = read_dict(&mut cur)?;
            dict_len = Some(dict.len());
            let values = read_codes(&mut cur, valid_count, &dict)?;
            if type_tag == 3 {
                ColumnData::Strs(values)
            } else {
                ColumnData::Json(values)
            }
        }
        (4, Encoding::ListInt) => {
            let offsets = read_offsets(&mut cur, valid_count)?;
            let total = offsets[valid_count];
            list_items = Some(total);
            let mut items = Vec::with_capacity(total);
            for _ in 0..total {
                items.push(cur.u64()? as i64);
            }
            let texts = offsets
                .windows(2)
                .map(|w| {
                    Value::Arr(
                        items[w[0]..w[1]]
                            .iter()
                            .map(|i| Value::Num(Number::Int(*i)))
                            .collect(),
                    )
                    .to_json_string()
                })
                .collect();
            ColumnData::Json(texts)
        }
        (4, Encoding::ListStr) => {
            let offsets = read_offsets(&mut cur, valid_count)?;
            let total = offsets[valid_count];
            list_items = Some(total);
            let dict = read_dict(&mut cur)?;
            dict_len = Some(dict.len());
            let items = read_codes(&mut cur, total, &dict)?;
            let texts = offsets
                .windows(2)
                .map(|w| {
                    Value::Arr(items[w[0]..w[1]].iter().cloned().map(Value::Str).collect())
                        .to_json_string()
                })
                .collect();
            ColumnData::Json(texts)
        }
        (tag, enc) => {
            return Err(JxcError::Corrupt(format!(
                "type tag {tag} cannot carry encoding {}",
                enc.label()
            )));
        }
    };
    if cur.pos != block.len() {
        return Err(JxcError::Corrupt(format!(
            "column block of {path} has {} trailing bytes",
            block.len() - cur.pos
        )));
    }
    Ok((
        Column {
            path: path.to_owned(),
            data,
            validity,
        },
        dict_len,
        list_items,
    ))
}

/// Decodes `.jxc` bytes back into the batch that was written.
///
/// Failure taxonomy: no leading magic → [`JxcError::BadMagic`] (not our
/// file); leading magic but no complete trailer (footer CRC + offset +
/// finalize marker) → [`JxcError::Truncated`] (killed mid-write); a
/// complete trailer whose checksums or structure disagree →
/// [`JxcError::Corrupt`].
pub fn read_jxc(bytes: &[u8]) -> Result<JxcFile, JxcError> {
    if bytes.len() < 4 || &bytes[..4] != MAGIC {
        return Err(JxcError::BadMagic);
    }
    // The trailer is footer_crc:u32 + footer_off:u64 + finalize magic;
    // anything shorter — or a missing finalize marker — is a file whose
    // writer never got to the end.
    if bytes.len() < 4 + 4 + 8 + 4 || &bytes[bytes.len() - 4..] != MAGIC {
        return Err(JxcError::Truncated);
    }
    let footer_off =
        u64::from_le_bytes(bytes[bytes.len() - 12..bytes.len() - 4].try_into().unwrap());
    let footer_off = usize::try_from(footer_off).map_err(|_| JxcError::Truncated)?;
    if footer_off < 4 || footer_off > bytes.len() - 16 {
        return Err(JxcError::Corrupt("footer offset out of range".into()));
    }
    let footer_crc = u32::from_le_bytes(
        bytes[bytes.len() - 16..bytes.len() - 12]
            .try_into()
            .unwrap(),
    );
    if crc32(&bytes[footer_off..bytes.len() - 16]) != footer_crc {
        return Err(JxcError::Corrupt("footer checksum mismatch".into()));
    }
    let mut cur = Cur {
        bytes: &bytes[..bytes.len() - 16],
        pos: footer_off,
    };
    let rows = usize::try_from(cur.u64()?).map_err(|_| JxcError::Truncated)?;
    let ncols = cur.u32()? as usize;
    let mut columns = Vec::with_capacity(ncols.min(1 << 12));
    let mut infos = Vec::with_capacity(ncols.min(1 << 12));
    for _ in 0..ncols {
        let path_len = cur.u16()? as usize;
        let path = std::str::from_utf8(cur.take(path_len)?)
            .map_err(|_| JxcError::Corrupt("non-UTF-8 column path".into()))?
            .to_owned();
        let type_tag = cur.take(1)?[0];
        let enc_tag = cur.take(1)?[0];
        let enc = Encoding::from_tag(enc_tag)
            .ok_or_else(|| JxcError::Corrupt(format!("unknown encoding tag {enc_tag}")))?;
        let block_off = usize::try_from(cur.u64()?).map_err(|_| JxcError::Truncated)?;
        let block_len = usize::try_from(cur.u64()?).map_err(|_| JxcError::Truncated)?;
        let valid_count = usize::try_from(cur.u64()?).map_err(|_| JxcError::Truncated)?;
        let block_crc = cur.u32()?;
        if valid_count > rows {
            return Err(JxcError::Corrupt(format!(
                "column {path} claims more valid cells than rows"
            )));
        }
        let block_end = block_off
            .checked_add(block_len)
            .filter(|end| *end <= footer_off && block_off >= 4)
            .ok_or_else(|| JxcError::Corrupt(format!("column block of {path} out of range")))?;
        if crc32(&bytes[block_off..block_end]) != block_crc {
            return Err(JxcError::Corrupt(format!(
                "column block of {path} fails its checksum"
            )));
        }
        let (column, dict_len, list_items) = read_block(
            &bytes[block_off..block_end],
            rows,
            valid_count,
            type_tag,
            enc,
            &path,
        )?;
        infos.push(JxcColumnInfo {
            path,
            type_name: match type_tag {
                0 => "bool",
                1 => "int64",
                2 => "float64",
                3 => "utf8",
                4 => "json",
                other => {
                    return Err(JxcError::Corrupt(format!("unknown type tag {other}")));
                }
            },
            encoding: enc,
            block_bytes: block_len,
            valid_count,
            dict_len,
            list_items,
        });
        columns.push(column);
    }
    Ok(JxcFile {
        batch: ColumnarBatch { columns, rows },
        columns: infos,
    })
}

/// Reads a `.jxc` file from disk.
pub fn read_jxc_file(path: &Path) -> Result<JxcFile, JxcError> {
    let bytes =
        std::fs::read(path).map_err(|e| JxcError::Io(format!("{}: {e}", path.display())))?;
    read_jxc(&bytes)
}

// ---------------------------------------------------------------------------
// Row reconstruction (jsonx cat)
// ---------------------------------------------------------------------------

/// The value of one cell for display: scalars as themselves, JSON spill
/// text parsed back into a value (raw text as a string if it somehow
/// does not parse).
fn cell_value(data: &ColumnData, dense: usize) -> Value {
    match data {
        ColumnData::Bools(v) => Value::Bool(v[dense]),
        ColumnData::Ints(v) => Value::Num(Number::Int(v[dense])),
        ColumnData::Floats(v) => Number::from_f64(v[dense])
            .map(Value::Num)
            .unwrap_or(Value::Null),
        ColumnData::Strs(v) => Value::Str(v[dense].clone()),
        ColumnData::Json(v) => {
            jsonx_syntax::parse(&v[dense]).unwrap_or_else(|_| Value::Str(v[dense].clone()))
        }
    }
}

/// Reconstructs the first `limit` rows as flat JSON objects (dotted
/// paths as keys, absent cells omitted) — the inverse view of shredding,
/// for `jsonx cat`.
pub fn rows_as_values(batch: &ColumnarBatch, limit: usize) -> Vec<Value> {
    let n = batch.rows.min(limit);
    let mut dense = vec![0usize; batch.columns.len()];
    let mut out = Vec::with_capacity(n);
    for row in 0..n {
        let mut obj = Object::new();
        for (c, col) in batch.columns.iter().enumerate() {
            if col.validity[row] {
                obj.insert(col.path.clone(), cell_value(&col.data, dense[c]));
                dense[c] += 1;
            }
        }
        out.push(Value::Obj(obj));
    }
    out
}

/// Cross-join flattening of list columns, the semantics `jsonx cat
/// --flatten` exposes: each row expands into the cartesian product of
/// its list-encoded columns' elements (an empty or absent list
/// contributes a single null), with every scalar column repeated per
/// combination — the classic nested-to-flat-rows unnest.
///
/// Only columns the file stored list-encoded ([`Encoding::ListInt`] /
/// [`Encoding::ListStr`]) flatten; opaque JSON spill stays embedded.
/// Returns the first `limit` flattened rows.
pub fn flatten_rows(file: &JxcFile, limit: usize) -> Vec<Value> {
    let list_cols: Vec<usize> = file
        .columns
        .iter()
        .enumerate()
        .filter(|(_, info)| matches!(info.encoding, Encoding::ListInt | Encoding::ListStr))
        .map(|(i, _)| i)
        .collect();
    let batch = &file.batch;
    let mut dense = vec![0usize; batch.columns.len()];
    let mut out = Vec::new();
    for row in 0..batch.rows {
        // Base object of non-list cells, plus each list column's variants.
        let mut base = Object::new();
        let mut variants: Vec<(String, Vec<Value>)> = Vec::with_capacity(list_cols.len());
        for (c, col) in batch.columns.iter().enumerate() {
            let valid = col.validity[row];
            let value = valid.then(|| cell_value(&col.data, dense[c]));
            if valid {
                dense[c] += 1;
            }
            if list_cols.contains(&c) {
                let elems = match value {
                    Some(Value::Arr(items)) if !items.is_empty() => items,
                    _ => vec![Value::Null],
                };
                variants.push((col.path.clone(), elems));
            } else if let Some(v) = value {
                base.insert(col.path.clone(), v);
            }
        }
        // Cartesian product over the list columns' elements.
        let mut idx = vec![0usize; variants.len()];
        loop {
            let mut obj = base.clone();
            for (slot, (path, elems)) in idx.iter().zip(&variants) {
                obj.insert(path.clone(), elems[*slot].clone());
            }
            out.push(Value::Obj(obj));
            if out.len() >= limit {
                return out;
            }
            // Odometer increment; done when it wraps (or there are no
            // list columns at all — one combination per row).
            let mut carry = true;
            for (slot, (_, elems)) in idx.iter_mut().zip(&variants).rev() {
                *slot += 1;
                if *slot < elems.len() {
                    carry = false;
                    break;
                }
                *slot = 0;
            }
            if carry {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::Shredder;
    use jsonx_core::{infer_collection, Equivalence};
    use jsonx_syntax::parse_ndjson;

    fn shred(ndjson: &str) -> ColumnarBatch {
        let docs = parse_ndjson(ndjson).unwrap();
        let ty = infer_collection(&docs, Equivalence::Kind);
        Shredder::from_type(&ty).shred(&docs).unwrap()
    }

    fn round_trip(batch: &ColumnarBatch) -> JxcFile {
        let bytes = write_jxc(batch);
        let file = read_jxc(&bytes).expect("read back");
        assert_eq!(&file.batch, batch);
        file
    }

    #[test]
    fn scalar_columns_round_trip() {
        let batch = shred(concat!(
            "{\"id\": 1, \"name\": \"ada\", \"score\": 9.5, \"ok\": true}\n",
            "{\"id\": 2, \"name\": \"bob\", \"score\": -0.5, \"ok\": false}\n",
            "{\"id\": 3, \"name\": \"ada\"}\n",
        ));
        let file = round_trip(&batch);
        let by_path: HashMap<&str, &JxcColumnInfo> =
            file.columns.iter().map(|i| (i.path.as_str(), i)).collect();
        assert_eq!(by_path["id"].encoding, Encoding::Plain);
        assert_eq!(by_path["name"].encoding, Encoding::Dict);
        assert_eq!(by_path["name"].dict_len, Some(2), "ada deduplicates");
        assert_eq!(by_path["score"].valid_count, 2);
    }

    #[test]
    fn int_lists_get_offset_arrays() {
        let batch = shred("{\"xs\": [1, 2, 3]}\n{\"xs\": []}\n{\"xs\": [-7]}\n");
        let file = round_trip(&batch);
        assert_eq!(file.columns[0].encoding, Encoding::ListInt);
        assert_eq!(file.columns[0].list_items, Some(4));
    }

    #[test]
    fn string_lists_get_offsets_plus_dict() {
        let batch = shred("{\"tags\": [\"a\", \"b\"]}\n{\"tags\": [\"b\"]}\n");
        let file = round_trip(&batch);
        assert_eq!(file.columns[0].encoding, Encoding::ListStr);
        assert_eq!(file.columns[0].dict_len, Some(2));
        assert_eq!(file.columns[0].list_items, Some(3));
    }

    #[test]
    fn mixed_spill_falls_back_to_text_dict() {
        let batch = shred("{\"v\": [1, \"x\"]}\n{\"v\": {\"k\": 1}}\n");
        let file = round_trip(&batch);
        assert_eq!(file.columns[0].encoding, Encoding::Dict);
    }

    #[test]
    fn non_canonical_list_text_is_not_list_encoded() {
        // Spacing differs from the compact serializer: byte equality
        // fails, so the column must stay opaque text to round-trip.
        let batch = ColumnarBatch {
            columns: vec![Column {
                path: "v".into(),
                data: ColumnData::Json(vec!["[1,  2]".into()]),
                validity: vec![true],
            }],
            rows: 1,
        };
        let file = round_trip(&batch);
        assert_eq!(file.columns[0].encoding, Encoding::Dict);
    }

    #[test]
    fn nulls_and_missing_cells_round_trip() {
        let batch = shred("{\"a\": 1}\n{\"b\": \"x\"}\n{\"a\": null, \"b\": \"y\"}\n");
        round_trip(&batch);
    }

    #[test]
    fn empty_batch_round_trips() {
        let batch = shred("");
        round_trip(&batch);
    }

    #[test]
    fn corrupt_files_are_rejected_not_panicked() {
        let batch = shred("{\"id\": 1, \"tags\": [\"a\"]}\n");
        let good = write_jxc(&batch);
        assert_eq!(read_jxc(b"nope"), Err(JxcError::BadMagic));
        assert_eq!(read_jxc(b"XXXX0123456789AB"), Err(JxcError::BadMagic));
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(read_jxc(&bad), Err(JxcError::BadMagic));
        for cut in [good.len() - 1, good.len() - 9, 10] {
            assert!(read_jxc(&good[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn truncation_is_distinguished_from_corruption() {
        let batch = shred("{\"id\": 1, \"name\": \"ada\"}\n{\"id\": 2}\n");
        let good = write_jxc(&batch);
        // Any prefix that keeps the leading magic but loses the finalize
        // marker reads as Truncated — the crash-mid-write shape.
        for cut in [4, 5, good.len() / 2, good.len() - 1] {
            assert_eq!(
                read_jxc(&good[..cut]),
                Err(JxcError::Truncated),
                "cut at {cut}"
            );
        }
        // A complete file with a flipped bit in a column block or the
        // footer reads as Corrupt — checksums catch what structural
        // validation alone would miss.
        for pos in [6, good.len() - 20] {
            let mut bad = good.clone();
            bad[pos] ^= 0x01;
            assert!(
                matches!(read_jxc(&bad), Err(JxcError::Corrupt(_))),
                "flip at {pos}: {:?}",
                read_jxc(&bad)
            );
        }
    }

    #[test]
    fn rows_reconstruct_shredded_records() {
        let batch = shred("{\"id\": 1, \"geo\": {\"lat\": 1.5}}\n{\"id\": 2}\n");
        let rows = rows_as_values(&batch, 10);
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].to_json_string(),
            "{\"geo.lat\":1.5,\"id\":1}".to_string()
        );
        assert_eq!(rows[1].to_json_string(), "{\"id\":2}".to_string());
    }

    #[test]
    fn flatten_cross_joins_list_columns() {
        let batch = shred(concat!(
            "{\"id\": 1, \"xs\": [1, 2], \"tags\": [\"a\", \"b\"]}\n",
            "{\"id\": 2, \"xs\": [], \"tags\": [\"c\"]}\n",
        ));
        let file = round_trip(&batch);
        let flat = flatten_rows(&file, 100);
        // Row 1: 2 × 2 combinations; row 2: empty xs → single null × one tag.
        assert_eq!(flat.len(), 5);
        assert_eq!(
            flat[0].to_json_string(),
            "{\"id\":1,\"tags\":\"a\",\"xs\":1}"
        );
        assert_eq!(
            flat[3].to_json_string(),
            "{\"id\":1,\"tags\":\"b\",\"xs\":2}"
        );
        assert_eq!(
            flat[4].to_json_string(),
            "{\"id\":2,\"tags\":\"c\",\"xs\":null}"
        );
    }
}
