//! An Avro-flavoured binary row codec.
//!
//! Implements the core of Avro's binary encoding against a writer schema
//! derived from an inferred type: zig-zag varint integers, IEEE-754
//! little-endian doubles, length-prefixed UTF-8 strings, arrays as counted
//! blocks, records as field concatenation in schema order, and unions as a
//! varint branch index followed by the branch encoding. Optional record
//! fields become `union { null, T }`, exactly how Avro models missing
//! values.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use jsonx_core::JType;
use jsonx_data::{Number, Object, Value};
use std::fmt;

/// The Avro-style writer schema.
#[derive(Debug, Clone, PartialEq)]
pub enum AvroSchema {
    Null,
    Boolean,
    Long,
    Double,
    Str,
    /// Array of one item schema.
    Array(Box<AvroSchema>),
    /// Record fields in declaration order.
    Record(Vec<AvroField>),
    /// Union branches (index-encoded).
    Union(Vec<AvroSchema>),
}

/// One record field of an [`AvroSchema::Record`].
#[derive(Debug, Clone, PartialEq)]
pub struct AvroField {
    /// Field name.
    pub name: String,
    /// Field schema (already nullable when the field is optional).
    pub schema: AvroSchema,
    /// True when the `null` branch was introduced *only* to encode field
    /// absence: decoding a null restores an absent field. When the data
    /// itself contained nulls this is false and nulls decode as nulls
    /// (absence becomes an explicit null — the lossy corner Avro itself
    /// has).
    pub null_means_absent: bool,
}

impl AvroSchema {
    /// Derives a writer schema from an inferred type. Optional fields wrap
    /// in `union { null, T }`; union types map to Avro unions; `Bottom`
    /// (never observed) maps to `null`.
    pub fn from_type(ty: &JType) -> AvroSchema {
        match ty {
            JType::Bottom | JType::Null { .. } => AvroSchema::Null,
            JType::Bool { .. } => AvroSchema::Boolean,
            JType::Int { .. } => AvroSchema::Long,
            JType::Float { .. } => AvroSchema::Double,
            JType::Str { .. } => AvroSchema::Str,
            JType::Array(at) => AvroSchema::Array(Box::new(AvroSchema::from_type(&at.item))),
            JType::Record(rt) => AvroSchema::Record(
                rt.fields
                    .iter()
                    .map(|(name, field)| {
                        let base = AvroSchema::from_type(&field.ty);
                        let optional = field.presence < rt.count;
                        let base_nullable = base.nullable();
                        let schema = if optional && !base_nullable {
                            match base {
                                AvroSchema::Union(mut branches) => {
                                    branches.insert(0, AvroSchema::Null);
                                    AvroSchema::Union(branches)
                                }
                                other => AvroSchema::Union(vec![AvroSchema::Null, other]),
                            }
                        } else {
                            base
                        };
                        AvroField {
                            name: name.to_string(),
                            schema,
                            null_means_absent: optional && !base_nullable,
                        }
                    })
                    .collect(),
            ),
            JType::Union(members) => {
                AvroSchema::Union(members.iter().map(AvroSchema::from_type).collect())
            }
        }
    }

    /// Which union branch encodes `value` (first match wins).
    fn branch_for(&self, value: &Value) -> Option<usize> {
        let AvroSchema::Union(branches) = self else {
            return None;
        };
        branches.iter().position(|b| b.accepts(value))
    }

    fn accepts(&self, value: &Value) -> bool {
        match (self, value) {
            (AvroSchema::Null, Value::Null) => true,
            (AvroSchema::Boolean, Value::Bool(_)) => true,
            (AvroSchema::Long, Value::Num(n)) => n.as_i64().is_some(),
            (AvroSchema::Double, Value::Num(_)) => true,
            (AvroSchema::Str, Value::Str(_)) => true,
            (AvroSchema::Array(item), Value::Arr(items)) => {
                items.iter().all(|v| item.accepts_or_union(v))
            }
            (AvroSchema::Record(fields), Value::Obj(obj)) => {
                // Every present key declared; every non-nullable field present.
                obj.iter().all(|(k, _)| fields.iter().any(|f| f.name == *k))
                    && fields
                        .iter()
                        .all(|f| obj.contains_key(&f.name) || f.schema.nullable())
            }
            (AvroSchema::Union(_), v) => self.branch_for(v).is_some(),
            _ => false,
        }
    }

    fn accepts_or_union(&self, value: &Value) -> bool {
        self.accepts(value)
    }

    fn nullable(&self) -> bool {
        match self {
            AvroSchema::Null => true,
            AvroSchema::Union(branches) => branches.contains(&AvroSchema::Null),
            _ => false,
        }
    }
}

/// Encode/decode errors.
#[derive(Debug, Clone, PartialEq)]
pub enum AvroError {
    /// The value does not conform to the writer schema.
    SchemaMismatch { at: String },
    /// Ran out of bytes, or a varint overflowed.
    Corrupt { detail: &'static str },
}

impl fmt::Display for AvroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AvroError::SchemaMismatch { at } => write!(f, "value does not match schema at {at}"),
            AvroError::Corrupt { detail } => write!(f, "corrupt encoding: {detail}"),
        }
    }
}

impl std::error::Error for AvroError {}

/// A codec bound to one writer schema.
#[derive(Debug, Clone)]
pub struct AvroCodec {
    schema: AvroSchema,
}

impl AvroCodec {
    /// Creates a codec for a schema.
    pub fn new(schema: AvroSchema) -> AvroCodec {
        AvroCodec { schema }
    }

    /// The writer schema.
    pub fn schema(&self) -> &AvroSchema {
        &self.schema
    }

    /// Encodes one value.
    pub fn encode(&self, value: &Value) -> Result<Bytes, AvroError> {
        let mut buf = BytesMut::new();
        encode_value(&self.schema, value, "$", &mut buf)?;
        Ok(buf.freeze())
    }

    /// Decodes one value.
    pub fn decode(&self, mut bytes: &[u8]) -> Result<Value, AvroError> {
        let v = decode_value(&self.schema, &mut bytes)?;
        if !bytes.is_empty() {
            return Err(AvroError::Corrupt {
                detail: "trailing bytes",
            });
        }
        Ok(v)
    }
}

fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

fn unzigzag(n: u64) -> i64 {
    ((n >> 1) as i64) ^ -((n & 1) as i64)
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn put_long(buf: &mut BytesMut, n: i64) {
    put_varint(buf, zigzag(n));
}

fn get_varint(bytes: &mut &[u8]) -> Result<u64, AvroError> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        if shift >= 64 {
            return Err(AvroError::Corrupt {
                detail: "varint too long",
            });
        }
        let Some((&byte, rest)) = bytes.split_first() else {
            return Err(AvroError::Corrupt {
                detail: "truncated varint",
            });
        };
        *bytes = rest;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn get_long(bytes: &mut &[u8]) -> Result<i64, AvroError> {
    Ok(unzigzag(get_varint(bytes)?))
}

fn encode_value(
    schema: &AvroSchema,
    value: &Value,
    at: &str,
    buf: &mut BytesMut,
) -> Result<(), AvroError> {
    let mismatch = || AvroError::SchemaMismatch { at: at.to_string() };
    match schema {
        AvroSchema::Null => {
            if value.is_null() {
                Ok(())
            } else {
                Err(mismatch())
            }
        }
        AvroSchema::Boolean => {
            let b = value.as_bool().ok_or_else(mismatch)?;
            buf.put_u8(u8::from(b));
            Ok(())
        }
        AvroSchema::Long => {
            let n = value.as_i64().ok_or_else(mismatch)?;
            put_long(buf, n);
            Ok(())
        }
        AvroSchema::Double => {
            let f = value.as_f64().ok_or_else(mismatch)?;
            buf.put_f64_le(f);
            Ok(())
        }
        AvroSchema::Str => {
            let s = value.as_str().ok_or_else(mismatch)?;
            put_long(buf, s.len() as i64);
            buf.put_slice(s.as_bytes());
            Ok(())
        }
        AvroSchema::Array(item) => {
            let items = value.as_array().ok_or_else(mismatch)?;
            if !items.is_empty() {
                put_long(buf, items.len() as i64);
                for (i, member) in items.iter().enumerate() {
                    encode_value(item, member, &format!("{at}[{i}]"), buf)?;
                }
            }
            put_long(buf, 0); // end of blocks
            Ok(())
        }
        AvroSchema::Record(fields) => {
            let obj = value.as_object().ok_or_else(mismatch)?;
            for field in fields {
                let member = obj.get(&field.name).cloned().unwrap_or(Value::Null);
                encode_value(&field.schema, &member, &format!("{at}.{}", field.name), buf)?;
            }
            Ok(())
        }
        AvroSchema::Union(branches) => {
            let idx = schema.branch_for(value).ok_or_else(mismatch)?;
            put_long(buf, idx as i64);
            encode_value(&branches[idx], value, at, buf)
        }
    }
}

fn decode_value(schema: &AvroSchema, bytes: &mut &[u8]) -> Result<Value, AvroError> {
    match schema {
        AvroSchema::Null => Ok(Value::Null),
        AvroSchema::Boolean => {
            let Some((&b, rest)) = bytes.split_first() else {
                return Err(AvroError::Corrupt {
                    detail: "truncated boolean",
                });
            };
            *bytes = rest;
            Ok(Value::Bool(b != 0))
        }
        AvroSchema::Long => Ok(Value::Num(Number::Int(get_long(bytes)?))),
        AvroSchema::Double => {
            if bytes.len() < 8 {
                return Err(AvroError::Corrupt {
                    detail: "truncated double",
                });
            }
            let f = (&bytes[..8]).get_f64_le();
            *bytes = &bytes[8..];
            Number::from_f64(f)
                .map(Value::Num)
                .ok_or(AvroError::Corrupt {
                    detail: "non-finite double",
                })
        }
        AvroSchema::Str => {
            let len = get_long(bytes)?;
            let len = usize::try_from(len).map_err(|_| AvroError::Corrupt {
                detail: "negative string length",
            })?;
            if bytes.len() < len {
                return Err(AvroError::Corrupt {
                    detail: "truncated string",
                });
            }
            let s = std::str::from_utf8(&bytes[..len]).map_err(|_| AvroError::Corrupt {
                detail: "invalid UTF-8",
            })?;
            let v = Value::Str(s.to_string());
            *bytes = &bytes[len..];
            Ok(v)
        }
        AvroSchema::Array(item) => {
            let mut out = Vec::new();
            loop {
                let count = get_long(bytes)?;
                if count == 0 {
                    return Ok(Value::Arr(out));
                }
                let count = usize::try_from(count).map_err(|_| AvroError::Corrupt {
                    detail: "negative block count",
                })?;
                for _ in 0..count {
                    out.push(decode_value(item, bytes)?);
                }
            }
        }
        AvroSchema::Record(fields) => {
            let mut obj = Object::with_capacity(fields.len());
            for field in fields {
                let v = decode_value(&field.schema, bytes)?;
                if v.is_null() && field.null_means_absent {
                    continue; // the null branch encoded field absence
                }
                obj.insert(field.name.clone(), v);
            }
            Ok(Value::Obj(obj))
        }
        AvroSchema::Union(branches) => {
            let idx = get_long(bytes)?;
            let idx = usize::try_from(idx)
                .ok()
                .filter(|i| *i < branches.len())
                .ok_or(AvroError::Corrupt {
                    detail: "union branch out of range",
                })?;
            decode_value(&branches[idx], bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_core::{infer_collection, Equivalence};
    use jsonx_data::json;

    #[test]
    fn zigzag_round_trip() {
        for n in [0i64, -1, 1, 63, -64, i64::MAX, i64::MIN, 150, -150] {
            assert_eq!(unzigzag(zigzag(n)), n);
        }
    }

    #[test]
    fn scalar_round_trips() {
        for (schema, value) in [
            (AvroSchema::Null, json!(null)),
            (AvroSchema::Boolean, json!(true)),
            (AvroSchema::Long, json!(-42)),
            (AvroSchema::Double, json!(2.5)),
            (AvroSchema::Str, json!("héllo")),
        ] {
            let codec = AvroCodec::new(schema);
            let bytes = codec.encode(&value).unwrap();
            assert_eq!(codec.decode(&bytes).unwrap(), value);
        }
    }

    #[test]
    fn record_round_trip_via_inferred_schema() {
        let docs = vec![
            json!({"id": 1, "name": "ada", "score": 1.5, "tags": ["a"]}),
            json!({"id": 2, "score": -0.5, "tags": []}),
        ];
        let ty = infer_collection(&docs, Equivalence::Kind);
        let codec = AvroCodec::new(AvroSchema::from_type(&ty));
        for doc in &docs {
            let bytes = codec.encode(doc).unwrap();
            assert_eq!(&codec.decode(&bytes).unwrap(), doc);
        }
    }

    #[test]
    fn optional_fields_become_nullable_unions() {
        let docs = vec![json!({"a": 1, "b": "x"}), json!({"a": 2})];
        let ty = infer_collection(&docs, Equivalence::Kind);
        let schema = AvroSchema::from_type(&ty);
        let AvroSchema::Record(fields) = &schema else {
            panic!()
        };
        let b = fields.iter().find(|f| f.name == "b").unwrap();
        assert_eq!(
            b.schema,
            AvroSchema::Union(vec![AvroSchema::Null, AvroSchema::Str])
        );
        assert!(b.null_means_absent);
    }

    #[test]
    fn union_typed_fields_round_trip() {
        let docs = vec![json!({"v": 1}), json!({"v": "s"}), json!({"v": null})];
        let ty = infer_collection(&docs, Equivalence::Kind);
        let codec = AvroCodec::new(AvroSchema::from_type(&ty));
        for doc in &docs {
            let bytes = codec.encode(doc).unwrap();
            assert_eq!(&codec.decode(&bytes).unwrap(), doc);
        }
    }

    #[test]
    fn nested_and_array_round_trips() {
        let docs = vec![
            json!({"u": {"id": 1, "tags": [1, 2, 3]}, "xs": [{"k": "a"}]}),
            json!({"u": {"id": 2, "tags": []}, "xs": []}),
        ];
        let ty = infer_collection(&docs, Equivalence::Kind);
        let codec = AvroCodec::new(AvroSchema::from_type(&ty));
        for doc in &docs {
            assert_eq!(&codec.decode(&codec.encode(doc).unwrap()).unwrap(), doc);
        }
    }

    #[test]
    fn mismatches_are_reported_with_paths() {
        let schema = AvroSchema::Record(vec![AvroField {
            name: "n".to_string(),
            schema: AvroSchema::Long,
            null_means_absent: false,
        }]);
        let codec = AvroCodec::new(schema);
        let err = codec.encode(&json!({"n": "not a long"})).unwrap_err();
        assert_eq!(err, AvroError::SchemaMismatch { at: "$.n".into() });
    }

    #[test]
    fn corrupt_input_detected() {
        let codec = AvroCodec::new(AvroSchema::Str);
        assert!(matches!(
            codec.decode(&[0x05, b'a']),
            Err(AvroError::Corrupt { .. })
        ));
        let codec = AvroCodec::new(AvroSchema::Long);
        assert!(matches!(
            codec.decode(&[0x80]),
            Err(AvroError::Corrupt { .. })
        ));
        // Trailing garbage.
        let codec = AvroCodec::new(AvroSchema::Boolean);
        assert!(matches!(
            codec.decode(&[1, 2]),
            Err(AvroError::Corrupt { .. })
        ));
    }

    #[test]
    fn binary_is_compact() {
        let docs = vec![json!({"id": 123456, "flag": true})];
        let ty = infer_collection(&docs, Equivalence::Kind);
        let codec = AvroCodec::new(AvroSchema::from_type(&ty));
        let bytes = codec.encode(&docs[0]).unwrap();
        // varint(123456)=3 bytes + bool=1 → 4 bytes total, no field names.
        assert_eq!(bytes.len(), 4);
    }
}
