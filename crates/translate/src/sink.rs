//! One interface over the three translation targets.
//!
//! The CLI used to re-implement per-format plumbing for every `--to X`
//! dispatch: encode-and-count for Avro, schema-string printing for
//! columnar, relation listing for relational — once in `convert`, again
//! in `translate`. [`OutputSink`] centralises that: callers resolve a
//! target name once ([`OutputSink::for_target`]) and hand over either a
//! DOM collection ([`OutputSink::consume`]) or an already-shredded batch
//! ([`OutputSink::consume_batch`]); the sink returns a [`SinkReport`]
//! with the stdout body and the one-line summary, and — for the columnar
//! target with an output path — persists the batch as a `.jxc` file.

use crate::avro::{AvroCodec, AvroSchema};
use crate::columnar::{ColumnarBatch, Shredder};
use crate::jxc::write_jxc_file;
use crate::relational::normalize;
use jsonx_core::JType;
use jsonx_data::Value;
use std::fmt::Write as _;
use std::path::PathBuf;

/// What a sink produced: the document body for stdout and a summary
/// sentence for the status line (empty when the body says it all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkReport {
    /// Per-format primary output (may be empty).
    pub body: String,
    /// One-line run summary without trailing newline (may be empty).
    pub summary: String,
}

/// A resolved `--to` target, ready to consume translated data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputSink {
    /// Avro-flavoured binary rows: encode everything, report the size.
    Avro,
    /// Columnar batch: print the schema; optionally persist as `.jxc`.
    Columnar {
        /// `--out FILE`: write the batch as a `.jxc` file here.
        out: Option<PathBuf>,
    },
    /// DiScala/Abadi-style relational normalization: list the relations.
    Relational,
}

impl OutputSink {
    /// Resolves a `--to` target name plus the optional `--out` path.
    /// `--out` is only meaningful for the columnar target (the only one
    /// with a file format); anything else is rejected up front.
    pub fn for_target(target: &str, out: Option<&str>) -> Result<OutputSink, String> {
        let sink = match target {
            "avro" => OutputSink::Avro,
            "columnar" => OutputSink::Columnar {
                out: out.map(PathBuf::from),
            },
            "relational" => OutputSink::Relational,
            other => return Err(format!("unknown target '{other}'")),
        };
        if out.is_some() && !matches!(sink, OutputSink::Columnar { .. }) {
            return Err(format!(
                "--out is only supported for --to columnar, not '{target}'"
            ));
        }
        Ok(sink)
    }

    /// Whether this sink can consume a streamed [`ColumnarBatch`]
    /// directly (via [`OutputSink::consume_batch`]).
    pub fn wants_batch(&self) -> bool {
        matches!(self, OutputSink::Columnar { .. })
    }

    /// DOM path: translate a materialised collection under its inferred
    /// type. Every target supports this.
    pub fn consume(&self, ty: &JType, docs: &[Value]) -> Result<SinkReport, String> {
        match self {
            OutputSink::Avro => {
                let codec = AvroCodec::new(AvroSchema::from_type(ty));
                let mut total = 0usize;
                for doc in docs {
                    total += codec.encode(doc).map_err(|e| e.to_string())?.len();
                }
                Ok(SinkReport {
                    body: String::new(),
                    summary: format!(
                        "{} documents encoded: {total} bytes binary (schema derived from inference)",
                        docs.len()
                    ),
                })
            }
            OutputSink::Columnar { .. } => {
                let batch = Shredder::from_type(ty)
                    .shred(docs)
                    .map_err(|e| e.to_string())?;
                self.consume_batch(&batch)
            }
            OutputSink::Relational => {
                let lines: Vec<String> = normalize("root", docs)
                    .iter()
                    .map(|rel| {
                        format!(
                            "{}({})  -- {} rows",
                            rel.name,
                            rel.columns.join(", "),
                            rel.rows.len()
                        )
                    })
                    .collect();
                Ok(SinkReport {
                    body: lines.join("\n"),
                    summary: String::new(),
                })
            }
        }
    }

    /// Streaming path: consume an already-shredded batch. Only the
    /// columnar sink accepts this — the other targets have no batch
    /// representation and must go through [`OutputSink::consume`].
    pub fn consume_batch(&self, batch: &ColumnarBatch) -> Result<SinkReport, String> {
        let OutputSink::Columnar { out } = self else {
            return Err("only the columnar target can consume a shredded batch".into());
        };
        let mut summary = format!("{} columns x {} rows", batch.columns.len(), batch.rows);
        if let Some(path) = out {
            let bytes = write_jxc_file(path, batch)
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            write!(summary, ", {bytes} bytes -> {}", path.display())
                .expect("writing to String cannot fail");
        }
        Ok(SinkReport {
            body: batch.schema_string(),
            summary,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jxc::read_jxc_file;
    use jsonx_core::{infer_collection, Equivalence};
    use jsonx_syntax::parse_ndjson;

    fn corpus() -> (JType, Vec<Value>) {
        let docs =
            parse_ndjson("{\"id\": 1, \"name\": \"a\"}\n{\"id\": 2, \"name\": \"b\"}\n").unwrap();
        let ty = infer_collection(&docs, Equivalence::Kind);
        (ty, docs)
    }

    #[test]
    fn unknown_target_and_misplaced_out_are_rejected() {
        assert!(OutputSink::for_target("parquet", None).is_err());
        assert!(OutputSink::for_target("avro", Some("x.jxc")).is_err());
        assert!(OutputSink::for_target("columnar", Some("x.jxc")).is_ok());
    }

    #[test]
    fn all_three_targets_consume_a_dom_collection() {
        let (ty, docs) = corpus();
        let avro = OutputSink::for_target("avro", None)
            .unwrap()
            .consume(&ty, &docs)
            .unwrap();
        assert!(avro.summary.contains("2 documents encoded"));
        let col = OutputSink::for_target("columnar", None)
            .unwrap()
            .consume(&ty, &docs)
            .unwrap();
        assert!(col.body.contains("id:int64"));
        assert!(col.summary.starts_with("2 columns x 2 rows"));
        let rel = OutputSink::for_target("relational", None)
            .unwrap()
            .consume(&ty, &docs)
            .unwrap();
        assert!(rel.body.contains("root("));
    }

    #[test]
    fn columnar_out_persists_a_readable_jxc_file() {
        let (ty, docs) = corpus();
        let dir = std::env::temp_dir().join("jsonx-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("batch.jxc");
        let sink = OutputSink::for_target("columnar", path.to_str()).unwrap();
        let report = sink.consume(&ty, &docs).unwrap();
        assert!(report.summary.contains("bytes ->"));
        let file = read_jxc_file(&path).unwrap();
        assert_eq!(file.batch.rows, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn only_columnar_takes_batches() {
        let (ty, docs) = corpus();
        let batch = Shredder::from_type(&ty).shred(&docs).unwrap();
        assert!(OutputSink::Avro.consume_batch(&batch).is_err());
        assert!(OutputSink::Relational.consume_batch(&batch).is_err());
        assert!(OutputSink::Columnar { out: None }
            .consume_batch(&batch)
            .is_ok());
    }
}
