//! Relational normalization, after DiScala & Abadi (SIGMOD 2016), which
//! the tutorial surveys in §4.1: "automatically transforming denormalised,
//! nested JSON data into normalised relational data … by means of a schema
//! generation algorithm that learns the normalised, relational schema from
//! data", using **functional dependencies among attribute values** rather
//! than the original nesting.
//!
//! The pipeline here follows that recipe at laptop scale:
//!
//! 1. **Flatten**: every document becomes a row of the root relation;
//!    nested records flatten into dotted columns; arrays of records become
//!    child relations with a synthetic foreign key; arrays of scalars
//!    become (parent_id, value) relations.
//! 2. **Detect FDs**: for each pair of root columns, check whether the
//!    value mapping A → B is functional across all rows.
//! 3. **Decompose**: a column with ≥2 functional dependents (a "key-like"
//!    attribute, e.g. `user.id` determining `user.name`, …) is split out
//!    with its dependents into a dimension relation, deduplicated.

use jsonx_data::Value;
use std::collections::{BTreeMap, HashMap};

/// A flat relation: named columns, rows of optional scalar values
/// (rendered as canonical JSON text for hashing/grouping; `None` = NULL).
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// Relation name (root collection name, or derived child/dim names).
    pub name: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Rows, each aligned with `columns`.
    pub rows: Vec<Vec<Option<Value>>>,
}

impl Relation {
    /// Index of a column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Cell accessor.
    pub fn cell(&self, row: usize, column: &str) -> Option<&Value> {
        let idx = self.column_index(column)?;
        self.rows.get(row)?.get(idx)?.as_ref()
    }
}

/// Normalizes a collection of JSON documents into relations.
///
/// Returns the root relation first, then child relations (nested arrays),
/// then FD-derived dimension relations.
pub fn normalize(name: &str, docs: &[Value]) -> Vec<Relation> {
    let mut flat = Flattener::new(name);
    for (row_id, doc) in docs.iter().enumerate() {
        flat.flatten_doc(row_id as i64, doc);
    }
    let (mut root, children) = flat.finish();
    let dims = decompose_by_fds(&mut root);
    let mut out = vec![root];
    out.extend(children);
    out.extend(dims);
    out
}

struct Flattener {
    name: String,
    /// Root columns in first-seen order.
    columns: Vec<String>,
    by_name: HashMap<String, usize>,
    rows: Vec<Vec<Option<Value>>>,
    /// Child relations keyed by path.
    children: BTreeMap<String, Relation>,
}

impl Flattener {
    fn new(name: &str) -> Flattener {
        Flattener {
            name: name.to_string(),
            columns: vec!["_row_id".to_string()],
            by_name: HashMap::from([("_row_id".to_string(), 0)]),
            rows: Vec::new(),
            children: BTreeMap::new(),
        }
    }

    fn column(&mut self, name: &str) -> usize {
        if let Some(&i) = self.by_name.get(name) {
            return i;
        }
        self.columns.push(name.to_string());
        self.by_name
            .insert(name.to_string(), self.columns.len() - 1);
        self.columns.len() - 1
    }

    fn flatten_doc(&mut self, row_id: i64, doc: &Value) {
        let mut row: Vec<Option<Value>> = vec![None; self.columns.len()];
        row[0] = Some(Value::from(row_id));
        if let Some(obj) = doc.as_object() {
            self.flatten_into(row_id, obj, String::new(), &mut row);
        }
        // The row may have grown columns; normalise its length.
        row.resize(self.columns.len(), None);
        self.rows.push(row);
    }

    fn flatten_into(
        &mut self,
        row_id: i64,
        obj: &jsonx_data::Object,
        prefix: String,
        row: &mut Vec<Option<Value>>,
    ) {
        for (key, value) in obj.iter() {
            let path = if prefix.is_empty() {
                key.to_string()
            } else {
                format!("{prefix}.{key}")
            };
            match value {
                Value::Obj(inner) => {
                    self.flatten_into(row_id, inner, path, row);
                }
                Value::Arr(items) => {
                    self.child_rows(row_id, &path, items);
                }
                scalar => {
                    let idx = self.column(&path);
                    if idx >= row.len() {
                        row.resize(self.columns.len(), None);
                    }
                    row[idx] = Some(scalar.clone());
                }
            }
        }
    }

    fn child_rows(&mut self, row_id: i64, path: &str, items: &[Value]) {
        if items.is_empty() {
            return;
        }
        let name = format!("{}_{}", self.name, path.replace('.', "_"));
        for (pos, item) in items.iter().enumerate() {
            match item {
                Value::Obj(obj) => {
                    // Record element: one child row per element, columns
                    // discovered on the fly.
                    let rel = self
                        .children
                        .entry(name.clone())
                        .or_insert_with(|| Relation {
                            name: name.clone(),
                            columns: vec!["_parent_id".to_string(), "_pos".to_string()],
                            rows: Vec::new(),
                        });
                    let mut row: Vec<Option<Value>> = vec![None; rel.columns.len()];
                    row[0] = Some(Value::from(row_id));
                    row[1] = Some(Value::from(pos as i64));
                    for (k, v) in obj.iter() {
                        if v.as_object().is_some() || v.as_array().is_some() {
                            // Deeper nesting inside arrays: keep as JSON
                            // text (one level of normalization, as in the
                            // paper's evaluation).
                            let idx = child_column(rel, k);
                            row.resize(rel.columns.len(), None);
                            row[idx] = Some(Value::Str(v.to_json_string()));
                        } else {
                            let idx = child_column(rel, k);
                            row.resize(rel.columns.len(), None);
                            row[idx] = Some(v.clone());
                        }
                    }
                    row.resize(rel.columns.len(), None);
                    rel.rows.push(row);
                }
                scalar_or_array => {
                    let rel = self
                        .children
                        .entry(name.clone())
                        .or_insert_with(|| Relation {
                            name: name.clone(),
                            columns: vec![
                                "_parent_id".to_string(),
                                "_pos".to_string(),
                                "value".to_string(),
                            ],
                            rows: Vec::new(),
                        });
                    let idx = child_column(rel, "value");
                    let mut row: Vec<Option<Value>> = vec![None; rel.columns.len()];
                    row[0] = Some(Value::from(row_id));
                    row[1] = Some(Value::from(pos as i64));
                    row[idx] = Some(match scalar_or_array {
                        Value::Arr(_) => Value::Str(scalar_or_array.to_json_string()),
                        v => v.clone(),
                    });
                    rel.rows.push(row);
                }
            }
        }
        // Align all child rows to the final column count.
        if let Some(rel) = self.children.get_mut(&name) {
            let width = rel.columns.len();
            for row in &mut rel.rows {
                row.resize(width, None);
            }
        }
    }

    fn finish(self) -> (Relation, Vec<Relation>) {
        let mut root = Relation {
            name: self.name,
            columns: self.columns,
            rows: self.rows,
        };
        let width = root.columns.len();
        for row in &mut root.rows {
            row.resize(width, None);
        }
        (root, self.children.into_values().collect())
    }
}

fn child_column(rel: &mut Relation, name: &str) -> usize {
    match rel.columns.iter().position(|c| c == name) {
        Some(i) => i,
        None => {
            rel.columns.push(name.to_string());
            rel.columns.len() - 1
        }
    }
}

/// Detects functional dependencies among root columns and splits
/// key-like attributes (≥2 dependents) into dimension relations.
fn decompose_by_fds(root: &mut Relation) -> Vec<Relation> {
    let n = root.columns.len();
    // determinant → dependents
    let mut dependents: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for a in 1..n {
        // A determinant must *repeat* (distinct values < non-null rows):
        // unique row keys trivially determine everything but compress
        // nothing, and DiScala & Abadi's algorithm targets repeating
        // entity attributes.
        if !has_duplicates(root, a) {
            continue;
        }
        for b in 1..n {
            if a != b && is_fd(root, a, b) {
                // 1:1 pairs appear under both determinants; the removal
                // bookkeeping below splits each group only once.
                dependents.entry(a).or_default().push(b);
            }
        }
    }
    let mut dims = Vec::new();
    let mut removed: Vec<usize> = Vec::new();
    for (det, deps) in dependents {
        if deps.len() < 2 || removed.contains(&det) {
            continue;
        }
        let deps: Vec<usize> = deps.into_iter().filter(|d| !removed.contains(d)).collect();
        if deps.len() < 2 {
            continue;
        }
        // Build the deduplicated dimension relation.
        let mut dim = Relation {
            name: format!("{}_dim_{}", root.name, root.columns[det].replace('.', "_")),
            columns: std::iter::once(root.columns[det].clone())
                .chain(deps.iter().map(|&d| root.columns[d].clone()))
                .collect(),
            rows: Vec::new(),
        };
        let mut seen: HashMap<String, ()> = HashMap::new();
        for row in &root.rows {
            let Some(key) = &row[det] else { continue };
            let key_text = key.to_json_string();
            if seen.insert(key_text, ()).is_none() {
                dim.rows.push(
                    std::iter::once(row[det].clone())
                        .chain(deps.iter().map(|&d| row[d].clone()))
                        .collect(),
                );
            }
        }
        removed.extend(&deps);
        dims.push(dim);
    }
    // Drop dependent columns from the root (keep determinants as FKs).
    if !removed.is_empty() {
        removed.sort_unstable();
        removed.dedup();
        let keep: Vec<usize> = (0..n).filter(|i| !removed.contains(i)).collect();
        root.columns = keep.iter().map(|&i| root.columns[i].clone()).collect();
        for row in &mut root.rows {
            *row = keep.iter().map(|&i| row[i].clone()).collect();
        }
    }
    dims
}

/// Does column `a` repeat enough to be worth a dimension table?
/// Requires at least 10% compression (distinct ≤ 0.9 × non-null), which
/// keeps near-unique columns — where sample FDs hold by accident — from
/// spawning spurious dimensions.
fn has_duplicates(rel: &Relation, a: usize) -> bool {
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut non_null = 0usize;
    for row in &rel.rows {
        if let Some(v) = &row[a] {
            non_null += 1;
            seen.insert(v.to_json_string());
        }
    }
    non_null > 0 && (seen.len() as f64) <= 0.9 * non_null as f64
}

/// Is `a → b` functional over the non-null rows?
fn is_fd(rel: &Relation, a: usize, b: usize) -> bool {
    let mut map: HashMap<String, &Option<Value>> = HashMap::new();
    for row in &rel.rows {
        let Some(av) = &row[a] else { continue };
        let key = av.to_json_string();
        match map.get(key.as_str()) {
            Some(seen) => {
                if *seen != &row[b] {
                    return false;
                }
            }
            None => {
                map.insert(key, &row[b]);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    fn orders() -> Vec<Value> {
        vec![
            json!({"order": 1, "user": {"id": 10, "name": "ada", "city": "Lisbon"},
                   "items": [{"sku": "a", "qty": 2}, {"sku": "b", "qty": 1}]}),
            json!({"order": 2, "user": {"id": 11, "name": "lin", "city": "Pisa"},
                   "items": [{"sku": "a", "qty": 5}]}),
            json!({"order": 3, "user": {"id": 10, "name": "ada", "city": "Lisbon"},
                   "items": []}),
        ]
    }

    #[test]
    fn flattening_produces_root_and_child() {
        let rels = normalize("orders", &orders());
        let root = &rels[0];
        assert_eq!(root.name, "orders");
        assert!(root.columns.contains(&"order".to_string()));
        let items = rels.iter().find(|r| r.name == "orders_items").unwrap();
        assert_eq!(items.rows.len(), 3); // 2 + 1 + 0
        assert_eq!(items.cell(0, "sku"), Some(&json!("a")));
        assert_eq!(items.cell(2, "_parent_id"), Some(&json!(1)));
    }

    #[test]
    fn fd_decomposition_builds_user_dimension() {
        let rels = normalize("orders", &orders());
        // user.id determines user.name and user.city → dimension table.
        let dim = rels
            .iter()
            .find(|r| r.name.contains("dim_user_id"))
            .unwrap_or_else(|| {
                panic!(
                    "no dimension found in {:?}",
                    rels.iter().map(|r| &r.name).collect::<Vec<_>>()
                )
            });
        assert_eq!(dim.rows.len(), 2); // deduplicated: ada, lin
        assert_eq!(dim.columns[0], "user.id");
        assert!(dim.columns.contains(&"user.name".to_string()));
        // Root no longer carries the dependent columns, but keeps the key.
        let root = &rels[0];
        assert!(root.columns.contains(&"user.id".to_string()));
        assert!(!root.columns.contains(&"user.name".to_string()));
    }

    #[test]
    fn scalar_arrays_become_value_relations() {
        let docs = vec![
            json!({"id": 1, "tags": ["x", "y"]}),
            json!({"id": 2, "tags": []}),
        ];
        let rels = normalize("t", &docs);
        let tags = rels.iter().find(|r| r.name == "t_tags").unwrap();
        assert_eq!(tags.columns, vec!["_parent_id", "_pos", "value"]);
        assert_eq!(tags.rows.len(), 2);
        assert_eq!(tags.cell(1, "value"), Some(&json!("y")));
    }

    #[test]
    fn ragged_documents_null_pad() {
        let docs = vec![json!({"a": 1}), json!({"b": 2})];
        let rels = normalize("r", &docs);
        let root = &rels[0];
        assert_eq!(root.rows[0].len(), root.columns.len());
        assert_eq!(root.cell(0, "b"), None);
        assert_eq!(root.cell(1, "b"), Some(&json!(2)));
    }

    #[test]
    fn no_spurious_fds_on_independent_columns() {
        let docs = vec![
            json!({"a": 1, "b": 1}),
            json!({"a": 1, "b": 2}), // a !→ b
            json!({"a": 2, "b": 1}), // b !→ a
        ];
        let rels = normalize("x", &docs);
        assert_eq!(rels.len(), 1); // no dimensions
        assert_eq!(rels[0].columns.len(), 3); // _row_id, a, b
    }

    #[test]
    fn empty_collection() {
        let rels = normalize("e", &[]);
        assert_eq!(rels.len(), 1);
        assert!(rels[0].rows.is_empty());
    }
}
