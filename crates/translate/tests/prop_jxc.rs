//! Property tests for the `.jxc` binary columnar format and the
//! chunked shredding path behind it.
//!
//! Two contracts are pinned here:
//!
//! * `read_jxc(write_jxc(batch))` reproduces the in-memory
//!   [`ColumnarBatch`] exactly — values, validity bitmaps, dictionary
//!   decoding, and nested-list offset reconstruction included.
//! * Chunked streaming (`ShredStream::take_batch`/`finish` +
//!   `ColumnarBatch::append`) equals one-shot `Shredder::shred`, order
//!   preserved, for arbitrary split points — the invariant the parallel
//!   translation engine relies on when it concatenates per-worker
//!   batches in shard order.

use jsonx_core::{infer_collection, Equivalence};
use jsonx_data::{Number, Object, Value};
use jsonx_translate::{read_jxc, write_jxc, ColumnarBatch, Shredder};
use proptest::prelude::*;

/// Record-shaped documents (top level must be an object for shredding).
fn arb_record() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(|i| Value::Num(Number::Int(i))),
        (-9.0f64..9.0).prop_map(|f| Value::Num(Number::from_f64(f).unwrap())),
        "[a-c]{0,4}".prop_map(Value::Str),
    ];
    let value = leaf.prop_recursive(2, 12, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..3).prop_map(Value::Arr),
            prop::collection::vec(("[a-d]", inner), 0..3)
                .prop_map(|pairs| Value::Obj(pairs.into_iter().collect::<Object>())),
        ]
    });
    prop::collection::vec(("[a-d]", value), 0..4)
        .prop_map(|pairs| Value::Obj(pairs.into_iter().collect::<Object>()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn jxc_write_read_reproduces_the_batch(
        docs in prop::collection::vec(arb_record(), 0..10)
    ) {
        let ty = infer_collection(&docs, Equivalence::Kind);
        let batch = Shredder::from_type(&ty).shred(&docs).unwrap();
        let bytes = write_jxc(&batch);
        let file = read_jxc(&bytes)
            .unwrap_or_else(|e| panic!("written file failed to read back: {e}"));
        prop_assert_eq!(&file.batch, &batch, "batch changed across write/read");
        // The footer's per-column facts agree with the batch itself.
        prop_assert_eq!(file.columns.len(), batch.columns.len());
        for (col, info) in batch.columns.iter().zip(&file.columns) {
            prop_assert_eq!(&info.path, &col.path);
            prop_assert_eq!(
                info.valid_count,
                col.validity.iter().filter(|v| **v).count()
            );
        }
    }

    #[test]
    fn chunked_stream_take_batch_equals_one_shot_shred(
        docs in prop::collection::vec(arb_record(), 1..12),
        raw_splits in prop::collection::vec(0usize..12, 0..4),
    ) {
        let ty = infer_collection(&docs, Equivalence::Kind);
        let one_shot = Shredder::from_type(&ty).shred(&docs).unwrap();
        // Same documents pushed one at a time, with a batch taken at
        // every (arbitrary) split point and appended in order.
        let splits: Vec<usize> = raw_splits.iter().map(|s| s % (docs.len() + 1)).collect();
        let shredder = Shredder::from_type(&ty);
        let mut stream = shredder.stream();
        let mut acc: Option<ColumnarBatch> = None;
        for (i, doc) in docs.iter().enumerate() {
            if splits.contains(&i) {
                let part = stream.take_batch();
                match &mut acc {
                    None => acc = Some(part),
                    Some(batch) => batch.append(part),
                }
            }
            stream.push(doc).unwrap();
        }
        let tail = stream.finish();
        let chunked = match acc {
            None => tail,
            Some(mut batch) => {
                batch.append(tail);
                batch
            }
        };
        prop_assert_eq!(&chunked, &one_shot, "chunked shredding diverged");
        // And the equality survives a trip through the file format.
        let file = read_jxc(&write_jxc(&chunked)).unwrap();
        prop_assert_eq!(&file.batch, &one_shot);
    }
}
