//! Property tests for the translation targets: Avro round-trips exactly,
//! and the schema-aware and schema-blind shredders agree.

use jsonx_core::{infer_collection, Equivalence};
use jsonx_data::{Number, Object, Value};
use jsonx_translate::{AvroCodec, AvroSchema, Shredder};
use proptest::prelude::*;

/// Record-shaped documents (top level must be an object for shredding).
fn arb_record() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(|i| Value::Num(Number::Int(i))),
        (-9.0f64..9.0).prop_map(|f| Value::Num(Number::from_f64(f).unwrap())),
        "[a-c]{0,4}".prop_map(Value::Str),
    ];
    let value = leaf.prop_recursive(2, 12, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..3).prop_map(Value::Arr),
            prop::collection::vec(("[a-d]", inner), 0..3)
                .prop_map(|pairs| Value::Obj(pairs.into_iter().collect::<Object>())),
        ]
    });
    prop::collection::vec(("[a-d]", value), 0..4)
        .prop_map(|pairs| Value::Obj(pairs.into_iter().collect::<Object>()))
}

/// Resolves a dotted column path inside a document.
fn resolve_dotted<'v>(doc: &'v Value, dotted: &str) -> Option<&'v Value> {
    let mut cur = doc;
    for seg in dotted.split('.') {
        cur = cur.get(seg)?;
    }
    Some(cur)
}

/// Equality up to Avro's lossy corner: `back` may carry explicit nulls
/// where `doc` had absent fields (recursively).
fn equal_modulo_null_absence(doc: &Value, back: &Value) -> bool {
    match (doc, back) {
        (Value::Obj(a), Value::Obj(b)) => {
            // Every original field matches; every extra decoded field is null.
            a.iter()
                .all(|(k, v)| b.get(k).is_some_and(|w| equal_modulo_null_absence(v, w)))
                && b.iter().all(|(k, w)| a.contains_key(k) || w.is_null())
        }
        (Value::Arr(a), Value::Arr(b)) => {
            a.len() == b.len()
                && a.iter()
                    .zip(b)
                    .all(|(v, w)| equal_modulo_null_absence(v, w))
        }
        _ => doc == back,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn avro_round_trips_collections(
        docs in prop::collection::vec(arb_record(), 1..8)
    ) {
        let ty = infer_collection(&docs, Equivalence::Kind);
        let codec = AvroCodec::new(AvroSchema::from_type(&ty));
        for doc in &docs {
            let bytes = codec
                .encode(doc)
                .unwrap_or_else(|e| panic!("encode of admitted doc {doc} failed: {e}"));
            let back = codec.decode(&bytes).unwrap();
            // Exact round trip, except Avro's documented lossy corner:
            // a field that is both optional and genuinely nullable decodes
            // absent-as-null. So: the decoded value is admitted by the
            // schema's type and re-encodes to the identical bytes.
            prop_assert!(ty.admits(&back), "decoded {} escapes the type", back);
            let again = codec.encode(&back).unwrap();
            prop_assert_eq!(&again, &bytes, "encoding is not a fixpoint for {}", back);
            if !equal_modulo_null_absence(doc, &back) {
                prop_assert_eq!(&back, doc, "round trip changed {}", doc);
            }
        }
    }

    #[test]
    fn aware_shredder_validity_is_sound(
        docs in prop::collection::vec(arb_record(), 1..8)
    ) {
        // (The blind shredder legitimately diverges on mixed object/scalar
        // fields — that mis-layout is E11's point — so the contract tested
        // here is the schema-aware one: validity reflects the documents.)
        let ty = infer_collection(&docs, Equivalence::Kind);
        let aware = Shredder::from_type(&ty).shred(&docs).unwrap();
        prop_assert_eq!(aware.rows, docs.len());
        for col in &aware.columns {
            for (row, doc) in docs.iter().enumerate() {
                let present = resolve_dotted(doc, &col.path)
                    .is_some_and(|v| !v.is_null());
                if col.validity[row] {
                    prop_assert!(
                        present,
                        "column {} claims row {} valid but {} has no value there",
                        &col.path, row, doc
                    );
                }
            }
        }
    }
}
