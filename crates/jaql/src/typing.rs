//! Static output-schema inference — the Jaql feature the tutorial cites.
//!
//! Given the *input* collection's inferred [`JType`], compute a type that
//! admits every possible pipeline output, without evaluating anything.
//! The typing mirrors the evaluator's total semantics: optional fields
//! contribute `Null` (that is what evaluation yields when they are
//! absent), incomparable operands contribute `Null`, and arithmetic
//! widens to `(Int + Num)` because integer overflow degrades to float.
//!
//! Soundness — `admits(infer_output_type(q, infer(docs)), row)` for every
//! row of `q.eval(docs)` — is property-tested in
//! `tests/prop_type_soundness.rs`. Precision is K-level: union members
//! merge kind-wise, like the K equivalence of the inference engine.

use crate::ast::{BinOp, Expr, Op, Pipeline};
use jsonx_core::{fuse, fuse_all, infer_value, Equivalence, JType};
use jsonx_core::{ArrayType, FieldName, FieldType, RecordType};

const EQ: Equivalence = Equivalence::Kind;

/// Infers the output type of a pipeline applied to collections of
/// `input` type.
pub fn infer_output_type(pipeline: &Pipeline, input: &JType) -> JType {
    let mut current = input.clone();
    for op in &pipeline.ops {
        if matches!(current, JType::Bottom) {
            return JType::Bottom; // no documents can flow further
        }
        current = match op {
            // Filtering refines the population; the input type stays a
            // sound over-approximation.
            Op::Filter(_) | Op::Top(_) => current,
            Op::Transform(proj) => type_expr(proj, &current),
            Op::Expand(arr) => {
                let t = type_expr(arr, &current);
                // Only array members produce output; everything else
                // expands to nothing.
                let items: Vec<JType> = t
                    .members()
                    .iter()
                    .filter_map(|m| match m {
                        JType::Array(at) => Some((*at.item).clone()),
                        _ => None,
                    })
                    .collect();
                fuse_all(items, EQ)
            }
        };
    }
    current
}

/// Types one expression against documents of type `input`.
pub fn type_expr(expr: &Expr, input: &JType) -> JType {
    if matches!(input, JType::Bottom) {
        return JType::Bottom;
    }
    match expr {
        Expr::Input => input.clone(),
        Expr::Const(v) => infer_value(v, EQ),
        Expr::Field(base, name) => field_type(&type_expr(base, input), name),
        Expr::Record(fields) => {
            let mut typed: Vec<(FieldName, FieldType)> = fields
                .iter()
                .map(|(n, e)| {
                    (
                        FieldName::from(n.as_str()),
                        FieldType {
                            ty: type_expr(e, input),
                            presence: 1,
                        },
                    )
                })
                .collect();
            // Construction semantics: last duplicate wins, fields sorted.
            // (A set-based retain, because duplicates need not be adjacent.)
            let mut seen = std::collections::HashSet::new();
            typed.reverse();
            typed.retain(|(name, _)| seen.insert(name.clone()));
            typed.sort_by(|(a, _), (b, _)| a.cmp(b));
            JType::Record(RecordType {
                fields: typed,
                count: 1,
            })
        }
        Expr::Array(items) => {
            let item = fuse_all(items.iter().map(|e| type_expr(e, input)), EQ);
            JType::Array(ArrayType {
                item: Box::new(item),
                count: 1,
                total_items: items.len() as u64,
            })
        }
        Expr::Binary(op, a, b) => {
            let ta = type_expr(a, input);
            let tb = type_expr(b, input);
            type_binary(*op, &ta, &tb)
        }
        Expr::Not(e) => {
            let t = type_expr(e, input);
            if all_members(&t, is_bool) {
                bool_t()
            } else {
                with_null(bool_t())
            }
        }
        Expr::Exists(_) => bool_t(),
    }
}

/// The type of `base.name` — the union over the base type's members.
fn field_type(base: &JType, name: &str) -> JType {
    if matches!(base, JType::Bottom) {
        return JType::Bottom;
    }
    let mut contributions: Vec<JType> = Vec::new();
    for member in base.members() {
        match member {
            JType::Record(rt) => match rt.field(name) {
                Some(f) => {
                    contributions.push(f.ty.clone());
                    if f.presence < rt.count {
                        contributions.push(null_t()); // may be absent
                    }
                }
                None => contributions.push(null_t()),
            },
            // Field access on scalars/arrays evaluates to null.
            _ => contributions.push(null_t()),
        }
    }
    fuse_all(contributions, EQ)
}

fn type_binary(op: BinOp, a: &JType, b: &JType) -> JType {
    match op {
        BinOp::Eq | BinOp::Ne => bool_t(),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let comparable = (all_members(a, is_num) && all_members(b, is_num))
                || (all_members(a, is_str) && all_members(b, is_str));
            if comparable {
                bool_t()
            } else {
                with_null(bool_t())
            }
        }
        BinOp::And | BinOp::Or => {
            if all_members(a, is_bool) && all_members(b, is_bool) {
                bool_t()
            } else {
                with_null(bool_t())
            }
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul => {
            // Arithmetic yields a number (overflowing integer pairs
            // degrade to float, so `(Int + Num)` even for Int × Int);
            // non-numeric operands make null possible.
            let numeric = num_t();
            if all_members(a, is_num) && all_members(b, is_num) {
                numeric
            } else {
                with_null(numeric)
            }
        }
    }
}

// ---- small type constructors/predicates --------------------------------

fn null_t() -> JType {
    JType::Null { count: 1 }
}

fn bool_t() -> JType {
    JType::Bool { count: 1 }
}

fn num_t() -> JType {
    JType::Union(vec![JType::Int { count: 1 }, JType::Float { count: 1 }])
}

fn with_null(t: JType) -> JType {
    fuse(t, null_t(), EQ)
}

fn all_members(t: &JType, pred: impl Fn(&JType) -> bool) -> bool {
    !matches!(t, JType::Bottom) && t.members().iter().all(pred)
}

fn is_num(t: &JType) -> bool {
    matches!(t, JType::Int { .. } | JType::Float { .. })
}

fn is_str(t: &JType) -> bool {
    matches!(t, JType::Str { .. })
}

fn is_bool(t: &JType) -> bool {
    matches!(t, JType::Bool { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::expr;
    use jsonx_core::{infer_collection, print_type, PrintOptions};
    use jsonx_data::json;

    fn plain(t: &JType) -> String {
        print_type(t, PrintOptions::plain())
    }

    fn input_ty() -> JType {
        infer_collection(
            &[
                json!({"id": 1, "name": "a", "tags": ["x"], "geo": {"lat": 1.5}}),
                json!({"id": 2, "tags": []}),
            ],
            Equivalence::Kind,
        )
    }

    #[test]
    fn field_access_types() {
        let t = input_ty();
        assert_eq!(plain(&type_expr(&expr::path("id"), &t)), "Int");
        // `name` is optional → Null joins the type.
        assert_eq!(plain(&type_expr(&expr::path("name"), &t)), "(Null + Str)");
        // Unknown field → Null.
        assert_eq!(plain(&type_expr(&expr::path("zzz"), &t)), "Null");
        // Nested access through an optional record.
        assert_eq!(
            plain(&type_expr(&expr::path("geo.lat"), &t)),
            "(Null + Num)"
        );
    }

    #[test]
    fn record_and_array_construction() {
        let t = input_ty();
        let e = expr::record([
            ("a", expr::path("id")),
            ("b", expr::array([expr::lit(1), expr::lit("s")])),
        ]);
        assert_eq!(plain(&type_expr(&e, &t)), "{a: Int, b: [(Int + Str)]}");
    }

    #[test]
    fn binary_typing() {
        let t = input_ty();
        assert_eq!(
            plain(&type_expr(&expr::path("id").gt(expr::lit(0)), &t)),
            "Bool"
        );
        // Comparison against an optional field may be null.
        assert_eq!(
            plain(&type_expr(&expr::path("name").lt(expr::lit("m")), &t)),
            "(Null + Bool)"
        );
        // Arithmetic on ints is a number (overflow degrades).
        assert_eq!(
            plain(&type_expr(&expr::path("id").add(expr::lit(1)), &t)),
            "(Int + Num)"
        );
        assert_eq!(
            plain(&type_expr(&expr::exists(expr::path("x")), &t)),
            "Bool"
        );
    }

    #[test]
    fn pipeline_typing() {
        let t = input_ty();
        let q = Pipeline::new()
            .filter(expr::path("id").gt(expr::lit(0)))
            .transform(expr::record([("n", expr::path("id"))]));
        assert_eq!(plain(&infer_output_type(&q, &t)), "{n: Int}");
        // Expand types to the element type.
        let q = Pipeline::new().expand(expr::path("tags"));
        assert_eq!(plain(&infer_output_type(&q, &t)), "Str");
        // Expanding a non-array is Bottom (no output possible).
        let q = Pipeline::new().expand(expr::path("id"));
        assert_eq!(infer_output_type(&q, &t), JType::Bottom);
    }

    #[test]
    fn bottom_propagates() {
        let q = Pipeline::new().transform(expr::record([("x", expr::lit(1))]));
        assert_eq!(infer_output_type(&q, &JType::Bottom), JType::Bottom);
    }

    #[test]
    fn duplicate_record_fields_last_wins() {
        let t = input_ty();
        let e = Expr::Record(vec![
            ("k".to_string(), expr::lit(1)),
            ("k".to_string(), expr::lit("s")),
        ]);
        assert_eq!(plain(&type_expr(&e, &t)), "{k: Str}");
        // And evaluation agrees.
        let out = crate::eval::eval_expr(&e, &json!({}));
        assert_eq!(out, json!({"k": "s"}));
    }
}
