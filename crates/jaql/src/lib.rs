//! # jsonx-jaql
//!
//! A Jaql-style transformation language over JSON collections, with the
//! feature the tutorial singles out (§4.1, \[13\]): Jaql "exploit\[s\] schema
//! information for inferring the **output schema of a query**". Here both
//! halves are real:
//!
//! * [`Pipeline`] — `filter → transform → expand → top` pipelines built
//!   from [`Expr`]essions with Jaql's null-propagating semantics
//!   (accessing a missing field yields `null`, operations on unsuitable
//!   operands yield `null`).
//! * [`infer_output_type`] — **static typing**: given the input
//!   collection's inferred [`JType`](jsonx_core::JType), compute the output type *without
//!   running the query*. The soundness contract — every row the pipeline
//!   produces is admitted by the statically inferred output type — is
//!   property-tested across the corpora.
//!
//! ```
//! use jsonx_data::json;
//! use jsonx_core::{infer_collection, print_type, Equivalence, PrintOptions};
//! use jsonx_jaql::{expr, Pipeline};
//!
//! // tweets -> filter(retweets > 10) -> {user: $.user.name, n: $.retweets}
//! let q = Pipeline::new()
//!     .filter(expr::field(expr::input(), "retweets").gt(expr::lit(10)))
//!     .transform(expr::record([
//!         ("user", expr::field(expr::field(expr::input(), "user"), "name")),
//!         ("n", expr::field(expr::input(), "retweets")),
//!     ]));
//!
//! let docs = vec![
//!     json!({"user": {"name": "ada"},  "retweets": 25}),
//!     json!({"user": {"name": "lin"},  "retweets": 3}),
//! ];
//! assert_eq!(q.eval(&docs), vec![json!({"user": "ada", "n": 25})]);
//!
//! // Static output schema, no evaluation:
//! let input_ty = infer_collection(&docs, Equivalence::Kind);
//! let out_ty = jsonx_jaql::infer_output_type(&q, &input_ty);
//! assert_eq!(print_type(&out_ty, PrintOptions::plain()), "{n: Int, user: Str}");
//! ```

pub mod ast;
pub mod eval;
pub mod typing;

pub use ast::{expr, BinOp, Expr, Op, Pipeline};
pub use typing::infer_output_type;
