//! Pipeline and expression syntax.

use jsonx_data::Value;
use std::fmt;

/// A row-level expression, evaluated against one document (`$`).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `$` — the current document.
    Input,
    /// A constant.
    Const(Value),
    /// `e.name` — field access; `null` when absent or not an object.
    Field(Box<Expr>, String),
    /// `{ name: e, … }` — record construction.
    Record(Vec<(String, Expr)>),
    /// `[ e, … ]` — array construction.
    Array(Vec<Expr>),
    /// Binary operation with Jaql's null-propagating semantics.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation (`null` for non-boolean operands).
    Not(Box<Expr>),
    /// `exists(e)` — true when `e` is not `null`.
    Exists(Box<Expr>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Add,
    Sub,
    Mul,
}

/// One pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Keep documents where the predicate evaluates to `true`.
    Filter(Expr),
    /// Map every document through the expression.
    Transform(Expr),
    /// Evaluate to an array and emit one output per element
    /// (non-arrays/null expand to nothing, per Jaql).
    Expand(Expr),
    /// Keep the first `n` documents.
    Top(usize),
}

/// A query: a sequence of stages applied to a collection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Pipeline {
    /// The stages, in order.
    pub ops: Vec<Op>,
}

impl Pipeline {
    /// The empty pipeline (identity).
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Appends a filter stage.
    pub fn filter(mut self, predicate: Expr) -> Pipeline {
        self.ops.push(Op::Filter(predicate));
        self
    }

    /// Appends a transform stage.
    pub fn transform(mut self, projection: Expr) -> Pipeline {
        self.ops.push(Op::Transform(projection));
        self
    }

    /// Appends an expand stage.
    pub fn expand(mut self, array_expr: Expr) -> Pipeline {
        self.ops.push(Op::Expand(array_expr));
        self
    }

    /// Appends a top-n stage.
    pub fn top(mut self, n: usize) -> Pipeline {
        self.ops.push(Op::Top(n));
        self
    }
}

// The fluent combinators intentionally mirror the query language's
// operator names; they are builder methods, not trait impls.
#[allow(clippy::should_implement_trait)]
impl Expr {
    fn binary(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(self), Box::new(rhs))
    }

    /// `self == rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Eq, rhs)
    }

    /// `self != rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Ne, rhs)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Lt, rhs)
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Le, rhs)
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Gt, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Ge, rhs)
    }

    /// `self && rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        self.binary(BinOp::And, rhs)
    }

    /// `self || rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Or, rhs)
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Add, rhs)
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Sub, rhs)
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Mul, rhs)
    }
}

/// Expression constructors (`expr::input()`, `expr::lit(…)`, …).
pub mod expr {
    use super::Expr;
    use jsonx_data::Value;

    /// `$`.
    pub fn input() -> Expr {
        Expr::Input
    }

    /// A literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// `base.name`.
    pub fn field(base: Expr, name: impl Into<String>) -> Expr {
        Expr::Field(Box::new(base), name.into())
    }

    /// Dotted-path sugar: `path("user.name")` = `$.user.name`.
    pub fn path(dotted: &str) -> Expr {
        dotted.split('.').fold(Expr::Input, field)
    }

    /// `{ name: e, … }`.
    pub fn record<'a, I: IntoIterator<Item = (&'a str, Expr)>>(fields: I) -> Expr {
        Expr::Record(
            fields
                .into_iter()
                .map(|(n, e)| (n.to_string(), e))
                .collect(),
        )
    }

    /// `[ e, … ]`.
    pub fn array<I: IntoIterator<Item = Expr>>(items: I) -> Expr {
        Expr::Array(items.into_iter().collect())
    }

    /// `!e`.
    pub fn not(e: Expr) -> Expr {
        Expr::Not(Box::new(e))
    }

    /// `exists(e)`.
    pub fn exists(e: Expr) -> Expr {
        Expr::Exists(Box::new(e))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Input => write!(f, "$"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Field(base, name) => write!(f, "{base}.{name}"),
            Expr::Record(fields) => {
                write!(f, "{{")?;
                for (i, (n, e)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {e}")?;
                }
                write!(f, "}}")
            }
            Expr::Array(items) => {
                write!(f, "[")?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            Expr::Binary(op, a, b) => {
                let sym = match op {
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::And => "and",
                    BinOp::Or => "or",
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                };
                write!(f, "({a} {sym} {b})")
            }
            Expr::Not(e) => write!(f, "not {e}"),
            Expr::Exists(e) => write!(f, "exists({e})"),
        }
    }
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$input")?;
        for op in &self.ops {
            match op {
                Op::Filter(e) => write!(f, " -> filter {e}")?,
                Op::Transform(e) => write!(f, " -> transform {e}")?,
                Op::Expand(e) => write!(f, " -> expand {e}")?,
                Op::Top(n) => write!(f, " -> top {n}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let q = Pipeline::new()
            .filter(expr::path("a.b").gt(expr::lit(1)))
            .transform(expr::record([("x", expr::path("a"))]))
            .top(5);
        assert_eq!(q.ops.len(), 3);
        assert_eq!(
            q.to_string(),
            "$input -> filter ($.a.b > 1) -> transform {x: $.a} -> top 5"
        );
    }

    #[test]
    fn path_sugar() {
        assert_eq!(
            expr::path("u.n"),
            expr::field(expr::field(expr::input(), "u"), "n")
        );
    }
}
