//! Pipeline evaluation with Jaql's total, null-propagating semantics.
//!
//! No expression errors: a missing field is `null`, an operation on
//! unsuitable operands is `null`, and a filter predicate that is not
//! literally `true` drops the document. That totality is what makes the
//! static typing of [`crate::typing`] an over-approximation rather than an
//! effect system.

use crate::ast::{BinOp, Expr, Op, Pipeline};
use jsonx_data::{canonical_cmp, Number, Object, Value};
use std::cmp::Ordering;

impl Pipeline {
    /// Runs the pipeline over a collection.
    pub fn eval(&self, docs: &[Value]) -> Vec<Value> {
        let mut current: Vec<Value> = docs.to_vec();
        for op in &self.ops {
            current = match op {
                Op::Filter(pred) => current
                    .into_iter()
                    .filter(|doc| eval_expr(pred, doc) == Value::Bool(true))
                    .collect(),
                Op::Transform(proj) => current.iter().map(|doc| eval_expr(proj, doc)).collect(),
                Op::Expand(arr) => current
                    .iter()
                    .flat_map(|doc| match eval_expr(arr, doc) {
                        Value::Arr(items) => items,
                        // Jaql: expanding a non-array/null yields nothing.
                        _ => Vec::new(),
                    })
                    .collect(),
                Op::Top(n) => {
                    current.truncate(*n);
                    current
                }
            };
        }
        current
    }
}

/// Evaluates one expression against one document.
pub fn eval_expr(expr: &Expr, doc: &Value) -> Value {
    // Pure `$`/field-chain expressions resolve by reference — without
    // this, every `$.a.b` clones the whole document per step, which
    // dominated query execution in the E13 profile.
    if let Some(resolved) = try_path_ref(expr, doc) {
        return resolved.cloned().unwrap_or(Value::Null);
    }
    match expr {
        Expr::Input => doc.clone(),
        Expr::Const(v) => v.clone(),
        Expr::Field(base, name) => {
            let base = eval_expr(base, doc);
            base.get(name).cloned().unwrap_or(Value::Null)
        }
        Expr::Record(fields) => {
            let mut obj = Object::with_capacity(fields.len());
            for (name, e) in fields {
                obj.insert(name.clone(), eval_expr(e, doc));
            }
            Value::Obj(obj)
        }
        Expr::Array(items) => Value::Arr(items.iter().map(|e| eval_expr(e, doc)).collect()),
        Expr::Binary(op, a, b) => eval_binary(*op, eval_expr(a, doc), eval_expr(b, doc)),
        Expr::Not(e) => match eval_expr(e, doc) {
            Value::Bool(b) => Value::Bool(!b),
            _ => Value::Null,
        },
        Expr::Exists(e) => Value::Bool(!eval_expr(e, doc).is_null()),
    }
}

/// Resolves `$`-rooted field chains to a reference into the document.
/// `Some(None)` means the path hit an absent field (evaluates to null);
/// `None` means the expression is not a pure path.
fn try_path_ref<'a>(expr: &Expr, doc: &'a Value) -> Option<Option<&'a Value>> {
    match expr {
        Expr::Input => Some(Some(doc)),
        Expr::Field(base, name) => match try_path_ref(base, doc)? {
            Some(v) => Some(v.get(name)),
            None => Some(None),
        },
        _ => None,
    }
}

fn eval_binary(op: BinOp, a: Value, b: Value) -> Value {
    match op {
        BinOp::Eq => Value::Bool(a == b),
        BinOp::Ne => Value::Bool(a != b),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => compare(op, &a, &b),
        BinOp::And | BinOp::Or => logic(op, &a, &b),
        BinOp::Add | BinOp::Sub | BinOp::Mul => arith(op, &a, &b),
    }
}

/// Ordering comparisons: defined for number/number and string/string
/// pairs; anything else is `null` (incomparable).
fn compare(op: BinOp, a: &Value, b: &Value) -> Value {
    let ord: Ordering = match (a, b) {
        (Value::Num(_), Value::Num(_)) | (Value::Str(_), Value::Str(_)) => canonical_cmp(a, b),
        _ => return Value::Null,
    };
    let holds = match op {
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        _ => unreachable!("compare only handles orderings"),
    };
    Value::Bool(holds)
}

/// Boolean connectives over booleans; `null` otherwise (no short-circuit
/// truthiness — JSON has real booleans).
fn logic(op: BinOp, a: &Value, b: &Value) -> Value {
    match (a.as_bool(), b.as_bool()) {
        (Some(x), Some(y)) => Value::Bool(match op {
            BinOp::And => x && y,
            BinOp::Or => x || y,
            _ => unreachable!("logic only handles connectives"),
        }),
        _ => Value::Null,
    }
}

/// Arithmetic over numbers; exact on integer pairs, `f64` otherwise.
fn arith(op: BinOp, a: &Value, b: &Value) -> Value {
    let (Value::Num(x), Value::Num(y)) = (a, b) else {
        return Value::Null;
    };
    if let (Number::Int(i), Number::Int(j)) = (x, y) {
        let exact = match op {
            BinOp::Add => i.checked_add(*j),
            BinOp::Sub => i.checked_sub(*j),
            BinOp::Mul => i.checked_mul(*j),
            _ => unreachable!("arith only handles + - *"),
        };
        if let Some(v) = exact {
            return Value::Num(Number::Int(v));
        }
        // Overflow degrades to f64, like the integer parser does.
    }
    let (fx, fy) = (x.as_f64(), y.as_f64());
    let out = match op {
        BinOp::Add => fx + fy,
        BinOp::Sub => fx - fy,
        BinOp::Mul => fx * fy,
        _ => unreachable!("arith only handles + - *"),
    };
    Number::from_f64(out).map(Value::Num).unwrap_or(Value::Null)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::expr;
    use jsonx_data::json;

    fn ev(e: &Expr, doc: Value) -> Value {
        eval_expr(e, &doc)
    }

    #[test]
    fn field_access_null_propagates() {
        let doc = json!({"a": {"b": 7}});
        assert_eq!(ev(&expr::path("a.b"), doc.clone()), json!(7));
        assert_eq!(ev(&expr::path("a.zz"), doc.clone()), Value::Null);
        assert_eq!(ev(&expr::path("a.zz.deeper"), doc.clone()), Value::Null);
        assert_eq!(ev(&expr::path("a.b.c"), doc), Value::Null); // through scalar
    }

    #[test]
    fn comparisons() {
        let d = json!({"n": 5, "s": "abc"});
        assert_eq!(
            ev(&expr::path("n").gt(expr::lit(3)), d.clone()),
            json!(true)
        );
        assert_eq!(
            ev(&expr::path("n").le(expr::lit(5)), d.clone()),
            json!(true)
        );
        assert_eq!(
            ev(&expr::path("s").lt(expr::lit("abd")), d.clone()),
            json!(true)
        );
        // Incomparable pair → null.
        assert_eq!(ev(&expr::path("s").lt(expr::lit(1)), d), Value::Null);
    }

    #[test]
    fn equality_is_total() {
        let d = json!({"a": [1, {"k": 2}]});
        assert_eq!(
            ev(
                &expr::path("a").eq(expr::lit(json!([1, {"k": 2}]))),
                d.clone()
            ),
            json!(true)
        );
        assert_eq!(ev(&expr::path("a").eq(expr::lit(1)), d), json!(false));
    }

    #[test]
    fn logic_and_not() {
        let d = json!({"t": true, "f": false, "n": 3});
        assert_eq!(
            ev(&expr::path("t").and(expr::path("f")), d.clone()),
            json!(false)
        );
        assert_eq!(
            ev(&expr::path("t").or(expr::path("f")), d.clone()),
            json!(true)
        );
        assert_eq!(
            ev(&expr::path("t").and(expr::path("n")), d.clone()),
            Value::Null
        );
        assert_eq!(ev(&expr::not(expr::path("f")), d.clone()), json!(true));
        assert_eq!(ev(&expr::not(expr::path("n")), d), Value::Null);
    }

    #[test]
    fn arithmetic_exact_and_degrading() {
        let d = json!({"i": 4, "f": 0.5});
        assert_eq!(ev(&expr::path("i").add(expr::lit(3)), d.clone()), json!(7));
        assert_eq!(
            ev(&expr::path("i").mul(expr::path("f")), d.clone()),
            json!(2.0)
        );
        assert_eq!(
            ev(&expr::path("f").sub(expr::lit("x")), d.clone()),
            Value::Null
        );
        // i64 overflow degrades to float.
        let big = json!({"x": i64::MAX});
        assert_eq!(
            ev(&expr::path("x").add(expr::lit(1)), big),
            json!((i64::MAX as f64) + 1.0)
        );
        let _ = d;
    }

    #[test]
    fn exists_probe() {
        let d = json!({"a": null, "b": 1});
        assert_eq!(ev(&expr::exists(expr::path("b")), d.clone()), json!(true));
        // `a` is present but null — Jaql's exists sees null.
        assert_eq!(ev(&expr::exists(expr::path("a")), d.clone()), json!(false));
        assert_eq!(ev(&expr::exists(expr::path("zz")), d), json!(false));
    }

    #[test]
    fn pipeline_stages() {
        let docs = vec![
            json!({"id": 1, "tags": ["a", "b"], "score": 10}),
            json!({"id": 2, "tags": [], "score": 3}),
            json!({"id": 3, "tags": ["c"], "score": 8}),
        ];
        // filter score >= 8 → expand tags
        let q = Pipeline::new()
            .filter(expr::path("score").ge(expr::lit(8)))
            .expand(expr::path("tags"));
        assert_eq!(q.eval(&docs), vec![json!("a"), json!("b"), json!("c")]);

        // transform to flat records, then top 2
        let q = Pipeline::new()
            .transform(expr::record([
                ("i", expr::path("id")),
                ("n", expr::path("score").mul(expr::lit(2))),
            ]))
            .top(2);
        assert_eq!(
            q.eval(&docs),
            vec![json!({"i": 1, "n": 20}), json!({"i": 2, "n": 6})]
        );
    }

    #[test]
    fn expand_of_non_arrays_yields_nothing() {
        let docs = vec![json!({"x": 1}), json!({"x": [1, 2]}), json!({"y": 0})];
        let q = Pipeline::new().expand(expr::path("x"));
        assert_eq!(q.eval(&docs), vec![json!(1), json!(2)]);
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let docs = vec![json!(1), json!({"a": 2})];
        assert_eq!(Pipeline::new().eval(&docs), docs);
    }
}
