//! The output-typing soundness contract: for any pipeline q and any
//! collection D, every row of `q.eval(D)` is admitted by
//! `infer_output_type(q, infer(D))` — under both K and L input typing.

use jsonx_core::{infer_collection, Equivalence};
use jsonx_data::{Number, Object, Value};
use jsonx_gen::Corpus;
use jsonx_jaql::{expr, infer_output_type, Expr, Pipeline};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-100i64..100).prop_map(|i| Value::Num(Number::Int(i))),
        (-5.0f64..5.0).prop_map(|f| Value::Num(Number::from_f64(f).unwrap())),
        "[ab]{0,3}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..3).prop_map(Value::Arr),
            prop::collection::vec(("[a-d]", inner), 0..4)
                .prop_map(|pairs| Value::Obj(pairs.into_iter().collect::<Object>())),
        ]
    })
}

/// Random expressions over a small field vocabulary a..d.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(expr::input()),
        Just(expr::lit(1)),
        Just(expr::lit("a")),
        Just(expr::lit(true)),
        Just(expr::path("a")),
        Just(expr::path("b")),
        Just(expr::path("a.b")),
        Just(expr::path("c.d")),
    ];
    leaf.prop_recursive(3, 20, 4, |inner| {
        prop_oneof![
            (inner.clone(), "[a-d]").prop_map(|(e, n)| expr::field(e, n)),
            prop::collection::vec(("[a-d]", inner.clone()), 0..3)
                .prop_map(|fs| Expr::Record(fs.into_iter().collect())),
            prop::collection::vec(inner.clone(), 0..3).prop_map(expr::array),
            (inner.clone(), inner.clone(), 0usize..11).prop_map(|(a, b, k)| {
                match k {
                    0 => a.eq(b),
                    1 => a.ne(b),
                    2 => a.lt(b),
                    3 => a.le(b),
                    4 => a.gt(b),
                    5 => a.ge(b),
                    6 => a.and(b),
                    7 => a.or(b),
                    8 => a.add(b),
                    9 => a.sub(b),
                    _ => a.mul(b),
                }
            }),
            inner.clone().prop_map(expr::not),
            inner.prop_map(expr::exists),
        ]
    })
}

fn arb_pipeline() -> impl Strategy<Value = Pipeline> {
    prop::collection::vec(
        prop_oneof![
            arb_expr().prop_map(PipeOp::Filter),
            arb_expr().prop_map(PipeOp::Transform),
            arb_expr().prop_map(PipeOp::Expand),
            (0usize..5).prop_map(PipeOp::Top),
        ],
        0..4,
    )
    .prop_map(|ops| {
        let mut p = Pipeline::new();
        for op in ops {
            p = match op {
                PipeOp::Filter(e) => p.filter(e),
                PipeOp::Transform(e) => p.transform(e),
                PipeOp::Expand(e) => p.expand(e),
                PipeOp::Top(n) => p.top(n),
            };
        }
        p
    })
}

#[derive(Debug, Clone)]
enum PipeOp {
    Filter(Expr),
    Transform(Expr),
    Expand(Expr),
    Top(usize),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    #[test]
    fn output_typing_is_sound(
        docs in prop::collection::vec(arb_value(), 0..8),
        q in arb_pipeline(),
        equiv in prop_oneof![Just(Equivalence::Kind), Just(Equivalence::Label)],
    ) {
        let input_ty = infer_collection(&docs, equiv);
        let output_ty = infer_output_type(&q, &input_ty);
        for row in q.eval(&docs) {
            prop_assert!(
                output_ty.admits(&row),
                "pipeline {} output {} not admitted by {:?}",
                q, row, output_ty
            );
        }
    }
}

#[test]
fn output_typing_sound_on_corpora() {
    let queries = vec![
        Pipeline::new()
            .filter(expr::path("public").eq(expr::lit(true)))
            .transform(expr::record([
                ("who", expr::path("actor.login")),
                ("what", expr::path("type")),
                ("size2", expr::path("payload.size").mul(expr::lit(2))),
            ])),
        Pipeline::new()
            .expand(expr::path("payload.commits"))
            .transform(expr::path("sha")),
        Pipeline::new()
            .filter(expr::exists(expr::path("payload.forkee")))
            .top(10),
    ];
    let docs = Corpus::Github.generate(400);
    for equiv in [Equivalence::Kind, Equivalence::Label] {
        let input_ty = infer_collection(&docs, equiv);
        for q in &queries {
            let output_ty = infer_output_type(q, &input_ty);
            let rows = q.eval(&docs);
            assert!(!rows.is_empty(), "query {q} produced nothing");
            for row in rows {
                assert!(
                    output_ty.admits(&row),
                    "{equiv:?}: {q} output {row} escapes inferred type"
                );
            }
        }
    }
}
