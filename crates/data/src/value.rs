//! The owned JSON value.

use crate::kind::Kind;
use crate::number::Number;
use crate::object::Object;
use std::fmt;

/// An owned JSON value.
///
/// Equality is structural; for objects it is key-set based (order does not
/// matter), and for numbers it is canonical across `Int`/`Float` (see
/// [`Number`]). A total *canonical order* for set semantics lives in
/// [`crate::cmp`].
#[derive(Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A JSON number.
    Num(Number),
    /// A JSON string (always valid UTF-8).
    Str(String),
    /// A JSON array.
    Arr(Vec<Value>),
    /// A JSON object.
    Obj(Object),
}

impl Value {
    /// The kind of this value. Integral numbers report [`Kind::Integer`].
    pub fn kind(&self) -> Kind {
        match self {
            Value::Null => Kind::Null,
            Value::Bool(_) => Kind::Boolean,
            Value::Num(n) if n.is_integer() => Kind::Integer,
            Value::Num(_) => Kind::Number,
            Value::Str(_) => Kind::String,
            Value::Arr(_) => Kind::Array,
            Value::Obj(_) => Kind::Object,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_number(&self) -> Option<&Number> {
        match self {
            Value::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an exactly-integral number.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_number().and_then(Number::as_i64)
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_number().map(Number::as_f64)
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The mutable element vector, if this is an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&Object> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// The mutable object payload, if this is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Object> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Convenience field access: `value.get("a")` on objects,
    /// `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// Convenience index access on arrays.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(idx))
    }

    /// Renders the value as compact JSON text.
    ///
    /// This is the minimal, always-available rendering used in error
    /// messages; the full-featured serializer (pretty printing, writers)
    /// lives in `jsonx-syntax`.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => out.push_str(&n.to_string()),
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Obj(obj) => {
                out.push('{');
                for (i, (k, v)) in obj.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes `s` as a JSON string literal with required escapes.
pub(crate) fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Num(Number::Int(i))
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Num(Number::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Num(Number::from(i))
    }
}

impl From<f64> for Value {
    /// Panics on NaN/∞, which JSON cannot represent; use
    /// [`Number::from_f64`] to handle that case explicitly.
    fn from(f: f64) -> Self {
        Value::Num(Number::from_f64(f).expect("JSON numbers must be finite"))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Number> for Value {
    fn from(n: Number) -> Self {
        Value::Num(n)
    }
}

impl From<Object> for Value {
    fn from(o: Object) -> Self {
        Value::Obj(o)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Arr(v.iter().cloned().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_reported() {
        assert_eq!(Value::Null.kind(), Kind::Null);
        assert_eq!(Value::from(true).kind(), Kind::Boolean);
        assert_eq!(Value::from(1).kind(), Kind::Integer);
        assert_eq!(Value::from(1.5).kind(), Kind::Number);
        assert_eq!(Value::from(1.0).kind(), Kind::Integer); // integral float
        assert_eq!(Value::from("x").kind(), Kind::String);
        assert_eq!(Value::from(vec![1, 2]).kind(), Kind::Array);
        assert_eq!(Value::Obj(Object::new()).kind(), Kind::Object);
    }

    #[test]
    fn accessors() {
        let v = Value::from(vec![Value::from(1), Value::from("a")]);
        assert_eq!(v.get_index(1).and_then(Value::as_str), Some("a"));
        assert_eq!(v.get_index(0).and_then(Value::as_i64), Some(1));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn json_string_rendering_escapes() {
        let mut o = Object::new();
        o.insert("a\"b", Value::from("line\nbreak\u{01}"));
        let v = Value::Obj(o);
        assert_eq!(v.to_json_string(), "{\"a\\\"b\":\"line\\nbreak\\u0001\"}");
    }

    #[test]
    fn compact_rendering_of_composites() {
        let v = Value::Arr(vec![Value::Null, Value::from(false), Value::from(2.5)]);
        assert_eq!(v.to_json_string(), "[null,false,2.5]");
    }
}
