//! Insertion-ordered JSON objects.
//!
//! JSON objects are unordered in theory, but every tool the tutorial surveys
//! (schema inferrers, structural-index parsers, columnar translators)
//! benefits from preserving the order fields appear in on the wire: Mison's
//! speculative pattern trees key on physical field order, and inferred record
//! types print more readably in source order. [`Object`] therefore keeps
//! first-insertion order while still treating objects with the same
//! key→value mapping as equal regardless of order.

use crate::value::Value;
use std::fmt;

/// An insertion-ordered map from field names to JSON values.
///
/// Inserting an existing key overwrites the value in place (last-wins, the
/// de-facto duplicate-key semantics of JSON parsers) without moving the key.
#[derive(Clone, Default)]
pub struct Object {
    entries: Vec<(String, Value)>,
}

impl Object {
    /// Creates an empty object.
    pub fn new() -> Self {
        Object {
            entries: Vec::new(),
        }
    }

    /// Creates an empty object with room for `cap` fields.
    pub fn with_capacity(cap: usize) -> Self {
        Object {
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the object has no fields.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks a field up by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup by name.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// True when the field exists.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Inserts a field, returning the previous value if the key existed.
    /// An existing key keeps its position; a new key is appended.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => Some(std::mem::replace(v, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Removes a field by name, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterates fields in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates fields mutably in insertion order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&str, &mut Value)> {
        self.entries.iter_mut().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates field names in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Iterates field values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Field at a physical position (used by order-sensitive tools).
    pub fn get_index(&self, idx: usize) -> Option<(&str, &Value)> {
        self.entries.get(idx).map(|(k, v)| (k.as_str(), v))
    }

    /// Returns the fields sorted by name, for canonical processing.
    pub fn sorted_entries(&self) -> Vec<(&str, &Value)> {
        let mut v: Vec<_> = self.iter().collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v
    }
}

impl PartialEq for Object {
    /// Order-insensitive equality: same key set, equal values per key.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .all(|(k, v)| other.get(k).is_some_and(|w| v == w))
    }
}

impl fmt::Debug for Object {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl FromIterator<(String, Value)> for Object {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut obj = Object::new();
        for (k, v) in iter {
            obj.insert(k, v);
        }
        obj
    }
}

impl IntoIterator for Object {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a Object {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_preserves_first_seen_order() {
        let mut o = Object::new();
        o.insert("b", Value::from(1));
        o.insert("a", Value::from(2));
        o.insert("b", Value::from(3)); // overwrite, keeps position
        let keys: Vec<_> = o.keys().collect();
        assert_eq!(keys, vec!["b", "a"]);
        assert_eq!(o.get("b"), Some(&Value::from(3)));
        assert_eq!(o.len(), 2);
    }

    #[test]
    fn equality_ignores_order() {
        let mut a = Object::new();
        a.insert("x", Value::from(1));
        a.insert("y", Value::from(2));
        let mut b = Object::new();
        b.insert("y", Value::from(2));
        b.insert("x", Value::from(1));
        assert_eq!(a, b);
    }

    #[test]
    fn inequality_on_differing_values() {
        let mut a = Object::new();
        a.insert("x", Value::from(1));
        let mut b = Object::new();
        b.insert("x", Value::from(2));
        assert_ne!(a, b);
    }

    #[test]
    fn remove_shifts_remaining() {
        let mut o = Object::new();
        o.insert("a", Value::Null);
        o.insert("b", Value::from(true));
        assert_eq!(o.remove("a"), Some(Value::Null));
        assert_eq!(o.remove("a"), None);
        assert_eq!(o.keys().collect::<Vec<_>>(), vec!["b"]);
    }

    #[test]
    fn sorted_entries_are_by_key() {
        let mut o = Object::new();
        o.insert("z", Value::from(1));
        o.insert("a", Value::from(2));
        let sorted: Vec<_> = o.sorted_entries().into_iter().map(|(k, _)| k).collect();
        assert_eq!(sorted, vec!["a", "z"]);
    }

    #[test]
    fn from_iterator_applies_last_wins() {
        let o: Object = vec![
            ("k".to_string(), Value::from(1)),
            ("k".to_string(), Value::from(2)),
        ]
        .into_iter()
        .collect();
        assert_eq!(o.len(), 1);
        assert_eq!(o.get("k"), Some(&Value::from(2)));
    }
}
