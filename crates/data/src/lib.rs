//! # jsonx-data
//!
//! The JSON data model shared by every crate in the `jsonx` workspace.
//!
//! This crate deliberately contains *no* parsing or schema logic: it is the
//! substrate that the tutorial's §1 ("JSON primer") describes — values built
//! from the seven JSON kinds (null, true/false, numbers, strings, arrays,
//! objects), plus the operations every schema/type tool needs:
//!
//! * [`Value`] — an owned JSON value with order-preserving objects,
//! * [`Number`] — an exact number representation with canonical equality
//!   across the integer/float boundary,
//! * [`Object`] — an insertion-ordered string→value map,
//! * [`Pointer`] — RFC 6901 JSON Pointers for addressing into values,
//! * [`cmp::canonical_cmp`] — a total order on values used by
//!   schema tools for deduplication and set semantics (`uniqueItems`,
//!   `enum`),
//! * [`metrics`] — structural size/depth/path statistics used by the
//!   schema-size experiments (E7, E8),
//! * [`hash::crc32`] — the CRC-32 checksum shared by the run journal's
//!   record frames and the `.jxc` per-block integrity checks.

pub mod cmp;
pub mod hash;
pub mod kind;
pub mod metrics;
pub mod number;
pub mod object;
pub mod pointer;
pub mod value;

#[macro_use]
mod macros;

pub use cmp::{all_unique, canonical_cmp, canonical_dedup, canonical_eq};
pub use hash::{crc32, crc32_update};
pub use kind::Kind;
pub use metrics::{label_paths, max_depth, node_count, text_size, LabelPath, LabelStep};
pub use number::Number;
pub use object::Object;
pub use pointer::{Pointer, PointerParseError, Token};
pub use value::Value;
