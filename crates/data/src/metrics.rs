//! Structural metrics over JSON values.
//!
//! The schema-size experiments (E7: "no-merge tools produce schemas
//! comparable to the size of the input data", E8: skeleton coverage) need a
//! common measure of how big a value or a schema *is*. We use node counts
//! and depths over the value tree, plus the set of distinct root-to-leaf
//! label paths, which is the denominator of skeleton path coverage.

use crate::pointer::{Pointer, Token};
use crate::value::Value;
use std::collections::BTreeSet;

/// Total number of nodes in the value tree (every scalar, array and object
/// counts as one node).
pub fn node_count(v: &Value) -> usize {
    match v {
        Value::Arr(items) => 1 + items.iter().map(node_count).sum::<usize>(),
        Value::Obj(obj) => 1 + obj.values().map(node_count).sum::<usize>(),
        _ => 1,
    }
}

/// Maximum nesting depth; scalars have depth 1.
pub fn max_depth(v: &Value) -> usize {
    match v {
        Value::Arr(items) => 1 + items.iter().map(max_depth).max().unwrap_or(0),
        Value::Obj(obj) => 1 + obj.values().map(max_depth).max().unwrap_or(0),
        _ => 1,
    }
}

/// A *label path*: the sequence of field names from the root to a node,
/// with array traversal collapsed to a `[]` marker (index-insensitive, the
/// abstraction skeleton schemas and schema inference both use).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LabelPath(pub Vec<LabelStep>);

/// One step of a [`LabelPath`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LabelStep {
    /// Descend into object field `name`.
    Field(String),
    /// Descend into any array element.
    AnyItem,
}

impl LabelPath {
    /// Renders as a dotted path, e.g. `user.entities.urls[].expanded`.
    pub fn display(&self) -> String {
        let mut out = String::new();
        for step in &self.0 {
            match step {
                LabelStep::Field(name) => {
                    if !out.is_empty() {
                        out.push('.');
                    }
                    out.push_str(name);
                }
                LabelStep::AnyItem => out.push_str("[]"),
            }
        }
        out
    }

    /// Converts a concrete JSON Pointer into its label abstraction.
    pub fn from_pointer(p: &Pointer) -> LabelPath {
        LabelPath(
            p.tokens()
                .iter()
                .map(|t| match t {
                    Token::Key(k) => LabelStep::Field(k.clone()),
                    Token::Index(_) => LabelStep::AnyItem,
                })
                .collect(),
        )
    }
}

/// Collects the set of distinct label paths to *every* node of the value
/// (internal nodes included, root excluded).
pub fn label_paths(v: &Value) -> BTreeSet<LabelPath> {
    let mut out = BTreeSet::new();
    collect_paths(v, &mut Vec::new(), &mut out);
    out
}

fn collect_paths(v: &Value, prefix: &mut Vec<LabelStep>, out: &mut BTreeSet<LabelPath>) {
    match v {
        Value::Obj(obj) => {
            for (k, child) in obj.iter() {
                prefix.push(LabelStep::Field(k.to_string()));
                out.insert(LabelPath(prefix.clone()));
                collect_paths(child, prefix, out);
                prefix.pop();
            }
        }
        Value::Arr(items) => {
            for child in items {
                prefix.push(LabelStep::AnyItem);
                out.insert(LabelPath(prefix.clone()));
                collect_paths(child, prefix, out);
                prefix.pop();
            }
        }
        _ => {}
    }
}

/// Size of the serialized compact JSON text, in bytes — the "size of the
/// input data" yardstick of E7.
pub fn text_size(v: &Value) -> usize {
    v.to_json_string().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Object;

    fn doc() -> Value {
        let mut inner = Object::new();
        inner.insert("name", Value::from("a"));
        let mut root = Object::new();
        root.insert("id", Value::from(1));
        root.insert(
            "tags",
            Value::Arr(vec![Value::Obj(inner.clone()), Value::Obj(inner)]),
        );
        Value::Obj(root)
    }

    #[test]
    fn node_count_counts_every_node() {
        // root obj + id + tags arr + 2 objs + 2 names = 7
        assert_eq!(node_count(&doc()), 7);
        assert_eq!(node_count(&Value::Null), 1);
    }

    #[test]
    fn depth_of_nested_structures() {
        assert_eq!(max_depth(&Value::from(3)), 1);
        assert_eq!(max_depth(&doc()), 4); // obj -> arr -> obj -> scalar
        assert_eq!(max_depth(&Value::Arr(vec![])), 1);
    }

    #[test]
    fn label_paths_deduplicate_array_elements() {
        let paths = label_paths(&doc());
        let shown: Vec<_> = paths.iter().map(|p| p.display()).collect();
        assert_eq!(shown, vec!["id", "tags", "tags[]", "tags[].name"]);
    }

    #[test]
    fn pointer_abstraction() {
        let p = Pointer::parse("/tags/0/name").unwrap();
        assert_eq!(LabelPath::from_pointer(&p).display(), "tags[].name");
    }

    #[test]
    fn text_size_matches_serialization() {
        let v = Value::from(vec![1, 2, 3]);
        assert_eq!(text_size(&v), "[1,2,3]".len());
    }
}
