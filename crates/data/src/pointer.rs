//! RFC 6901 JSON Pointers.
//!
//! Pointers are the addressing scheme JSON Schema uses for `$ref`
//! (`#/definitions/foo`) and that our validators use to report *where* in a
//! document a violation occurred. A pointer is a sequence of [`Token`]s, each
//! naming either an object field or an array index.

use crate::value::Value;
use std::fmt;

/// One step of a JSON Pointer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Token {
    /// An object field name (unescaped).
    Key(String),
    /// An array index.
    Index(usize),
}

impl Token {
    /// Renders the token with RFC 6901 escaping (`~` → `~0`, `/` → `~1`).
    fn write_escaped(&self, out: &mut String) {
        match self {
            Token::Key(k) => {
                for c in k.chars() {
                    match c {
                        '~' => out.push_str("~0"),
                        '/' => out.push_str("~1"),
                        c => out.push(c),
                    }
                }
            }
            Token::Index(i) => out.push_str(&i.to_string()),
        }
    }
}

/// A parsed JSON Pointer: a (possibly empty) path from the document root.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Pointer {
    tokens: Vec<Token>,
}

/// Errors from [`Pointer::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointerParseError {
    /// A non-empty pointer must start with `/`.
    MissingLeadingSlash,
    /// `~` was followed by something other than `0` or `1`.
    BadEscape { segment: String },
}

impl fmt::Display for PointerParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointerParseError::MissingLeadingSlash => {
                write!(f, "non-empty JSON Pointer must begin with '/'")
            }
            PointerParseError::BadEscape { segment } => {
                write!(f, "invalid ~-escape in pointer segment {segment:?}")
            }
        }
    }
}

impl std::error::Error for PointerParseError {}

impl Pointer {
    /// The root pointer (empty path).
    pub fn root() -> Self {
        Pointer::default()
    }

    /// Parses RFC 6901 text such as `"/store/books/0/title"`.
    ///
    /// Numeric segments are kept as [`Token::Index`]; when resolved against
    /// an object they fall back to key lookup, matching the RFC's
    /// interpretation that tokens are names first.
    pub fn parse(text: &str) -> Result<Self, PointerParseError> {
        if text.is_empty() {
            return Ok(Pointer::root());
        }
        let rest = text
            .strip_prefix('/')
            .ok_or(PointerParseError::MissingLeadingSlash)?;
        let mut tokens = Vec::new();
        for raw in rest.split('/') {
            tokens.push(parse_segment(raw)?);
        }
        Ok(Pointer { tokens })
    }

    /// The tokens of this pointer, root first.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True for the root pointer.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Returns a new pointer extended by an object key.
    pub fn push_key(&self, key: impl Into<String>) -> Pointer {
        let mut tokens = self.tokens.clone();
        tokens.push(Token::Key(key.into()));
        Pointer { tokens }
    }

    /// Returns a new pointer extended by an array index.
    pub fn push_index(&self, idx: usize) -> Pointer {
        let mut tokens = self.tokens.clone();
        tokens.push(Token::Index(idx));
        Pointer { tokens }
    }

    /// Resolves the pointer against a value, returning the addressed
    /// sub-value if every step exists.
    pub fn resolve<'v>(&self, root: &'v Value) -> Option<&'v Value> {
        let mut cur = root;
        for tok in &self.tokens {
            cur = match (tok, cur) {
                (Token::Key(k), Value::Obj(o)) => o.get(k)?,
                (Token::Index(i), Value::Arr(a)) => a.get(*i)?,
                // A numeric token can still address an object field "0".
                (Token::Index(i), Value::Obj(o)) => o.get(&i.to_string())?,
                _ => return None,
            };
        }
        Some(cur)
    }
}

fn parse_segment(raw: &str) -> Result<Token, PointerParseError> {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c == '~' {
            match chars.next() {
                Some('0') => out.push('~'),
                Some('1') => out.push('/'),
                _ => {
                    return Err(PointerParseError::BadEscape {
                        segment: raw.to_string(),
                    })
                }
            }
        } else {
            out.push(c);
        }
    }
    // Pure decimal segments (no leading zeros except "0" itself) are
    // candidate array indices.
    let numeric = !out.is_empty()
        && out.bytes().all(|b| b.is_ascii_digit())
        && (out == "0" || !out.starts_with('0'));
    if numeric {
        if let Ok(i) = out.parse::<usize>() {
            return Ok(Token::Index(i));
        }
    }
    Ok(Token::Key(out))
}

impl fmt::Display for Pointer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        for tok in &self.tokens {
            out.push('/');
            tok.write_escaped(&mut out);
        }
        f.write_str(&out)
    }
}

impl FromIterator<Token> for Pointer {
    fn from_iter<I: IntoIterator<Item = Token>>(iter: I) -> Self {
        Pointer {
            tokens: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Object;

    fn sample() -> Value {
        let mut inner = Object::new();
        inner.insert("a/b", Value::from(1));
        inner.insert("m~n", Value::from(2));
        let mut root = Object::new();
        root.insert("obj", Value::Obj(inner));
        root.insert(
            "arr",
            Value::Arr(vec![Value::from(10), Value::from(20), Value::from(30)]),
        );
        Value::Obj(root)
    }

    #[test]
    fn parse_and_display_round_trip() {
        for text in ["", "/a", "/a/0/b", "/a~1b", "/m~0n", "/"] {
            let p = Pointer::parse(text).unwrap();
            assert_eq!(p.to_string(), text);
        }
    }

    #[test]
    fn escaping_resolves() {
        let v = sample();
        assert_eq!(
            Pointer::parse("/obj/a~1b").unwrap().resolve(&v),
            Some(&Value::from(1))
        );
        assert_eq!(
            Pointer::parse("/obj/m~0n").unwrap().resolve(&v),
            Some(&Value::from(2))
        );
    }

    #[test]
    fn array_indexing() {
        let v = sample();
        assert_eq!(
            Pointer::parse("/arr/2").unwrap().resolve(&v),
            Some(&Value::from(30))
        );
        assert_eq!(Pointer::parse("/arr/3").unwrap().resolve(&v), None);
        // Leading zeros are field names, not indices.
        assert_eq!(Pointer::parse("/arr/01").unwrap().resolve(&v), None);
    }

    #[test]
    fn root_resolves_to_self() {
        let v = sample();
        assert_eq!(Pointer::root().resolve(&v), Some(&v));
    }

    #[test]
    fn errors() {
        assert_eq!(
            Pointer::parse("a/b"),
            Err(PointerParseError::MissingLeadingSlash)
        );
        assert!(matches!(
            Pointer::parse("/bad~2escape"),
            Err(PointerParseError::BadEscape { .. })
        ));
    }

    #[test]
    fn push_builders() {
        let p = Pointer::root().push_key("arr").push_index(1);
        assert_eq!(p.to_string(), "/arr/1");
        assert_eq!(p.resolve(&sample()), Some(&Value::from(20)));
    }

    #[test]
    fn numeric_token_falls_back_to_object_key() {
        let mut o = Object::new();
        o.insert("0", Value::from("zero"));
        let v = Value::Obj(o);
        assert_eq!(
            Pointer::parse("/0").unwrap().resolve(&v),
            Some(&Value::from("zero"))
        );
    }
}
