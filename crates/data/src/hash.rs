//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial) over byte slices.
//!
//! The workspace's durability features — the run journal's per-record
//! frames and the `.jxc` per-block checksums — need one shared, stable
//! checksum so a reader can tell "this record/block arrived intact" from
//! "the process died mid-write". CRC-32 is the right tool for that
//! threat model: it detects torn writes and bit rot, not adversaries.
//! The implementation is the classic reflected table-driven one,
//! generated at compile time so the crate stays dependency-free.

/// The reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` with the conventional `0xFFFF_FFFF` pre/post
/// conditioning — the same value `crc32(1)` in zlib or `zlib.crc32` in
/// Python would produce.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Folds `bytes` into a running (pre-conditioned) CRC state. Start from
/// `0xFFFF_FFFF`, fold each fragment, and finish with `^ 0xFFFF_FFFF`
/// to checksum data that arrives in pieces.
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from the canonical IEEE CRC-32 ("check" value
        // for "123456789" is 0xCBF43926).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"chunk-commit journal record payload";
        for split in 0..data.len() {
            let mut state = 0xFFFF_FFFF;
            state = crc32_update(state, &data[..split]);
            state = crc32_update(state, &data[split..]);
            assert_eq!(state ^ 0xFFFF_FFFF, crc32(data));
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"some record";
        let good = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() * 8 {
            copy[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&copy), good, "flip at bit {i} undetected");
            copy[i / 8] ^= 1 << (i % 8);
        }
    }
}
