//! Canonical total order over JSON values.
//!
//! Several schema features need *set* semantics over arbitrary values —
//! JSON Schema's `uniqueItems` and `enum`, skeleton deduplication, and the
//! equivalence tests in the inference engine. [`canonical_cmp`] provides a
//! total order: values are ranked by kind first, then compared structurally,
//! with object fields compared in sorted key order so that key insertion
//! order never affects the result.

use crate::value::Value;
use std::cmp::Ordering;

fn kind_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Num(_) => 2,
        Value::Str(_) => 3,
        Value::Arr(_) => 4,
        Value::Obj(_) => 5,
    }
}

/// Compares two values in the canonical total order.
pub fn canonical_cmp(a: &Value, b: &Value) -> Ordering {
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Num(x), Value::Num(y)) => x.cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Arr(x), Value::Arr(y)) => {
            for (xi, yi) in x.iter().zip(y.iter()) {
                let ord = canonical_cmp(xi, yi);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Obj(x), Value::Obj(y)) => {
            let xs = x.sorted_entries();
            let ys = y.sorted_entries();
            for ((kx, vx), (ky, vy)) in xs.iter().zip(ys.iter()) {
                let ord = kx.cmp(ky).then_with(|| canonical_cmp(vx, vy));
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            xs.len().cmp(&ys.len())
        }
        _ => kind_rank(a).cmp(&kind_rank(b)),
    }
}

/// Equality under the canonical order (agrees with `PartialEq` on `Value`).
pub fn canonical_eq(a: &Value, b: &Value) -> bool {
    canonical_cmp(a, b) == Ordering::Equal
}

/// Sorts and deduplicates a set of values in canonical order.
pub fn canonical_dedup(values: &mut Vec<Value>) {
    values.sort_by(canonical_cmp);
    values.dedup_by(|a, b| canonical_eq(a, b));
}

/// True when all elements of `values` are pairwise distinct
/// (JSON Schema `uniqueItems`).
pub fn all_unique(values: &[Value]) -> bool {
    let mut sorted: Vec<&Value> = values.iter().collect();
    sorted.sort_by(|a, b| canonical_cmp(a, b));
    sorted.windows(2).all(|w| !canonical_eq(w[0], w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Object;

    #[test]
    fn kinds_rank_before_content() {
        assert_eq!(
            canonical_cmp(&Value::Null, &Value::from(false)),
            Ordering::Less
        );
        assert_eq!(
            canonical_cmp(&Value::from("z"), &Value::Arr(vec![])),
            Ordering::Less
        );
    }

    #[test]
    fn arrays_compare_lexicographically() {
        let a = Value::from(vec![1, 2]);
        let b = Value::from(vec![1, 2, 0]);
        let c = Value::from(vec![1, 3]);
        assert_eq!(canonical_cmp(&a, &b), Ordering::Less);
        assert_eq!(canonical_cmp(&b, &c), Ordering::Less);
    }

    #[test]
    fn objects_compare_order_insensitively() {
        let mut a = Object::new();
        a.insert("x", Value::from(1));
        a.insert("y", Value::from(2));
        let mut b = Object::new();
        b.insert("y", Value::from(2));
        b.insert("x", Value::from(1));
        assert_eq!(
            canonical_cmp(&Value::Obj(a), &Value::Obj(b)),
            Ordering::Equal
        );
    }

    #[test]
    fn numeric_equality_across_variants() {
        assert!(canonical_eq(&Value::from(2), &Value::from(2.0)));
    }

    #[test]
    fn dedup_and_uniqueness() {
        let mut v = vec![
            Value::from(1),
            Value::from(1.0),
            Value::from("a"),
            Value::Null,
        ];
        assert!(!all_unique(&v));
        canonical_dedup(&mut v);
        assert_eq!(v.len(), 3);
        assert!(all_unique(&v));
    }
}
