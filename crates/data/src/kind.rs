//! The seven JSON kinds.
//!
//! "Kind" is the coarsest type abstraction the tutorial works with: it is the
//! *K* (kind) equivalence of the parametric inference line, the `type`
//! keyword vocabulary of JSON Schema, and the branch discriminator of every
//! union type. `Integer` is split from `Number` because schema languages and
//! the inference papers treat it as a distinct primitive.

use std::fmt;

/// The kind (top-level type) of a JSON value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Kind {
    Null,
    Boolean,
    Integer,
    Number,
    String,
    Array,
    Object,
}

impl Kind {
    /// All kinds in canonical order.
    pub const ALL: [Kind; 7] = [
        Kind::Null,
        Kind::Boolean,
        Kind::Integer,
        Kind::Number,
        Kind::String,
        Kind::Array,
        Kind::Object,
    ];

    /// The JSON Schema `type` keyword spelling of this kind.
    pub fn name(&self) -> &'static str {
        match self {
            Kind::Null => "null",
            Kind::Boolean => "boolean",
            Kind::Integer => "integer",
            Kind::Number => "number",
            Kind::String => "string",
            Kind::Array => "array",
            Kind::Object => "object",
        }
    }

    /// Parses a JSON Schema `type` keyword spelling.
    pub fn from_name(name: &str) -> Option<Kind> {
        Some(match name {
            "null" => Kind::Null,
            "boolean" => Kind::Boolean,
            "integer" => Kind::Integer,
            "number" => Kind::Number,
            "string" => Kind::String,
            "array" => Kind::Array,
            "object" => Kind::Object,
            _ => return None,
        })
    }

    /// True when `self` accepts every value `other` accepts — only
    /// `number ⊇ integer` beyond reflexivity.
    pub fn subsumes(&self, other: Kind) -> bool {
        *self == other || (*self == Kind::Number && other == Kind::Integer)
    }
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in Kind::ALL {
            assert_eq!(Kind::from_name(k.name()), Some(k));
        }
        assert_eq!(Kind::from_name("bogus"), None);
    }

    #[test]
    fn number_subsumes_integer() {
        assert!(Kind::Number.subsumes(Kind::Integer));
        assert!(!Kind::Integer.subsumes(Kind::Number));
        assert!(Kind::String.subsumes(Kind::String));
        assert!(!Kind::String.subsumes(Kind::Null));
    }
}
