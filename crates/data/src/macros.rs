//! The [`json!`](crate::json) literal macro.
//!
//! A token-tree muncher in the style of `serde_json::json!`, so that
//! arbitrary expressions — including negative literals and method calls —
//! work in both key and value position.

/// Builds a [`Value`](crate::Value) from JSON-like Rust syntax.
///
/// ```
/// use jsonx_data::{json, Value};
///
/// let v = json!({
///     "id": 7,
///     "name": "ada",
///     "delta": -1.5,
///     "tags": ["a", "b"],
///     "meta": { "active": true, "score": 1.5, "note": null },
/// });
/// assert_eq!(v.get("name").and_then(Value::as_str), Some("ada"));
/// assert_eq!(v.get("delta").and_then(Value::as_f64), Some(-1.5));
/// ```
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Implementation detail of [`json!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    //////////////////////////////////////////////////////////////////////
    // Array munching: @array [built elements] remaining tokens
    //////////////////////////////////////////////////////////////////////

    // Done with trailing comma / no trailing comma.
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };

    // Next element is a composite or keyword, followed by more.
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($obj:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($obj)*})] $($rest)*)
    };
    // Next element is an expression followed by a comma.
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    // Last element is an expression with no trailing comma.
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    // Comma after the most recent element.
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////////////////////////////////////////////////////////////////
    // Object munching: @object $map (current key tokens) (value tokens)
    //////////////////////////////////////////////////////////////////////

    // Done.
    (@object $object:ident () () ()) => {};

    // Insert the current entry followed by trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).to_string(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the last entry without trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).to_string(), $value);
    };

    // Next value is a composite or keyword.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    // Next value is an expression followed by comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    // Last value is an expression with no trailing comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };

    // Key munching: accumulate tokens until `:`.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) $copy);
    };
    // Out of tokens while building a key (unbalanced input).
    (@object $object:ident ($($key:tt)+) () $copy:tt) => {
        compile_error!("missing value for object entry in json! macro");
    };

    //////////////////////////////////////////////////////////////////////
    // Entry points
    //////////////////////////////////////////////////////////////////////

    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Arr(vec![]) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Arr($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => { $crate::Value::Obj($crate::Object::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Obj({
            let mut object = $crate::Object::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use crate::Value;

    #[test]
    fn scalars() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(true), Value::Bool(true));
        assert_eq!(json!(3), Value::from(3));
        assert_eq!(json!(2.5), Value::from(2.5));
        assert_eq!(json!(-7), Value::from(-7));
        assert_eq!(json!(-2.5), Value::from(-2.5));
        assert_eq!(json!("hi"), Value::from("hi"));
    }

    #[test]
    fn nested_composites() {
        let v = json!({
            "a": [1, {"b": null}, [true]],
            "c": "x",
        });
        assert_eq!(v.to_json_string(), r#"{"a":[1,{"b":null},[true]],"c":"x"}"#);
    }

    #[test]
    fn negative_numbers_everywhere() {
        let v = json!({"lon": -9.13, "xs": [-1, -2.5, 3]});
        assert_eq!(v.get("lon").and_then(Value::as_f64), Some(-9.13));
        assert_eq!(
            v.get("xs").unwrap().get_index(1).and_then(Value::as_f64),
            Some(-2.5)
        );
    }

    #[test]
    fn expression_values_and_keys() {
        let n = 40 + 2;
        let key = "answer";
        #[allow(clippy::identity_op)] // force the expr-capture macro arm
        let v = json!({ key: n + 0, "direct": n });
        assert_eq!(v.get("answer").and_then(Value::as_i64), Some(42));
        assert_eq!(v.get("direct").and_then(Value::as_i64), Some(42));
    }

    #[test]
    fn trailing_commas_allowed() {
        let v = json!([1, 2,]);
        assert_eq!(v.as_array().unwrap().len(), 2);
        let o = json!({"a": 1,});
        assert_eq!(o.as_object().unwrap().len(), 1);
    }

    #[test]
    fn empty_composites() {
        assert_eq!(json!([]), Value::Arr(vec![]));
        assert!(json!({}).as_object().unwrap().is_empty());
        assert_eq!(json!([[], {}]).as_array().unwrap().len(), 2);
    }

    #[test]
    fn deep_mixture() {
        let v = json!({
            "coords": {"type": "Point", "coordinates": [38.72, -9.13]},
            "flags": [true, false, null],
        });
        assert_eq!(
            v.get("coords")
                .unwrap()
                .get("coordinates")
                .unwrap()
                .get_index(1)
                .and_then(Value::as_f64),
            Some(-9.13)
        );
    }
}
