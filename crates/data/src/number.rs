//! Exact JSON number representation.
//!
//! JSON has a single `number` production, but tools care about the
//! integer/float distinction (schema languages have `integer` as a distinct
//! primitive type, and the type-inference line of Baazizi et al. infers
//! `Num` vs `Int` kinds). [`Number`] therefore keeps integers exact in an
//! `i64` and everything else in a *finite* `f64`, while making equality,
//! ordering and hashing agree across the two representations:
//! `Number::from(1i64) == Number::from(1.0f64)`.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A JSON number: either an exact 64-bit integer or a finite double.
///
/// Invariant: the `Float` variant is always finite (no NaN, no ±∞) — the
/// constructors enforce this, which is what makes [`Eq`] and [`Ord`] total.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// An integer that fits `i64`, kept exact.
    Int(i64),
    /// Any other finite number.
    Float(f64),
}

impl Number {
    /// Builds a number from a finite `f64`; returns `None` for NaN or ±∞,
    /// which JSON cannot represent.
    pub fn from_f64(f: f64) -> Option<Self> {
        f.is_finite().then_some(Number::Float(f))
    }

    /// True when the value is mathematically an integer (including floats
    /// like `3.0`), the meaning JSON Schema gives the `integer` type.
    pub fn is_integer(&self) -> bool {
        match *self {
            Number::Int(_) => true,
            Number::Float(f) => f.fract() == 0.0,
        }
    }

    /// The value as `f64` (lossy for integers above 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(i) => Some(i),
            Number::Float(f) => {
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    // `f <= i64::MAX as f64` admits 2^63 itself (rounding);
                    // the cast saturates, so re-check by converting back.
                    let i = f as i64;
                    (i as f64 == f).then_some(i)
                } else {
                    None
                }
            }
        }
    }

    /// True when the number is zero (of either representation).
    pub fn is_zero(&self) -> bool {
        match *self {
            Number::Int(i) => i == 0,
            Number::Float(f) => f == 0.0,
        }
    }

    /// Checks divisibility for JSON Schema's `multipleOf` keyword.
    ///
    /// Integer/integer pairs are checked exactly; anything involving floats
    /// uses an epsilon-free remainder test on `f64`.
    pub fn is_multiple_of(&self, divisor: &Number) -> bool {
        if divisor.is_zero() {
            return false;
        }
        if let (Number::Int(a), Number::Int(b)) = (self, divisor) {
            return a % b == 0;
        }
        let q = self.as_f64() / divisor.as_f64();
        (q - q.round()).abs() < 1e-9
    }
}

impl From<i64> for Number {
    fn from(i: i64) -> Self {
        Number::Int(i)
    }
}

impl From<i32> for Number {
    fn from(i: i32) -> Self {
        Number::Int(i64::from(i))
    }
}

impl From<u32> for Number {
    fn from(i: u32) -> Self {
        Number::Int(i64::from(i))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            (Number::Int(i), Number::Float(f)) | (Number::Float(f), Number::Int(i)) => {
                Number::Float(*f).as_i64() == Some(*i)
            }
        }
    }
}

impl Eq for Number {}

impl Hash for Number {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with `PartialEq`: integral floats hash as their i64.
        match self.as_i64() {
            Some(i) => i.hash(state),
            None => self.as_f64().to_bits().hash(state),
        }
    }
}

impl PartialOrd for Number {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Number {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a.cmp(b),
            // Finite floats always compare; the invariant bans NaN.
            _ => self
                .as_f64()
                .partial_cmp(&other.as_f64())
                .expect("Number invariant: floats are finite"),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::Int(i) => write!(f, "{i}"),
            Number::Float(x) => {
                // Keep a trailing `.0` so the text re-parses as a float,
                // preserving the Int/Float distinction through round-trips.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(n: Number) -> u64 {
        let mut h = DefaultHasher::new();
        n.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_equality_is_canonical() {
        assert_eq!(Number::Int(1), Number::Float(1.0));
        assert_ne!(Number::Int(1), Number::Float(1.5));
        assert_ne!(Number::Int(0), Number::Float(-0.5));
        // -0.0 == 0 in IEEE and in our model.
        assert_eq!(Number::Int(0), Number::Float(-0.0));
    }

    #[test]
    fn equality_rejects_precision_loss() {
        // 2^53 + 1 is not representable in f64; the nearest double is 2^53.
        let big = (1i64 << 53) + 1;
        assert_ne!(Number::Int(big), Number::Float((1i64 << 53) as f64));
    }

    #[test]
    fn hash_agrees_with_eq() {
        assert_eq!(hash_of(Number::Int(42)), hash_of(Number::Float(42.0)));
        assert_eq!(hash_of(Number::Int(0)), hash_of(Number::Float(-0.0)));
    }

    #[test]
    fn ordering_is_numeric() {
        let mut v = vec![
            Number::Float(2.5),
            Number::Int(-1),
            Number::Int(3),
            Number::Float(0.0),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Number::Int(-1),
                Number::Float(0.0),
                Number::Float(2.5),
                Number::Int(3)
            ]
        );
    }

    #[test]
    fn from_f64_rejects_non_finite() {
        assert!(Number::from_f64(f64::NAN).is_none());
        assert!(Number::from_f64(f64::INFINITY).is_none());
        assert!(Number::from_f64(1.25).is_some());
    }

    #[test]
    fn integer_detection() {
        assert!(Number::Int(7).is_integer());
        assert!(Number::Float(7.0).is_integer());
        assert!(!Number::Float(7.5).is_integer());
    }

    #[test]
    fn as_i64_conversions() {
        assert_eq!(Number::Float(3.0).as_i64(), Some(3));
        assert_eq!(Number::Float(3.5).as_i64(), None);
        assert_eq!(Number::Float(1e300).as_i64(), None);
        assert_eq!(Number::Int(i64::MIN).as_i64(), Some(i64::MIN));
    }

    #[test]
    fn multiple_of_semantics() {
        assert!(Number::Int(10).is_multiple_of(&Number::Int(5)));
        assert!(!Number::Int(10).is_multiple_of(&Number::Int(3)));
        assert!(Number::Float(7.5).is_multiple_of(&Number::Float(2.5)));
        assert!(!Number::Int(1).is_multiple_of(&Number::Int(0)));
    }

    #[test]
    fn display_round_trip_distinction() {
        assert_eq!(Number::Int(3).to_string(), "3");
        assert_eq!(Number::Float(3.0).to_string(), "3.0");
        assert_eq!(Number::Float(0.5).to_string(), "0.5");
    }
}
