//! Skeleton mining: frequency-ranked structures under a coverage budget.

use crate::tree::StructTree;
use jsonx_data::{LabelPath, Value};
use std::collections::{BTreeSet, HashMap};

/// A mined skeleton: the most frequent document structures, covering at
/// least the requested fraction of the collection.
#[derive(Debug, Clone)]
pub struct Skeleton {
    /// Kept structures with their document counts, most frequent first.
    pub structures: Vec<(StructTree, u64)>,
    /// Union of the kept structures' paths (the queryable index).
    paths: BTreeSet<LabelPath>,
    /// Total documents mined.
    pub total_docs: u64,
    /// Documents covered by the kept structures.
    pub covered_docs: u64,
}

/// Summary statistics for reports and the E8 bench.
#[derive(Debug, Clone, PartialEq)]
pub struct SkeletonStats {
    /// Number of kept structures.
    pub structures: usize,
    /// Total node count across kept structures.
    pub size: usize,
    /// Achieved document coverage (0–1).
    pub coverage: f64,
    /// Number of distinct queryable paths.
    pub paths: usize,
}

impl Skeleton {
    /// Mines a skeleton covering at least `coverage` (0–1] of `docs`.
    ///
    /// Structures are ranked by frequency; the least frequent ones — and
    /// any path that only they contain — are dropped once the target
    /// coverage is reached. That information loss is the documented
    /// design trade-off of skeletons.
    pub fn mine(docs: &[Value], coverage: f64) -> Skeleton {
        let coverage = coverage.clamp(0.0, 1.0);
        let mut counts: HashMap<StructTree, u64> = HashMap::new();
        for doc in docs {
            *counts.entry(StructTree::of(doc)).or_insert(0) += 1;
        }
        let mut ranked: Vec<(StructTree, u64)> = counts.into_iter().collect();
        // Frequency descending; size ascending as tiebreak (prefer small
        // representative structures), then display order for determinism.
        ranked.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| a.0.size().cmp(&b.0.size()))
                .then_with(|| a.0.cmp(&b.0))
        });

        let total = docs.len() as u64;
        let needed = (coverage * total as f64).ceil() as u64;
        let mut kept = Vec::new();
        let mut covered = 0;
        for (tree, n) in ranked {
            if covered >= needed && !kept.is_empty() {
                break;
            }
            covered += n;
            kept.push((tree, n));
        }
        let mut paths = BTreeSet::new();
        for (tree, _) in &kept {
            paths.extend(tree.paths());
        }
        Skeleton {
            structures: kept,
            paths,
            total_docs: total,
            covered_docs: covered,
        }
    }

    /// Does the skeleton know this dotted path (e.g. `"payload.commits"`)?
    ///
    /// Rare paths may return `false` even though some documents contain
    /// them — the "may totally miss information about paths" behaviour.
    pub fn contains_path(&self, dotted: &str) -> bool {
        self.paths.iter().any(|p| p.display() == dotted)
    }

    /// All queryable paths, sorted.
    pub fn paths(&self) -> impl Iterator<Item = &LabelPath> {
        self.paths.iter()
    }

    /// Summary statistics.
    pub fn stats(&self) -> SkeletonStats {
        SkeletonStats {
            structures: self.structures.len(),
            size: self.structures.iter().map(|(t, _)| t.size()).sum(),
            coverage: if self.total_docs == 0 {
                0.0
            } else {
                self.covered_docs as f64 / self.total_docs as f64
            },
            paths: self.paths.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    /// 90% of docs are shape A, 10% shape B with an extra rare field.
    fn skewed(n: usize) -> Vec<Value> {
        (0..n)
            .map(|i| {
                if i % 10 == 0 {
                    json!({"id": (i as i64), "rare_field": {"deep": true}})
                } else {
                    json!({"id": (i as i64), "name": "x"})
                }
            })
            .collect()
    }

    #[test]
    fn full_coverage_keeps_everything() {
        let docs = skewed(100);
        let sk = Skeleton::mine(&docs, 1.0);
        assert_eq!(sk.stats().coverage, 1.0);
        assert!(sk.contains_path("name"));
        assert!(sk.contains_path("rare_field.deep"));
    }

    #[test]
    fn partial_coverage_misses_rare_paths() {
        let docs = skewed(100);
        let sk = Skeleton::mine(&docs, 0.85);
        assert!(sk.stats().coverage >= 0.85);
        assert!(sk.contains_path("id"));
        assert!(sk.contains_path("name"));
        // The 10% structure was dropped: its unique paths are unknown.
        assert!(!sk.contains_path("rare_field"));
        assert!(!sk.contains_path("rare_field.deep"));
    }

    #[test]
    fn skeleton_is_smaller_at_lower_coverage() {
        let docs = skewed(200);
        let full = Skeleton::mine(&docs, 1.0).stats();
        let partial = Skeleton::mine(&docs, 0.8).stats();
        assert!(partial.size < full.size);
        assert!(partial.structures < full.structures);
    }

    #[test]
    fn duplicate_structures_collapse() {
        let docs: Vec<Value> = (0..50).map(|i| json!({"k": (i as i64)})).collect();
        let sk = Skeleton::mine(&docs, 1.0);
        assert_eq!(sk.structures.len(), 1);
        assert_eq!(sk.structures[0].1, 50);
    }

    #[test]
    fn empty_collection() {
        let sk = Skeleton::mine(&[], 0.9);
        assert_eq!(sk.stats().structures, 0);
        assert!(!sk.contains_path("anything"));
    }

    #[test]
    fn github_like_payload_variants() {
        use jsonx_gen::Corpus;
        let docs = Corpus::Github.generate(300);
        let full = Skeleton::mine(&docs, 1.0);
        // All four payload shapes are visible at full coverage.
        assert!(full.contains_path("payload.commits"));
        assert!(full.contains_path("payload.forkee"));
        // ForkEvents are the rarest (10%). Issues payloads fragment into
        // two structures (assignee null vs object), each landing near the
        // fork count, so a 0.8 budget sits on a knife edge; 0.75 drops the
        // forks with margin while keeping pushes.
        let partial = Skeleton::mine(&docs, 0.75);
        assert!(partial.contains_path("payload.commits"));
        assert!(!partial.contains_path("payload.forkee"));
    }
}
