//! Canonical structure trees.

use jsonx_data::{LabelPath, LabelStep, Value};
use std::collections::BTreeSet;
use std::fmt;

/// The *structure* of a JSON value: field names and nesting with values
/// erased. Array elements are merged into a single child describing the
/// union of their structures, and object fields are kept sorted, so two
/// documents with the same shape canonicalise to the same tree.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StructTree {
    /// Any scalar (null/bool/number/string).
    Leaf,
    /// An array; the child is the merged structure of all elements
    /// (`None` for arrays observed only empty).
    Array(Option<Box<StructTree>>),
    /// An object with sorted, named children.
    Object(Vec<(String, StructTree)>),
}

impl StructTree {
    /// Extracts the structure of a value.
    pub fn of(value: &Value) -> StructTree {
        match value {
            Value::Arr(items) => {
                let merged = items
                    .iter()
                    .map(StructTree::of)
                    .reduce(|a, b| a.merge(b))
                    .map(Box::new);
                StructTree::Array(merged)
            }
            Value::Obj(obj) => {
                let mut children: Vec<(String, StructTree)> = obj
                    .iter()
                    .map(|(k, v)| (k.to_string(), StructTree::of(v)))
                    .collect();
                children.sort_by(|(a, _), (b, _)| a.cmp(b));
                StructTree::Object(children)
            }
            _ => StructTree::Leaf,
        }
    }

    /// Structural merge: union of fields, recursive on shared ones.
    /// Mixed shapes collapse to the "wider" structure (object > array >
    /// leaf) — skeletons track structure frequency, not type unions.
    pub fn merge(self, other: StructTree) -> StructTree {
        match (self, other) {
            (StructTree::Leaf, t) | (t, StructTree::Leaf) => t,
            (StructTree::Array(a), StructTree::Array(b)) => match (a, b) {
                (Some(x), Some(y)) => StructTree::Array(Some(Box::new(x.merge(*y)))),
                (Some(x), None) | (None, Some(x)) => StructTree::Array(Some(x)),
                (None, None) => StructTree::Array(None),
            },
            (StructTree::Object(xs), StructTree::Object(ys)) => {
                let mut out: Vec<(String, StructTree)> = Vec::new();
                let mut xi = xs.into_iter().peekable();
                let mut yi = ys.into_iter().peekable();
                loop {
                    match (xi.peek(), yi.peek()) {
                        (Some((xn, _)), Some((yn, _))) => {
                            if xn == yn {
                                let (name, xt) = xi.next().expect("peeked");
                                let (_, yt) = yi.next().expect("peeked");
                                out.push((name, xt.merge(yt)));
                            } else if xn < yn {
                                out.push(xi.next().expect("peeked"));
                            } else {
                                out.push(yi.next().expect("peeked"));
                            }
                        }
                        (Some(_), None) => out.push(xi.next().expect("peeked")),
                        (None, Some(_)) => out.push(yi.next().expect("peeked")),
                        (None, None) => break,
                    }
                }
                StructTree::Object(out)
            }
            (StructTree::Object(xs), StructTree::Array(_))
            | (StructTree::Array(_), StructTree::Object(xs)) => StructTree::Object(xs),
        }
    }

    /// All label paths present in this structure.
    pub fn paths(&self) -> BTreeSet<LabelPath> {
        let mut out = BTreeSet::new();
        self.collect(&mut Vec::new(), &mut out);
        out
    }

    fn collect(&self, prefix: &mut Vec<LabelStep>, out: &mut BTreeSet<LabelPath>) {
        match self {
            StructTree::Leaf => {}
            StructTree::Array(child) => {
                if let Some(child) = child {
                    prefix.push(LabelStep::AnyItem);
                    out.insert(LabelPath(prefix.clone()));
                    child.collect(prefix, out);
                    prefix.pop();
                }
            }
            StructTree::Object(children) => {
                for (name, child) in children {
                    prefix.push(LabelStep::Field(name.clone()));
                    out.insert(LabelPath(prefix.clone()));
                    child.collect(prefix, out);
                    prefix.pop();
                }
            }
        }
    }

    /// Number of nodes (skeleton size metric).
    pub fn size(&self) -> usize {
        match self {
            StructTree::Leaf => 1,
            StructTree::Array(child) => 1 + child.as_ref().map_or(0, |c| c.size()),
            StructTree::Object(children) => {
                1 + children.iter().map(|(_, c)| c.size()).sum::<usize>()
            }
        }
    }
}

impl fmt::Display for StructTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructTree::Leaf => write!(f, "·"),
            StructTree::Array(None) => write!(f, "[]"),
            StructTree::Array(Some(child)) => write!(f, "[{child}]"),
            StructTree::Object(children) => {
                write!(f, "{{")?;
                for (i, (name, child)) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{name}:{child}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    #[test]
    fn values_are_erased() {
        let a = StructTree::of(&json!({"x": 1, "y": "s"}));
        let b = StructTree::of(&json!({"y": null, "x": true}));
        assert_eq!(a, b); // same structure, different values and order
    }

    #[test]
    fn array_elements_merge() {
        let t = StructTree::of(&json!([{"a": 1}, {"b": 2}]));
        assert_eq!(t.to_string(), "[{a:·,b:·}]");
        let empty = StructTree::of(&json!([]));
        assert_eq!(empty.to_string(), "[]");
    }

    #[test]
    fn paths_enumeration() {
        let t = StructTree::of(&json!({"u": {"n": 1}, "tags": ["a"]}));
        let paths: Vec<String> = t.paths().iter().map(|p| p.display()).collect();
        assert_eq!(paths, vec!["tags", "tags[]", "u", "u.n"]);
    }

    #[test]
    fn sizes() {
        assert_eq!(StructTree::of(&json!(1)).size(), 1);
        assert_eq!(StructTree::of(&json!({"a": [1]})).size(), 3);
    }
}
