//! # jsonx-skeleton
//!
//! Skeleton schemas, after Wang et al., *Schema Management for Document
//! Stores* (VLDB 2015), which the tutorial surveys in §2: "a skeleton is a
//! collection of trees describing structures that frequently appear in the
//! objects of a JSON data collection. In particular, the skeleton may
//! totally miss information about paths that can be traversed in some of
//! the JSON objects."
//!
//! The pipeline:
//!
//! 1. every document is canonicalised into its [`StructTree`] (field
//!    names and nesting only — values dropped, array elements merged);
//! 2. distinct structures are counted ([`mine`](Skeleton::mine));
//! 3. the skeleton keeps the most frequent structures until a target
//!    *coverage* of the collection is reached — rare structures (and any
//!    path unique to them) are deliberately dropped.
//!
//! [`Skeleton::contains_path`] answers the workload the original system
//! targets — "does this path exist in (most of) the data?" — and the E8
//! experiment measures the precision/size trade-off as coverage varies.

pub mod mine;
pub mod tree;

pub use mine::{Skeleton, SkeletonStats};
pub use tree::StructTree;
