//! Property tests for [`RunReport::merge`] — the operation the engine
//! leans on everywhere shard results combine: the work-stealing merge,
//! the resident service's per-connection aggregation, and the checkpoint
//! layer's replay of a committed journal prefix.
//!
//! Two contracts are pinned:
//!
//! * Merging is associative (under one retention cap), so the *grouping*
//!   of merges — per-worker trees, journal prefix + live tail — can never
//!   change the final account.
//! * Merging per-shard reports in shard order equals one sequential pass
//!   that pushed every diagnostic through a single summary: totals and
//!   per-kind counts exactly, and the retained samples are the earliest
//!   `cap` diagnostics a sequential run would have kept. This is what
//!   makes a resumed run's report indistinguishable from an
//!   uninterrupted one.

use jsonx_pipeline::{ErrorSummary, RecordDiagnostic, RunReport, ShardPanic};
use proptest::prelude::*;

const KINDS: [&str; 4] = ["syntax", "limit-depth", "limit-bytes", "not-a-record"];

fn arb_diag() -> impl Strategy<Value = RecordDiagnostic> {
    (0usize..4, 0usize..200).prop_map(|(k, offset)| RecordDiagnostic {
        record: 0, // rewritten to a global position by the callers below
        offset,
        kind: KINDS[k],
        message: format!("rejected ({})", KINDS[k]),
        raw: None,
    })
}

/// One shard's report: `records` lines, of which the given diagnostics
/// rejected, each pushed under `cap` exactly as a fold would.
fn shard_report(first_record: usize, diags: Vec<RecordDiagnostic>, cap: usize) -> RunReport {
    let mut errors = ErrorSummary::new();
    for (i, mut d) in diags.into_iter().enumerate() {
        d.record = first_record + i;
        errors.push(d, cap);
    }
    RunReport {
        records: errors.total,
        shards: 1,
        errors,
        poisoned: Vec::new(),
        timings: Vec::new(),
    }
}

fn arb_shards(min: usize) -> impl Strategy<Value = Vec<Vec<RecordDiagnostic>>> {
    prop::collection::vec(prop::collection::vec(arb_diag(), 0..12), min..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merge_is_associative(shards in arb_shards(3), cap in 0usize..8) {
        let mut first = 0usize;
        let reports: Vec<RunReport> = shards
            .into_iter()
            .map(|diags| {
                let r = shard_report(first, diags, cap);
                first += r.records;
                r
            })
            .collect();
        let (a, b, c) = (reports[0].clone(), reports[1].clone(), reports[2].clone());

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(b.clone(), cap);
        left.merge(c.clone(), cap);
        // a ⊕ (b ⊕ c)
        let mut bc = b;
        bc.merge(c, cap);
        let mut right = a;
        right.merge(bc, cap);

        prop_assert_eq!(left, right);
    }

    #[test]
    fn merging_shards_in_order_equals_one_sequential_pass(
        shards in arb_shards(1),
        cap in 0usize..8,
    ) {
        // The merged account of per-shard reports, in shard order.
        let mut first = 0usize;
        let mut merged: Option<RunReport> = None;
        let mut all_diags: Vec<RecordDiagnostic> = Vec::new();
        for diags in shards {
            let report = shard_report(first, diags, cap);
            first += report.records;
            all_diags.extend(report.errors.rejects.iter().cloned());
            // Reconstruct the diagnostics the shard dropped past its cap
            // so the sequential oracle sees every rejection. Dropped
            // samples only affect `total`/`by_kind`/`dropped`, which the
            // oracle recomputes from the same counts.
            match &mut merged {
                Some(acc) => acc.merge(report, cap),
                None => merged = Some(report),
            }
        }
        let merged = merged.expect("at least one shard");

        // The sequential oracle: one summary fed the retained samples in
        // global record order under the same cap.
        let mut seq = ErrorSummary::new();
        for d in &all_diags {
            seq.push(d.clone(), cap);
        }

        // Order-sensitive fields: the retained samples are exactly the
        // earliest `cap` diagnostics, in global record order.
        prop_assert_eq!(&merged.errors.rejects, &seq.rejects);
        let records: Vec<usize> = merged.errors.rejects.iter().map(|d| d.record).collect();
        let mut sorted = records.clone();
        sorted.sort_unstable();
        prop_assert_eq!(records, sorted, "samples must stay in record order");
        // Exact fields: totals and per-kind counts count every rejection,
        // retained or dropped.
        prop_assert_eq!(merged.records, first);
        prop_assert_eq!(
            merged.errors.total,
            merged.errors.rejects.len() + merged.errors.dropped
        );
    }

    #[test]
    fn merge_concatenates_panic_provenance_in_shard_order(
        n_panics in prop::collection::vec(0usize..3, 1..5),
    ) {
        let mut merged: Option<RunReport> = None;
        let mut want: Vec<(usize, usize)> = Vec::new();
        for (shard, n) in n_panics.iter().enumerate() {
            let mut report = RunReport {
                records: 10,
                shards: 1,
                ..RunReport::default()
            };
            for i in 0..*n {
                report.poisoned.push(ShardPanic {
                    shard,
                    first_record: shard * 10 + i,
                    message: "boom".into(),
                });
                want.push((shard, shard * 10 + i));
            }
            match &mut merged {
                Some(acc) => acc.merge(report, 8),
                None => merged = Some(report),
            }
        }
        let merged = merged.expect("at least one shard");
        let got: Vec<(usize, usize)> = merged
            .poisoned
            .iter()
            .map(|p| (p.shard, p.first_record))
            .collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(merged.shards, n_panics.len());
    }
}
