//! # jsonx-pipeline
//!
//! The generic sharded execution engine behind every parallel workload in
//! the workspace. §4.1's inference line is built on a per-shard fold plus a
//! commutative, associative merge — exactly the algebra streaming
//! validation (PR 2) and schema-driven translation (§5) need as well.
//! Before this crate, each of those paths hand-rolled the same
//! shard → scoped-spawn → ordered-merge machinery; now they are thin
//! [`ShardFold`] adapters over one engine.
//!
//! The pieces:
//!
//! * [`ShardFold`] — the fold/merge contract: per-worker [`State`]
//!   (`ShardFold::State`) fed one item at a time, finished into an
//!   `Out`, and `Out`s fused **in shard order**. When `merge` is
//!   commutative and associative the sharded result is identical to the
//!   sequential fold for every worker count — the property all adapter
//!   suites pin.
//! * [`run_lines`] — NDJSON execution: newline-boundary sharding
//!   ([`shard_lines`], which counts lines in the same scan that finds the
//!   boundaries), scoped worker threads, shard-order merge.
//! * [`run_slice`] — the same engine over an in-memory `&[T]` (the DOM
//!   inference path), chunked by item count instead of bytes.
//! * [`merge_line_results`] — first-error-line selection for folds whose
//!   `Out` is `Result<T, (line, E)>`: the lowest failing line wins,
//!   matching what a sequential scan would have reported first.
//! * [`PipelineOptions`] / [`SliceOptions`] — the shared worker-count and
//!   sequential-fallback knobs. Two thin structs remain only because the
//!   byte-sharded and item-sharded engines measure "too small to shard"
//!   in different units (bytes vs documents); the worker-resolution logic
//!   ([`resolve_workers`]) and the fallback decisions live here once.

//! * [`run_lines_caught`] / [`run_slice_caught`] — the panic-isolated
//!   engine underneath: each shard's fold runs under `catch_unwind`, and a
//!   [`RunOutcome`] carries the surviving shards' fusion next to
//!   [`ShardPanic`] provenance for the poisoned ones. [`run_lines`] /
//!   [`run_slice`] are their fail-fast faces, returning `Err` on the
//!   first poisoned shard.
//! * [`ErrorPolicy`] / [`ErrorSummary`] / [`RunReport`] — the
//!   fault-tolerance vocabulary tolerant stages fold per shard and merge
//!   in shard order, so dirty collections degrade into an account of
//!   rejected records instead of a dead run.
//! * [`ChunkSource`] / [`run_lines_stealing`] / [`run_reader_caught`] —
//!   out-of-core chunked input and work-stealing dispatch: the input
//!   becomes a queue of sequence-numbered newline-aligned chunks (an
//!   atomic cursor over a pre-split in-memory slice, [`SliceChunks`], or
//!   a bounded ring of reusable buffers over any `BufRead`,
//!   [`ReaderChunks`]) claimed by a fixed worker pool, with per-chunk
//!   results extracted via [`ShardFold::take`] and fused in sequence
//!   order — identical outcomes to static sharding, without stragglers
//!   idling workers and without materializing the corpus.

mod checkpoint;
mod chunk;
mod engine;
mod options;
mod report;
mod shard;

pub use checkpoint::{
    read_journal, CheckpointSink, ChunkJournal, ChunkMeta, JournalRead, JournalWriter,
};
pub use chunk::{
    Chunk, ChunkError, ChunkOptions, ChunkSource, ReaderChunks, SliceChunks, DEFAULT_CHUNK_BYTES,
};
pub use engine::{
    merge_line_results, panic_message, run_lines, run_lines_caught, run_lines_static_caught,
    run_lines_stealing, run_reader_caught, run_slice, run_slice_caught, run_source_caught,
    run_source_controlled, RunControl, RunOutcome, ShardFold,
};
pub use options::{resolve_workers, PipelineOptions, SliceOptions};
pub use report::{
    ErrorPolicy, ErrorSummary, RecordDiagnostic, RunReport, ShardPanic, WorkerTiming,
    DIAGNOSTIC_SAMPLES,
};
pub use shard::{chunk_lines, shard_lines, Shard};
