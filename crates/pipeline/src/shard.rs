//! Newline-boundary sharding and chunking.

/// One contiguous newline-aligned piece of an NDJSON input — a worker's
/// static shard, or one stealable chunk (see [`crate::chunk`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard<'a> {
    /// Zero-based index of the shard's first line in the whole input.
    pub first_line: usize,
    /// Number of newline bytes in `text` (a final line without a trailing
    /// newline is not counted; workers enumerate lines themselves).
    pub lines: usize,
    /// The shard's text, ending just after a newline except possibly for
    /// the last shard.
    pub text: &'a str,
}

/// Splits `input` into contiguous pieces of roughly `target_bytes` each,
/// every boundary sitting just after a newline so no document spans two
/// pieces. A line longer than the target yields one oversized piece.
///
/// Line counts are computed in the same scan that finds the boundaries:
/// each [`Shard`] carries its `first_line` offset and newline count, so
/// callers never rescan shard bytes to recover line numbering.
pub fn chunk_lines(input: &str, target_bytes: usize) -> Vec<Shard<'_>> {
    let bytes = input.as_bytes();
    let target = target_bytes.max(1);
    let mut shards = Vec::with_capacity(input.len().div_ceil(target).clamp(1, 1024));
    let mut start = 0usize;
    let mut first_line = 0usize;
    let mut lines = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'\n' {
            continue;
        }
        lines += 1;
        // A piece closes at the first newline at or past its byte target.
        if i + 1 >= start + target {
            shards.push(Shard {
                first_line,
                lines,
                text: &input[start..i + 1],
            });
            first_line += lines;
            lines = 0;
            start = i + 1;
        }
    }
    if start < bytes.len() {
        shards.push(Shard {
            first_line,
            lines,
            text: &input[start..],
        });
    }
    shards
}

/// Splits `input` into up to `max_shards` contiguous shards whose
/// boundaries sit just after a newline — the static pre-split used by the
/// one-shard-per-worker dispatch path. Same scan as [`chunk_lines`], with
/// the byte target derived from the shard budget.
pub fn shard_lines(input: &str, max_shards: usize) -> Vec<Shard<'_>> {
    chunk_lines(input, input.len().div_ceil(max_shards.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(n: usize) -> String {
        (0..n).map(|i| format!("{{\"id\": {i}}}\n")).collect()
    }

    #[test]
    fn shards_cover_input_without_splitting_lines() {
        for input in [
            corpus(100),
            corpus(1),
            "no trailing newline".to_string(),
            "a\n\n\nb".to_string(),
            String::new(),
        ] {
            for workers in [1, 2, 3, 7, 16] {
                let shards = shard_lines(&input, workers);
                let rejoined: String = shards.iter().map(|s| s.text).collect();
                assert_eq!(rejoined, input, "workers={workers}");
                assert!(shards.len() <= workers.max(1) || input.is_empty());
                let mut expected_line = 0;
                for (i, shard) in shards.iter().enumerate() {
                    assert_eq!(shard.first_line, expected_line);
                    assert_eq!(
                        shard.lines,
                        shard.text.bytes().filter(|&b| b == b'\n').count(),
                        "single-scan line count must match a recount"
                    );
                    assert!(shard.text.ends_with('\n') || i == shards.len() - 1);
                    expected_line += shard.lines;
                }
            }
        }
    }

    #[test]
    fn empty_input_has_no_shards() {
        assert!(shard_lines("", 4).is_empty());
    }

    #[test]
    fn single_line_input_is_one_shard() {
        let shards = shard_lines("{\"a\": 1}\n", 8);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].first_line, 0);
        assert_eq!(shards[0].lines, 1);
    }

    #[test]
    fn chunk_lines_honors_byte_target() {
        let input = corpus(1000);
        let chunks = chunk_lines(&input, 64);
        assert!(chunks.len() > 10, "small target must produce many chunks");
        let rejoined: String = chunks.iter().map(|s| s.text).collect();
        assert_eq!(rejoined, input);
        for chunk in &chunks[..chunks.len() - 1] {
            assert!(chunk.text.len() >= 64, "chunks close at or past the target");
        }
    }
}
