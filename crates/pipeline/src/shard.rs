//! Newline-boundary sharding.

/// One contiguous shard of an NDJSON input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard<'a> {
    /// Zero-based index of the shard's first line in the whole input.
    pub first_line: usize,
    /// Number of newline bytes in `text` (a final line without a trailing
    /// newline is not counted; workers enumerate lines themselves).
    pub lines: usize,
    /// The shard's text, ending just after a newline except possibly for
    /// the last shard.
    pub text: &'a str,
}

/// Splits `input` into up to `max_shards` contiguous shards whose
/// boundaries sit just after a newline, so no document spans two shards.
///
/// Line counts are computed in the same scan that finds the boundaries:
/// each [`Shard`] carries its `first_line` offset and newline count, so
/// callers never rescan shard bytes to recover line numbering.
pub fn shard_lines(input: &str, max_shards: usize) -> Vec<Shard<'_>> {
    let bytes = input.as_bytes();
    let target = input.len().div_ceil(max_shards.max(1)).max(1);
    let mut shards = Vec::with_capacity(max_shards.min(bytes.len()).max(1));
    let mut start = 0usize;
    let mut first_line = 0usize;
    let mut lines = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'\n' {
            continue;
        }
        lines += 1;
        // A shard closes at the first newline at or past its byte target.
        if i + 1 >= start + target {
            shards.push(Shard {
                first_line,
                lines,
                text: &input[start..i + 1],
            });
            first_line += lines;
            lines = 0;
            start = i + 1;
        }
    }
    if start < bytes.len() {
        shards.push(Shard {
            first_line,
            lines,
            text: &input[start..],
        });
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(n: usize) -> String {
        (0..n).map(|i| format!("{{\"id\": {i}}}\n")).collect()
    }

    #[test]
    fn shards_cover_input_without_splitting_lines() {
        for input in [
            corpus(100),
            corpus(1),
            "no trailing newline".to_string(),
            "a\n\n\nb".to_string(),
            String::new(),
        ] {
            for workers in [1, 2, 3, 7, 16] {
                let shards = shard_lines(&input, workers);
                let rejoined: String = shards.iter().map(|s| s.text).collect();
                assert_eq!(rejoined, input, "workers={workers}");
                assert!(shards.len() <= workers.max(1) || input.is_empty());
                let mut expected_line = 0;
                for (i, shard) in shards.iter().enumerate() {
                    assert_eq!(shard.first_line, expected_line);
                    assert_eq!(
                        shard.lines,
                        shard.text.bytes().filter(|&b| b == b'\n').count(),
                        "single-scan line count must match a recount"
                    );
                    assert!(shard.text.ends_with('\n') || i == shards.len() - 1);
                    expected_line += shard.lines;
                }
            }
        }
    }

    #[test]
    fn empty_input_has_no_shards() {
        assert!(shard_lines("", 4).is_empty());
    }

    #[test]
    fn single_line_input_is_one_shard() {
        let shards = shard_lines("{\"a\": 1}\n", 8);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].first_line, 0);
        assert_eq!(shards[0].lines, 1);
    }
}
