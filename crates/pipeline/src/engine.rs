//! The fold/merge execution engine.

use crate::options::{PipelineOptions, SliceOptions};
use crate::shard::shard_lines;

/// A sharded fold: the contract every pipeline stage implements.
///
/// The engine feeds one `Item` at a time (with its global index) into a
/// per-worker `State`, finishes each worker's state into an `Out`, and
/// fuses the `Out`s **in shard order** with [`merge`](Self::merge). When
/// `merge` is commutative and associative (or when `Out` is
/// order-sensitive but concatenation-shaped, like per-line verdicts), the
/// sharded result is identical to the sequential fold for every worker
/// count.
///
/// The fold value itself is shared immutably across workers (`Sync`), so
/// it is the right home for per-stage configuration: an equivalence, a
/// compiled schema, a column layout.
pub trait ShardFold<Item: ?Sized>: Sync {
    /// Per-worker scratch state (typers, validators, column builders).
    type State;
    /// Per-shard result, fused across shards.
    type Out: Send;

    /// Fresh state for one worker.
    fn init(&self) -> Self::State;
    /// Folds one item (an NDJSON line or a slice element) into the state.
    /// `index` is the item's global position (line number / document
    /// index); blank-line skipping is the fold's own business.
    fn feed(&self, state: &mut Self::State, item: &Item, index: usize);
    /// Converts a worker's final state into the shard result.
    fn finish(&self, state: Self::State) -> Self::Out;
    /// Fuses two shard results, left shard first.
    fn merge(&self, left: Self::Out, right: Self::Out) -> Self::Out;
}

/// Runs `fold` over the lines of `input`, sharded at newline boundaries.
///
/// Every line — including blank ones — is fed with its global line index,
/// exactly as a sequential `input.lines().enumerate()` would produce it.
/// Inputs below the options' shard threshold (or a single worker) run
/// sequentially on the caller's thread; results are identical either way.
pub fn run_lines<F: ShardFold<str>>(input: &str, fold: &F, opts: PipelineOptions) -> F::Out {
    if opts.sequential(input.len()) {
        let mut state = fold.init();
        for (i, line) in input.lines().enumerate() {
            fold.feed(&mut state, line, i);
        }
        return fold.finish(state);
    }
    let shards = shard_lines(input, opts.effective_workers());
    let outs: Vec<F::Out> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|&shard| {
                scope.spawn(move || {
                    let mut state = fold.init();
                    for (i, line) in shard.text.lines().enumerate() {
                        fold.feed(&mut state, line, shard.first_line + i);
                    }
                    fold.finish(state)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pipeline worker panicked"))
            .collect()
    });
    fuse_outs(fold, outs)
}

/// Runs `fold` over `items`, sharded into contiguous chunks.
///
/// The chunking mirrors the historical DOM-inference path: chunks of
/// `ceil(len / workers)` items, never smaller than `min_chunk`.
pub fn run_slice<T: Sync, F: ShardFold<T>>(items: &[T], fold: &F, opts: SliceOptions) -> F::Out {
    if opts.sequential(items.len()) {
        let mut state = fold.init();
        for (i, item) in items.iter().enumerate() {
            fold.feed(&mut state, item, i);
        }
        return fold.finish(state);
    }
    let chunk = items
        .len()
        .div_ceil(opts.effective_workers())
        .max(opts.min_chunk.max(1));
    let outs: Vec<F::Out> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(part_no, part)| {
                scope.spawn(move || {
                    let mut state = fold.init();
                    for (i, item) in part.iter().enumerate() {
                        fold.feed(&mut state, item, part_no * chunk + i);
                    }
                    fold.finish(state)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pipeline worker panicked"))
            .collect()
    });
    fuse_outs(fold, outs)
}

/// Shard-order fusion; an empty shard list folds an empty state so the
/// engine returns the same value the sequential path gives empty input.
fn fuse_outs<Item: ?Sized, F: ShardFold<Item>>(fold: &F, outs: Vec<F::Out>) -> F::Out {
    outs.into_iter()
        .reduce(|a, b| fold.merge(a, b))
        .unwrap_or_else(|| fold.finish(fold.init()))
}

/// First-error-line selection for folds whose shard result is
/// `Result<T, (line, E)>`: successful shards fuse with `merge_ok`, and
/// among failing shards the **lowest line number** wins — the error a
/// sequential scan would have hit first.
pub fn merge_line_results<T, E>(
    left: Result<T, (usize, E)>,
    right: Result<T, (usize, E)>,
    merge_ok: impl FnOnce(T, T) -> T,
) -> Result<T, (usize, E)> {
    match (left, right) {
        (Ok(a), Ok(b)) => Ok(merge_ok(a, b)),
        (Err(a), Err(b)) => Err(if b.0 < a.0 { b } else { a }),
        (Err(a), Ok(_)) => Err(a),
        (Ok(_), Err(b)) => Err(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy fold: sum of parsed integers, first bad line as error.
    struct SumFold;

    impl ShardFold<str> for SumFold {
        type State = Result<i64, (usize, String)>;
        type Out = Result<i64, (usize, String)>;

        fn init(&self) -> Self::State {
            Ok(0)
        }

        fn feed(&self, state: &mut Self::State, line: &str, index: usize) {
            let Ok(acc) = state else { return };
            if line.trim().is_empty() {
                return;
            }
            match line.trim().parse::<i64>() {
                Ok(n) => *acc += n,
                Err(e) => *state = Err((index, e.to_string())),
            }
        }

        fn finish(&self, state: Self::State) -> Self::Out {
            state
        }

        fn merge(&self, left: Self::Out, right: Self::Out) -> Self::Out {
            merge_line_results(left, right, |a, b| a + b)
        }
    }

    fn opts(workers: usize) -> PipelineOptions {
        PipelineOptions {
            workers,
            min_shard_bytes: 4,
        }
    }

    #[test]
    fn sharded_sum_equals_sequential_at_every_worker_count() {
        let input: String = (1..=200).map(|i| format!("{i}\n")).collect();
        let expected = run_lines(&input, &SumFold, opts(1));
        assert_eq!(expected, Ok((1..=200i64).sum()));
        for workers in [2, 3, 8, 16] {
            assert_eq!(run_lines(&input, &SumFold, opts(workers)), expected);
        }
    }

    #[test]
    fn first_error_line_wins_across_shards() {
        let mut lines: Vec<String> = (1..=100).map(|i| i.to_string()).collect();
        lines[90] = "late-bad".into();
        lines[7] = "early-bad".into();
        let input = lines.join("\n");
        for workers in [1, 2, 4, 8] {
            let out = run_lines(&input, &SumFold, opts(workers));
            assert_eq!(out.as_ref().unwrap_err().0, 7, "workers={workers}");
        }
    }

    #[test]
    fn blank_lines_and_missing_trailing_newline() {
        let input = "1\n\n2\n\n3"; // blank lines, no trailing newline
        for workers in [1, 2, 4] {
            assert_eq!(run_lines(input, &SumFold, opts(workers)), Ok(6));
        }
    }

    #[test]
    fn empty_input_yields_unit() {
        assert_eq!(run_lines("", &SumFold, opts(4)), Ok(0));
    }

    /// Slice engine: concatenation-shaped fold keeps input order.
    struct CollectFold;

    impl ShardFold<i32> for CollectFold {
        type State = Vec<(usize, i32)>;
        type Out = Vec<(usize, i32)>;

        fn init(&self) -> Self::State {
            Vec::new()
        }

        fn feed(&self, state: &mut Self::State, item: &i32, index: usize) {
            state.push((index, *item));
        }

        fn finish(&self, state: Self::State) -> Self::Out {
            state
        }

        fn merge(&self, mut left: Self::Out, right: Self::Out) -> Self::Out {
            left.extend(right);
            left
        }
    }

    #[test]
    fn slice_engine_preserves_order_and_indices() {
        let items: Vec<i32> = (0..500).collect();
        let expected: Vec<(usize, i32)> = items.iter().map(|&v| (v as usize, v)).collect();
        for workers in [1, 2, 3, 8] {
            let out = run_slice(
                &items,
                &CollectFold,
                SliceOptions {
                    workers,
                    min_chunk: 16,
                },
            );
            assert_eq!(out, expected, "workers={workers}");
        }
    }

    #[test]
    fn slice_engine_small_inputs_fall_back() {
        let items = [1, 2, 3];
        let out = run_slice(&items, &CollectFold, SliceOptions::default());
        assert_eq!(out, vec![(0, 1), (1, 2), (2, 3)]);
    }
}
