//! The fold/merge execution engine.
//!
//! Two dispatch strategies share the same [`ShardFold`] contract and the
//! same sequence-ordered merge:
//!
//! - **Static sharding** ([`run_lines_static_caught`]): the input is
//!   pre-split into one shard per worker and each worker folds exactly
//!   one shard. Simple, but a straggler shard idles every other worker.
//! - **Work-stealing chunk dispatch** ([`run_lines_caught`],
//!   [`run_reader_caught`], [`run_source_caught`]): the input becomes a
//!   queue of sequence-numbered newline-aligned chunks
//!   ([`ChunkSource`]) and a fixed pool of workers claims chunks until
//!   the queue drains, so fast workers steal the share a slow worker
//!   would have been stuck with. Per-chunk results are extracted with
//!   [`ShardFold::take`] (worker state survives across the chunks a
//!   worker claims) and fused **in chunk-sequence order**, which is
//!   byte-for-byte the static shard order — FailFast first-error-line
//!   selection and `RunReport` merging are unchanged.
//!
//! ## Record framing contract
//!
//! The engine is deliberately **format-blind**: at `ShardFold<str>` its
//! only syntactic assumption is that *one record is one line* — chunk
//! boundaries snap to `\n` and each line is fed with its global index
//! (std `lines()` framing, so a trailing `\r` is stripped and CRLF
//! sources work unchanged). What the bytes of a line *mean* is decided
//! entirely above this crate, by a `RecordDecoder` implementation
//! (`jsonx-syntax`): NDJSON, CSV rows, or any future line-framed source
//! run on this same engine — stealing, fault policies, out-of-core
//! chunking included — without it knowing the difference. Formats whose
//! records may span lines need their own `ChunkSource` framing; they are
//! out of scope for the line-based entry points.

use crate::checkpoint::{CheckpointSink, ChunkMeta};
use crate::chunk::{ChunkError, ChunkOptions, ChunkSource, ReaderChunks, SliceChunks};
use crate::chunk::{CHUNKS_PER_WORKER, DEFAULT_CHUNK_BYTES};
use crate::options::{PipelineOptions, SliceOptions};
use crate::report::{ShardPanic, WorkerTiming};
use crate::shard::shard_lines;
use std::borrow::Cow;
use std::io::BufRead;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A sharded fold: the contract every pipeline stage implements.
///
/// The engine feeds one `Item` at a time (with its global index) into a
/// per-worker `State`, finishes each worker's state into an `Out`, and
/// fuses the `Out`s **in shard order** with [`merge`](Self::merge). When
/// `merge` is commutative and associative (or when `Out` is
/// order-sensitive but concatenation-shaped, like per-line verdicts), the
/// sharded result is identical to the sequential fold for every worker
/// count.
///
/// The fold value itself is shared immutably across workers (`Sync`), so
/// it is the right home for per-stage configuration: an equivalence, a
/// compiled schema, a column layout.
pub trait ShardFold<Item: ?Sized>: Sync {
    /// Per-worker scratch state (typers, validators, column builders).
    type State;
    /// Per-shard result, fused across shards.
    type Out: Send;

    /// Fresh state for one worker.
    fn init(&self) -> Self::State;
    /// Folds one item (an NDJSON line or a slice element) into the state.
    /// `index` is the item's global position (line number / document
    /// index); blank-line skipping is the fold's own business.
    fn feed(&self, state: &mut Self::State, item: &Item, index: usize);
    /// Converts a worker's final state into the shard result.
    fn finish(&self, state: Self::State) -> Self::Out;
    /// Fuses two shard results, left shard first.
    fn merge(&self, left: Self::Out, right: Self::Out) -> Self::Out;

    /// Extracts the current chunk's result from a worker state **without
    /// consuming the state**, leaving it ready for the worker's next
    /// claimed chunk. The work-stealing dispatcher calls this once per
    /// chunk so expensive per-worker machinery (interners, validators,
    /// column builders) survives across the chunks a worker claims.
    ///
    /// The default resets the whole state to [`init`](Self::init) and
    /// finishes the old one — always correct. Override it when part of
    /// the state is reusable machinery that should not be rebuilt per
    /// chunk; the override must leave the state as if freshly
    /// initialised with respect to *output* (the taken `Out` plus a
    /// subsequent `take` must equal two separate folds).
    fn take(&self, state: &mut Self::State) -> Self::Out {
        self.finish(std::mem::replace(state, self.init()))
    }
}

/// What a caught (panic-isolated) run produced: the fused output of the
/// surviving shards plus provenance for any shard whose worker panicked.
///
/// A poisoned shard's partial state is lost — its records simply do not
/// contribute to `out` — but the remaining shards still merge in shard
/// order, so the caller can decide whether a degraded result is usable.
#[derive(Debug)]
pub struct RunOutcome<Out> {
    /// The shard-order fusion of every shard that completed.
    pub out: Out,
    /// How many work units (static shards or claimed chunks) the input
    /// was split into (1 on the sequential path).
    pub shards: usize,
    /// Shards whose fold panicked, in shard order.
    pub poisoned: Vec<ShardPanic>,
    /// Per-worker dispatch accounting, populated only when the run asked
    /// for timing ([`ChunkOptions::timing`]); empty otherwise.
    pub timings: Vec<WorkerTiming>,
    /// Whether a graceful-stop latch ([`RunControl::stop`]) was observed
    /// during the run: workers stopped claiming chunks and drained their
    /// in-flight work, so `out` covers a committed prefix of the input,
    /// not all of it. Always `false` on uncontrolled runs.
    pub interrupted: bool,
}

/// External control for a dispatched run: an optional per-chunk commit
/// hook and an optional graceful-stop latch. The default (no sink, no
/// latch) is the plain [`run_source_caught`] behaviour.
pub struct RunControl<'a, Out> {
    /// Called once per successfully folded chunk with its [`ChunkMeta`]
    /// and result, before the result is fused (see [`CheckpointSink`]).
    pub sink: Option<&'a dyn CheckpointSink<Out>>,
    /// When set to `true` (by a signal handler, a crashpoint, an
    /// operator), workers stop claiming new chunks, finish what they
    /// hold, and the outcome reports `interrupted`.
    pub stop: Option<&'a AtomicBool>,
}

impl<Out> Default for RunControl<'_, Out> {
    fn default() -> Self {
        RunControl {
            sink: None,
            stop: None,
        }
    }
}

impl<Out> Clone for RunControl<'_, Out> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<Out> Copy for RunControl<'_, Out> {}

/// One sequence-numbered chunk result: the taken output, or the panic
/// that poisoned the chunk.
type SeqResult<Out> = (usize, Result<Out, ShardPanic>);

/// Extracts the human-readable payload of a caught panic.
///
/// Public so other `catch_unwind` layers (e.g. the resident service's
/// per-request isolation) report panics in the same shape the engine does.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs the whole fold on the caller's thread as one panic-isolated
/// shard — the tiny-input / single-worker path.
fn run_lines_sequential<F: ShardFold<str>>(input: &str, fold: &F) -> RunOutcome<F::Out> {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        let mut state = fold.init();
        for (i, line) in input.lines().enumerate() {
            fold.feed(&mut state, line, i);
        }
        fold.finish(state)
    }));
    match caught {
        Ok(out) => RunOutcome {
            out,
            shards: 1,
            poisoned: Vec::new(),
            timings: Vec::new(),
            interrupted: false,
        },
        Err(payload) => RunOutcome {
            out: fuse_outs(fold, Vec::new()),
            shards: 1,
            poisoned: vec![ShardPanic {
                shard: 0,
                first_record: 0,
                message: panic_message(payload.as_ref()),
            }],
            timings: Vec::new(),
            interrupted: false,
        },
    }
}

/// Runs `fold` over the lines of `input`, isolating worker panics.
///
/// Every line — including blank ones — is fed with its global line index,
/// exactly as a sequential `input.lines().enumerate()` would produce it.
/// Inputs below the options' shard threshold (or a single worker) run
/// sequentially on the caller's thread; results are identical either way.
/// Parallel inputs dispatch through the work-stealing chunk queue (see
/// [`run_lines_stealing`]) with automatic chunk sizing; the fused result
/// is identical to the historical static-shard dispatch
/// ([`run_lines_static_caught`]) because chunks merge in sequence order.
/// Each chunk's fold (the sequential path counts as one chunk) runs under
/// `catch_unwind`: a panic poisons only that chunk, and the outcome
/// records it instead of unwinding the caller.
pub fn run_lines_caught<F: ShardFold<str>>(
    input: &str,
    fold: &F,
    opts: PipelineOptions,
) -> RunOutcome<F::Out> {
    run_lines_stealing(input, fold, opts, ChunkOptions::default())
}

/// Work-stealing dispatch over an in-memory input: the input is pre-split
/// into newline-aligned chunks (roughly [`ChunkOptions::chunk_bytes`]
/// each, or an automatic size targeting [`CHUNKS_PER_WORKER`] chunks per
/// worker) and a fixed worker pool claims chunks through a shared atomic
/// cursor until the queue drains. Results fuse in chunk-sequence order,
/// so the outcome equals [`run_lines_static_caught`] for every worker
/// count and chunk size.
///
/// Sequential fallback: tiny inputs and single-worker runs fold on the
/// caller's thread exactly like [`run_lines_caught`] — unless timing was
/// requested, in which case the run always dispatches through the chunk
/// queue so the timing account exists.
pub fn run_lines_stealing<F: ShardFold<str>>(
    input: &str,
    fold: &F,
    opts: PipelineOptions,
    chunk: ChunkOptions,
) -> RunOutcome<F::Out> {
    if !chunk.timing && opts.should_run_sequential(input.len()) {
        return run_lines_sequential(input, fold);
    }
    let workers = opts.effective_workers().max(1);
    let target = if chunk.chunk_bytes > 0 {
        chunk.chunk_bytes
    } else {
        auto_chunk_bytes(input.len(), workers, opts.min_shard_bytes)
    };
    let source = SliceChunks::new(input, target);
    run_source_caught(&source, fold, workers, chunk.timing)
        .unwrap_or_else(|_| unreachable!("in-memory chunk sources cannot fail"))
}

/// Out-of-core dispatch: reads NDJSON incrementally from any [`BufRead`]
/// through a bounded ring of chunk buffers ([`ReaderChunks`]), so peak
/// resident memory is `O(workers × chunk_bytes)` regardless of input
/// size. Same worker pool, sequence-ordered merge, and panic isolation
/// as [`run_lines_stealing`]; returns `Err` on I/O failure or non-UTF-8
/// input (partial results are discarded — an unreadable input has no
/// trustworthy line numbering).
pub fn run_reader_caught<R: BufRead + Send, F: ShardFold<str>>(
    reader: R,
    fold: &F,
    opts: PipelineOptions,
    chunk: ChunkOptions,
) -> Result<RunOutcome<F::Out>, ChunkError> {
    let workers = opts.effective_workers().max(1);
    let target = if chunk.chunk_bytes > 0 {
        chunk.chunk_bytes
    } else {
        DEFAULT_CHUNK_BYTES
    };
    let ring = if chunk.ring > 0 { chunk.ring } else { workers };
    let source = ReaderChunks::new(reader, target, ring);
    run_source_caught(&source, fold, workers, chunk.timing)
}

/// Automatic chunk sizing for in-memory inputs: aim for
/// [`CHUNKS_PER_WORKER`] chunks per worker (fine-grained enough that a
/// straggler redistributes), floored at the options' shard threshold so
/// chunks stay worth their dispatch overhead, capped at
/// [`DEFAULT_CHUNK_BYTES`].
fn auto_chunk_bytes(input_len: usize, workers: usize, min_shard_bytes: usize) -> usize {
    let floor = min_shard_bytes.max(1);
    let cap = DEFAULT_CHUNK_BYTES.max(floor);
    input_len
        .div_ceil(workers.saturating_mul(CHUNKS_PER_WORKER).max(1))
        .clamp(floor, cap)
}

/// The work-stealing dispatcher core: a fixed pool of `workers` threads
/// claims sequence-numbered chunks from `source` until exhaustion, folds
/// each chunk under `catch_unwind`, and fuses every chunk's
/// [`ShardFold::take`]n result in sequence order. A panic poisons only
/// the chunk being folded (the worker discards its state and re-inits on
/// its next claim); a source error aborts the run.
pub fn run_source_caught<S: ChunkSource, F: ShardFold<str>>(
    source: &S,
    fold: &F,
    workers: usize,
    timing: bool,
) -> Result<RunOutcome<F::Out>, ChunkError> {
    run_source_controlled(source, fold, workers, timing, RunControl::default())
}

/// [`run_source_caught`] with external [`RunControl`]: the same
/// work-stealing dispatch, plus a per-chunk commit hook (fired on the
/// claiming worker, after the chunk's fold succeeds and before its
/// result is fused) and a graceful-stop latch checked before every
/// claim. When the latch trips, workers finish the chunks they hold and
/// stop; the outcome carries `interrupted: true` and the fused prefix of
/// results — which, combined with a [`CheckpointSink`] journal, is what
/// makes an interrupted run resumable.
pub fn run_source_controlled<S: ChunkSource, F: ShardFold<str>>(
    source: &S,
    fold: &F,
    workers: usize,
    timing: bool,
    control: RunControl<'_, F::Out>,
) -> Result<RunOutcome<F::Out>, ChunkError> {
    let workers = workers.max(1);
    let failure: Mutex<Option<ChunkError>> = Mutex::new(None);
    let per_worker: Vec<(Vec<SeqResult<F::Out>>, WorkerTiming)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let failure = &failure;
                scope.spawn(move || {
                    let mut state: Option<F::State> = None;
                    let mut results = Vec::new();
                    let mut acct = WorkerTiming {
                        worker,
                        ..WorkerTiming::default()
                    };
                    loop {
                        if control.stop.is_some_and(|s| s.load(Ordering::SeqCst)) {
                            break;
                        }
                        let chunk = match source.next_chunk() {
                            Ok(Some(chunk)) => chunk,
                            Ok(None) => break,
                            Err(e) => {
                                failure.lock().unwrap().get_or_insert(e);
                                break;
                            }
                        };
                        let seq = chunk.seq;
                        let first_line = chunk.first_line;
                        let started = timing.then(Instant::now);
                        let caught = catch_unwind(AssertUnwindSafe(|| {
                            let st = state.get_or_insert_with(|| fold.init());
                            let mut lines = 0usize;
                            for (i, line) in chunk.text.lines().enumerate() {
                                fold.feed(st, line, first_line + i);
                                lines += 1;
                            }
                            (fold.take(st), lines)
                        }));
                        match caught {
                            Ok((out, lines)) => {
                                if let Some(sink) = control.sink {
                                    sink.chunk_done(
                                        &ChunkMeta {
                                            seq,
                                            first_line,
                                            lines,
                                            bytes: chunk.text.len(),
                                        },
                                        &out,
                                    );
                                }
                                acct.records += lines;
                                results.push((seq, Ok(out)));
                            }
                            Err(payload) => {
                                // The state saw a partial chunk; drop
                                // it so the next claim starts fresh.
                                state = None;
                                results.push((
                                    seq,
                                    Err(ShardPanic {
                                        shard: seq,
                                        first_record: first_line,
                                        message: panic_message(payload.as_ref()),
                                    }),
                                ));
                            }
                        }
                        if let Some(t0) = started {
                            acct.busy += t0.elapsed();
                        }
                        acct.chunks += 1;
                        acct.bytes += chunk.text.len();
                        if let Cow::Owned(buf) = chunk.text {
                            source.recycle(buf);
                        }
                    }
                    (results, acct)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("dispatcher worker panicked outside a fold"))
            .collect()
    });
    if let Some(err) = failure.into_inner().unwrap() {
        return Err(err);
    }
    let mut results: Vec<SeqResult<F::Out>> = Vec::new();
    let mut timings: Vec<WorkerTiming> = Vec::with_capacity(if timing { workers } else { 0 });
    for (worker_results, acct) in per_worker {
        results.extend(worker_results);
        if timing {
            timings.push(acct);
        }
    }
    // Sequence order *is* shard order: fuse exactly as the static path.
    results.sort_unstable_by_key(|(seq, _)| *seq);
    let chunk_count = results.len();
    let fair_share = chunk_count.div_ceil(workers);
    for acct in &mut timings {
        acct.steals = acct.chunks.saturating_sub(fair_share);
    }
    let mut outcome = collect_outcome(
        fold,
        chunk_count.max(1),
        results.into_iter().map(|(_, r)| r).collect(),
    );
    outcome.timings = timings;
    outcome.interrupted = control.stop.is_some_and(|s| s.load(Ordering::SeqCst));
    Ok(outcome)
}

/// The historical static-shard dispatch: the input is pre-split into one
/// shard per worker and each worker folds exactly one shard on its own
/// scoped thread. Kept (a) as the baseline the work-stealing dispatcher
/// is benchmarked and differentially tested against, and (b) for callers
/// that specifically want the one-thread-per-shard shape.
pub fn run_lines_static_caught<F: ShardFold<str>>(
    input: &str,
    fold: &F,
    opts: PipelineOptions,
) -> RunOutcome<F::Out> {
    if opts.should_run_sequential(input.len()) {
        return run_lines_sequential(input, fold);
    }
    let shards = shard_lines(input, opts.effective_workers());
    let shard_count = shards.len();
    let results: Vec<Result<F::Out, ShardPanic>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(shard_no, &shard)| {
                let handle = scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        let mut state = fold.init();
                        for (i, line) in shard.text.lines().enumerate() {
                            fold.feed(&mut state, line, shard.first_line + i);
                        }
                        fold.finish(state)
                    }))
                });
                (shard_no, shard.first_line, handle)
            })
            .collect();
        handles
            .into_iter()
            .map(|(shard_no, first_record, h)| {
                // `join` only fails if a panic escaped `catch_unwind`
                // (e.g. a panicking Drop of the payload); fold both
                // failure shapes into the same per-shard error.
                let caught = h.join().unwrap_or_else(Err);
                caught.map_err(|payload| ShardPanic {
                    shard: shard_no,
                    first_record,
                    message: panic_message(payload.as_ref()),
                })
            })
            .collect()
    });
    collect_outcome(fold, shard_count, results)
}

/// Runs `fold` over `items`, split into contiguous item chunks claimed by
/// a work-stealing worker pool, isolating worker panics (see
/// [`run_lines_caught`] for the panic contract).
///
/// Chunks hold roughly `len / (workers × CHUNKS_PER_WORKER)` items (never
/// fewer than `min_chunk`) and are claimed through a shared atomic
/// cursor; per-chunk results are [`ShardFold::take`]n and fused in chunk
/// order, so the outcome matches a static split for every worker count.
pub fn run_slice_caught<T: Sync, F: ShardFold<T>>(
    items: &[T],
    fold: &F,
    opts: SliceOptions,
) -> RunOutcome<F::Out> {
    if opts.should_run_sequential(items.len()) {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let mut state = fold.init();
            for (i, item) in items.iter().enumerate() {
                fold.feed(&mut state, item, i);
            }
            fold.finish(state)
        }));
        return match caught {
            Ok(out) => RunOutcome {
                out,
                shards: 1,
                poisoned: Vec::new(),
                timings: Vec::new(),
                interrupted: false,
            },
            Err(payload) => RunOutcome {
                out: fuse_outs(fold, Vec::new()),
                shards: 1,
                poisoned: vec![ShardPanic {
                    shard: 0,
                    first_record: 0,
                    message: panic_message(payload.as_ref()),
                }],
                timings: Vec::new(),
                interrupted: false,
            },
        };
    }
    let workers = opts.effective_workers().max(1);
    let chunk = items
        .len()
        .div_ceil(workers.saturating_mul(CHUNKS_PER_WORKER).max(1))
        .max(opts.min_chunk.max(1));
    let chunk_count = items.len().div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    let per_worker: Vec<Vec<SeqResult<F::Out>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(chunk_count))
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut state: Option<F::State> = None;
                    let mut results = Vec::new();
                    loop {
                        let part_no = cursor.fetch_add(1, Ordering::Relaxed);
                        if part_no >= chunk_count {
                            break;
                        }
                        let start = part_no * chunk;
                        let part = &items[start..items.len().min(start + chunk)];
                        let caught = catch_unwind(AssertUnwindSafe(|| {
                            let st = state.get_or_insert_with(|| fold.init());
                            for (i, item) in part.iter().enumerate() {
                                fold.feed(st, item, start + i);
                            }
                            fold.take(st)
                        }));
                        match caught {
                            Ok(out) => results.push((part_no, Ok(out))),
                            Err(payload) => {
                                state = None;
                                results.push((
                                    part_no,
                                    Err(ShardPanic {
                                        shard: part_no,
                                        first_record: start,
                                        message: panic_message(payload.as_ref()),
                                    }),
                                ));
                            }
                        }
                    }
                    results
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("dispatcher worker panicked outside a fold"))
            .collect()
    });
    let mut results: Vec<SeqResult<F::Out>> = per_worker.into_iter().flatten().collect();
    results.sort_unstable_by_key(|(seq, _)| *seq);
    collect_outcome(
        fold,
        chunk_count,
        results.into_iter().map(|(_, r)| r).collect(),
    )
}

/// Splits per-shard results into surviving outputs and panic provenance,
/// fusing the survivors in shard order.
fn collect_outcome<Item: ?Sized, F: ShardFold<Item>>(
    fold: &F,
    shards: usize,
    results: Vec<Result<F::Out, ShardPanic>>,
) -> RunOutcome<F::Out> {
    let mut outs = Vec::with_capacity(results.len());
    let mut poisoned = Vec::new();
    for result in results {
        match result {
            Ok(out) => outs.push(out),
            Err(panic) => poisoned.push(panic),
        }
    }
    RunOutcome {
        out: fuse_outs(fold, outs),
        shards,
        poisoned,
        timings: Vec::new(),
        interrupted: false,
    }
}

/// Runs `fold` over the lines of `input`, failing cleanly (with shard
/// provenance) if any worker panics.
///
/// This is the fail-fast face of [`run_lines_caught`]: same sharding and
/// fusion, but a poisoned shard turns the whole run into an `Err` instead
/// of surfacing a degraded result.
pub fn run_lines<F: ShardFold<str>>(
    input: &str,
    fold: &F,
    opts: PipelineOptions,
) -> Result<F::Out, ShardPanic> {
    let outcome = run_lines_caught(input, fold, opts);
    match outcome.poisoned.into_iter().next() {
        None => Ok(outcome.out),
        Some(first) => Err(first),
    }
}

/// Runs `fold` over `items`, failing cleanly (with shard provenance) if
/// any worker panics — the fail-fast face of [`run_slice_caught`].
pub fn run_slice<T: Sync, F: ShardFold<T>>(
    items: &[T],
    fold: &F,
    opts: SliceOptions,
) -> Result<F::Out, ShardPanic> {
    let outcome = run_slice_caught(items, fold, opts);
    match outcome.poisoned.into_iter().next() {
        None => Ok(outcome.out),
        Some(first) => Err(first),
    }
}

/// Shard-order fusion; an empty shard list folds an empty state so the
/// engine returns the same value the sequential path gives empty input.
fn fuse_outs<Item: ?Sized, F: ShardFold<Item>>(fold: &F, outs: Vec<F::Out>) -> F::Out {
    outs.into_iter()
        .reduce(|a, b| fold.merge(a, b))
        .unwrap_or_else(|| fold.finish(fold.init()))
}

/// First-error-line selection for folds whose shard result is
/// `Result<T, (line, E)>`: successful shards fuse with `merge_ok`, and
/// among failing shards the **lowest line number** wins — the error a
/// sequential scan would have hit first.
pub fn merge_line_results<T, E>(
    left: Result<T, (usize, E)>,
    right: Result<T, (usize, E)>,
    merge_ok: impl FnOnce(T, T) -> T,
) -> Result<T, (usize, E)> {
    match (left, right) {
        (Ok(a), Ok(b)) => Ok(merge_ok(a, b)),
        (Err(a), Err(b)) => Err(if b.0 < a.0 { b } else { a }),
        (Err(a), Ok(_)) => Err(a),
        (Ok(_), Err(b)) => Err(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy fold: sum of parsed integers, first bad line as error.
    struct SumFold;

    impl ShardFold<str> for SumFold {
        type State = Result<i64, (usize, String)>;
        type Out = Result<i64, (usize, String)>;

        fn init(&self) -> Self::State {
            Ok(0)
        }

        fn feed(&self, state: &mut Self::State, line: &str, index: usize) {
            let Ok(acc) = state else { return };
            if line.trim().is_empty() {
                return;
            }
            match line.trim().parse::<i64>() {
                Ok(n) => *acc += n,
                Err(e) => *state = Err((index, e.to_string())),
            }
        }

        fn finish(&self, state: Self::State) -> Self::Out {
            state
        }

        fn merge(&self, left: Self::Out, right: Self::Out) -> Self::Out {
            merge_line_results(left, right, |a, b| a + b)
        }
    }

    fn opts(workers: usize) -> PipelineOptions {
        PipelineOptions {
            workers,
            min_shard_bytes: 4,
        }
    }

    #[test]
    fn sharded_sum_equals_sequential_at_every_worker_count() {
        let input: String = (1..=200).map(|i| format!("{i}\n")).collect();
        let expected = run_lines(&input, &SumFold, opts(1)).unwrap();
        assert_eq!(expected, Ok((1..=200i64).sum()));
        for workers in [2, 3, 8, 16] {
            assert_eq!(
                run_lines(&input, &SumFold, opts(workers)).unwrap(),
                expected
            );
        }
    }

    #[test]
    fn first_error_line_wins_across_shards() {
        let mut lines: Vec<String> = (1..=100).map(|i| i.to_string()).collect();
        lines[90] = "late-bad".into();
        lines[7] = "early-bad".into();
        let input = lines.join("\n");
        for workers in [1, 2, 4, 8] {
            let out = run_lines(&input, &SumFold, opts(workers)).unwrap();
            assert_eq!(out.as_ref().unwrap_err().0, 7, "workers={workers}");
        }
    }

    #[test]
    fn blank_lines_and_missing_trailing_newline() {
        let input = "1\n\n2\n\n3"; // blank lines, no trailing newline
        for workers in [1, 2, 4] {
            assert_eq!(run_lines(input, &SumFold, opts(workers)).unwrap(), Ok(6));
        }
    }

    #[test]
    fn empty_input_yields_unit() {
        assert_eq!(run_lines("", &SumFold, opts(4)).unwrap(), Ok(0));
    }

    /// Slice engine: concatenation-shaped fold keeps input order.
    struct CollectFold;

    impl ShardFold<i32> for CollectFold {
        type State = Vec<(usize, i32)>;
        type Out = Vec<(usize, i32)>;

        fn init(&self) -> Self::State {
            Vec::new()
        }

        fn feed(&self, state: &mut Self::State, item: &i32, index: usize) {
            state.push((index, *item));
        }

        fn finish(&self, state: Self::State) -> Self::Out {
            state
        }

        fn merge(&self, mut left: Self::Out, right: Self::Out) -> Self::Out {
            left.extend(right);
            left
        }
    }

    #[test]
    fn slice_engine_preserves_order_and_indices() {
        let items: Vec<i32> = (0..500).collect();
        let expected: Vec<(usize, i32)> = items.iter().map(|&v| (v as usize, v)).collect();
        for workers in [1, 2, 3, 8] {
            let out = run_slice(
                &items,
                &CollectFold,
                SliceOptions {
                    workers,
                    min_chunk: 16,
                },
            )
            .unwrap();
            assert_eq!(out, expected, "workers={workers}");
        }
    }

    #[test]
    fn slice_engine_small_inputs_fall_back() {
        let items = [1, 2, 3];
        let out = run_slice(&items, &CollectFold, SliceOptions::default()).unwrap();
        assert_eq!(out, vec![(0, 1), (1, 2), (2, 3)]);
    }

    /// A fold that panics on a trigger line, for panic-isolation tests.
    struct PanicOnFold;

    impl ShardFold<str> for PanicOnFold {
        type State = Vec<usize>;
        type Out = Vec<usize>;

        fn init(&self) -> Self::State {
            Vec::new()
        }

        fn feed(&self, state: &mut Self::State, line: &str, index: usize) {
            if line == "boom" {
                panic!("injected fold panic at record {index}");
            }
            if !line.is_empty() {
                state.push(index);
            }
        }

        fn finish(&self, state: Self::State) -> Self::Out {
            state
        }

        fn merge(&self, mut left: Self::Out, right: Self::Out) -> Self::Out {
            left.extend(right);
            left
        }
    }

    #[test]
    fn panicking_shard_is_isolated_and_named() {
        // Enough lines that 4 workers shard; "boom" lands in one shard.
        let mut lines: Vec<String> = (0..100).map(|i| format!("line-{i:04}")).collect();
        lines[60] = "boom".into();
        let input = lines.join("\n");
        let outcome = run_lines_caught(&input, &PanicOnFold, opts(4));
        assert!(outcome.shards > 1, "input must actually shard");
        assert_eq!(outcome.poisoned.len(), 1);
        let poisoned = &outcome.poisoned[0];
        assert!(poisoned.message.contains("injected fold panic"));
        assert!(poisoned.first_record <= 60);
        // Surviving shards still merged: every record outside the
        // poisoned shard is present and in order.
        assert!(!outcome.out.is_empty());
        assert!(outcome.out.windows(2).all(|w| w[0] < w[1]));
        assert!(!outcome.out.contains(&60));
    }

    #[test]
    fn run_lines_fails_cleanly_on_panic() {
        let err = run_lines("boom", &PanicOnFold, opts(1)).unwrap_err();
        assert_eq!(err.shard, 0);
        assert!(err.message.contains("injected fold panic"));
    }

    #[test]
    fn sequential_path_is_panic_isolated_too() {
        let outcome = run_lines_caught("a\nboom\nb", &PanicOnFold, opts(1));
        assert_eq!(outcome.shards, 1);
        assert_eq!(outcome.poisoned.len(), 1);
        assert!(outcome.out.is_empty(), "poisoned shard's output is lost");
    }

    #[test]
    fn stealing_matches_static_across_chunk_sizes() {
        let input: String = (1..=500).map(|i| format!("{i}\n")).collect();
        let expected = run_lines_static_caught(&input, &SumFold, opts(4)).out;
        for workers in [1, 2, 3, 8] {
            for chunk_bytes in [1usize, 64, 4096, 1 << 20] {
                let outcome = run_lines_stealing(
                    &input,
                    &SumFold,
                    opts(workers),
                    ChunkOptions::with_chunk_bytes(chunk_bytes),
                );
                assert_eq!(
                    outcome.out, expected,
                    "workers={workers} chunk_bytes={chunk_bytes}"
                );
            }
        }
    }

    #[test]
    fn reader_matches_slice_dispatch() {
        let mut lines: Vec<String> = (1..=300).map(|i| i.to_string()).collect();
        lines[123] = "bad".into();
        let input = lines.join("\n");
        let expected = run_lines_caught(&input, &SumFold, opts(3)).out;
        let outcome = run_reader_caught(
            std::io::Cursor::new(input.as_bytes()),
            &SumFold,
            opts(3),
            ChunkOptions::with_chunk_bytes(128),
        )
        .unwrap();
        assert_eq!(outcome.out, expected);
        assert_eq!(outcome.out.as_ref().unwrap_err().0, 123);
        assert!(outcome.shards > 1);
    }

    #[test]
    fn timing_accounts_for_every_chunk() {
        let input: String = (1..=400).map(|i| format!("{i}\n")).collect();
        let chunk = ChunkOptions {
            chunk_bytes: 64,
            ring: 0,
            timing: true,
        };
        let outcome = run_lines_stealing(&input, &SumFold, opts(3), chunk);
        assert_eq!(outcome.out, Ok((1..=400i64).sum()));
        assert_eq!(outcome.timings.len(), 3);
        let chunks: usize = outcome.timings.iter().map(|t| t.chunks).sum();
        assert_eq!(chunks, outcome.shards);
        let records: usize = outcome.timings.iter().map(|t| t.records).sum();
        assert_eq!(records, 400);
        let bytes: usize = outcome.timings.iter().map(|t| t.bytes).sum();
        assert_eq!(bytes, input.len());
        // With a single worker every chunk lands on worker 0 and its
        // fair share is the whole queue: zero steals by definition.
        let solo = run_lines_stealing(&input, &SumFold, opts(1), chunk);
        assert_eq!(solo.timings.len(), 1);
        assert_eq!(solo.timings[0].steals, 0);
    }

    #[test]
    fn timing_forces_dispatch_on_tiny_input() {
        let outcome = run_lines_stealing(
            "1\n2\n",
            &SumFold,
            opts(2),
            ChunkOptions {
                timing: true,
                ..ChunkOptions::default()
            },
        );
        assert_eq!(outcome.out, Ok(3));
        assert!(!outcome.timings.is_empty());
    }

    #[test]
    fn stealing_panic_poisons_only_its_chunk_and_worker_state_recovers() {
        let mut lines: Vec<String> = (0..200).map(|i| format!("line-{i:04}")).collect();
        lines[60] = "boom".into();
        let input = lines.join("\n");
        // One worker claims every chunk, so the poisoned chunk's state
        // reset must not leak records from before the panic.
        let outcome = run_lines_stealing(
            &input,
            &PanicOnFold,
            opts(1),
            ChunkOptions {
                chunk_bytes: 256,
                ring: 0,
                timing: true,
            },
        );
        assert!(outcome.shards > 1);
        assert_eq!(outcome.poisoned.len(), 1);
        assert!(outcome.poisoned[0].first_record <= 60);
        assert!(!outcome.out.contains(&60));
        assert!(outcome.out.windows(2).all(|w| w[0] < w[1]));
        // Records after the poisoned chunk are present: the worker
        // recovered with a fresh state.
        assert!(outcome.out.contains(&199));
    }

    #[test]
    fn reader_surfaces_input_errors() {
        let mut bytes = b"1\n2\n".to_vec();
        bytes.extend_from_slice(&[0xff, 0xfe, b'\n']);
        let err = run_reader_caught(
            std::io::Cursor::new(bytes),
            &SumFold,
            opts(2),
            ChunkOptions::with_chunk_bytes(2),
        )
        .unwrap_err();
        assert!(matches!(err, ChunkError::NotUtf8 { .. }));
    }

    #[test]
    fn slice_panic_is_isolated() {
        struct PanicOnNegative;
        impl ShardFold<i32> for PanicOnNegative {
            type State = i64;
            type Out = i64;
            fn init(&self) -> i64 {
                0
            }
            fn feed(&self, acc: &mut i64, item: &i32, _index: usize) {
                assert!(*item >= 0, "negative item");
                *acc += i64::from(*item);
            }
            fn finish(&self, acc: i64) -> i64 {
                acc
            }
            fn merge(&self, a: i64, b: i64) -> i64 {
                a + b
            }
        }
        let mut items: Vec<i32> = (0..400).collect();
        items[350] = -1;
        let outcome = run_slice_caught(
            &items,
            &PanicOnNegative,
            SliceOptions {
                workers: 4,
                min_chunk: 16,
            },
        );
        assert_eq!(outcome.poisoned.len(), 1);
        assert!(outcome.poisoned[0].first_record <= 350);
        let err = run_slice(
            &items,
            &PanicOnNegative,
            SliceOptions {
                workers: 4,
                min_chunk: 16,
            },
        )
        .unwrap_err();
        assert!(err.message.contains("negative item"));
    }
}
