//! The fold/merge execution engine.

use crate::options::{PipelineOptions, SliceOptions};
use crate::report::ShardPanic;
use crate::shard::shard_lines;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A sharded fold: the contract every pipeline stage implements.
///
/// The engine feeds one `Item` at a time (with its global index) into a
/// per-worker `State`, finishes each worker's state into an `Out`, and
/// fuses the `Out`s **in shard order** with [`merge`](Self::merge). When
/// `merge` is commutative and associative (or when `Out` is
/// order-sensitive but concatenation-shaped, like per-line verdicts), the
/// sharded result is identical to the sequential fold for every worker
/// count.
///
/// The fold value itself is shared immutably across workers (`Sync`), so
/// it is the right home for per-stage configuration: an equivalence, a
/// compiled schema, a column layout.
pub trait ShardFold<Item: ?Sized>: Sync {
    /// Per-worker scratch state (typers, validators, column builders).
    type State;
    /// Per-shard result, fused across shards.
    type Out: Send;

    /// Fresh state for one worker.
    fn init(&self) -> Self::State;
    /// Folds one item (an NDJSON line or a slice element) into the state.
    /// `index` is the item's global position (line number / document
    /// index); blank-line skipping is the fold's own business.
    fn feed(&self, state: &mut Self::State, item: &Item, index: usize);
    /// Converts a worker's final state into the shard result.
    fn finish(&self, state: Self::State) -> Self::Out;
    /// Fuses two shard results, left shard first.
    fn merge(&self, left: Self::Out, right: Self::Out) -> Self::Out;
}

/// What a caught (panic-isolated) run produced: the fused output of the
/// surviving shards plus provenance for any shard whose worker panicked.
///
/// A poisoned shard's partial state is lost — its records simply do not
/// contribute to `out` — but the remaining shards still merge in shard
/// order, so the caller can decide whether a degraded result is usable.
#[derive(Debug)]
pub struct RunOutcome<Out> {
    /// The shard-order fusion of every shard that completed.
    pub out: Out,
    /// How many shards the input was split into (1 on the sequential
    /// path).
    pub shards: usize,
    /// Shards whose fold panicked, in shard order.
    pub poisoned: Vec<ShardPanic>,
}

/// Extracts the human-readable payload of a caught panic.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `fold` over the lines of `input`, sharded at newline boundaries,
/// isolating worker panics.
///
/// Every line — including blank ones — is fed with its global line index,
/// exactly as a sequential `input.lines().enumerate()` would produce it.
/// Inputs below the options' shard threshold (or a single worker) run
/// sequentially on the caller's thread; results are identical either way.
/// Each shard's fold (the sequential path counts as one shard) runs under
/// `catch_unwind`: a panic poisons only that shard, and the outcome
/// records it instead of unwinding the caller.
pub fn run_lines_caught<F: ShardFold<str>>(
    input: &str,
    fold: &F,
    opts: PipelineOptions,
) -> RunOutcome<F::Out> {
    if opts.sequential(input.len()) {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let mut state = fold.init();
            for (i, line) in input.lines().enumerate() {
                fold.feed(&mut state, line, i);
            }
            fold.finish(state)
        }));
        return match caught {
            Ok(out) => RunOutcome {
                out,
                shards: 1,
                poisoned: Vec::new(),
            },
            Err(payload) => RunOutcome {
                out: fuse_outs(fold, Vec::new()),
                shards: 1,
                poisoned: vec![ShardPanic {
                    shard: 0,
                    first_record: 0,
                    message: panic_message(payload.as_ref()),
                }],
            },
        };
    }
    let shards = shard_lines(input, opts.effective_workers());
    let shard_count = shards.len();
    let results: Vec<Result<F::Out, ShardPanic>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(shard_no, &shard)| {
                let handle = scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        let mut state = fold.init();
                        for (i, line) in shard.text.lines().enumerate() {
                            fold.feed(&mut state, line, shard.first_line + i);
                        }
                        fold.finish(state)
                    }))
                });
                (shard_no, shard.first_line, handle)
            })
            .collect();
        handles
            .into_iter()
            .map(|(shard_no, first_record, h)| {
                // `join` only fails if a panic escaped `catch_unwind`
                // (e.g. a panicking Drop of the payload); fold both
                // failure shapes into the same per-shard error.
                let caught = h.join().unwrap_or_else(Err);
                caught.map_err(|payload| ShardPanic {
                    shard: shard_no,
                    first_record,
                    message: panic_message(payload.as_ref()),
                })
            })
            .collect()
    });
    collect_outcome(fold, shard_count, results)
}

/// Runs `fold` over `items`, sharded into contiguous chunks, isolating
/// worker panics (see [`run_lines_caught`] for the panic contract).
///
/// The chunking mirrors the historical DOM-inference path: chunks of
/// `ceil(len / workers)` items, never smaller than `min_chunk`.
pub fn run_slice_caught<T: Sync, F: ShardFold<T>>(
    items: &[T],
    fold: &F,
    opts: SliceOptions,
) -> RunOutcome<F::Out> {
    if opts.sequential(items.len()) {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let mut state = fold.init();
            for (i, item) in items.iter().enumerate() {
                fold.feed(&mut state, item, i);
            }
            fold.finish(state)
        }));
        return match caught {
            Ok(out) => RunOutcome {
                out,
                shards: 1,
                poisoned: Vec::new(),
            },
            Err(payload) => RunOutcome {
                out: fuse_outs(fold, Vec::new()),
                shards: 1,
                poisoned: vec![ShardPanic {
                    shard: 0,
                    first_record: 0,
                    message: panic_message(payload.as_ref()),
                }],
            },
        };
    }
    let chunk = items
        .len()
        .div_ceil(opts.effective_workers())
        .max(opts.min_chunk.max(1));
    let shard_count = items.len().div_ceil(chunk);
    let results: Vec<Result<F::Out, ShardPanic>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(part_no, part)| {
                let handle = scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        let mut state = fold.init();
                        for (i, item) in part.iter().enumerate() {
                            fold.feed(&mut state, item, part_no * chunk + i);
                        }
                        fold.finish(state)
                    }))
                });
                (part_no, part_no * chunk, handle)
            })
            .collect();
        handles
            .into_iter()
            .map(|(shard_no, first_record, h)| {
                let caught = h.join().unwrap_or_else(Err);
                caught.map_err(|payload| ShardPanic {
                    shard: shard_no,
                    first_record,
                    message: panic_message(payload.as_ref()),
                })
            })
            .collect()
    });
    collect_outcome(fold, shard_count, results)
}

/// Splits per-shard results into surviving outputs and panic provenance,
/// fusing the survivors in shard order.
fn collect_outcome<Item: ?Sized, F: ShardFold<Item>>(
    fold: &F,
    shards: usize,
    results: Vec<Result<F::Out, ShardPanic>>,
) -> RunOutcome<F::Out> {
    let mut outs = Vec::with_capacity(results.len());
    let mut poisoned = Vec::new();
    for result in results {
        match result {
            Ok(out) => outs.push(out),
            Err(panic) => poisoned.push(panic),
        }
    }
    RunOutcome {
        out: fuse_outs(fold, outs),
        shards,
        poisoned,
    }
}

/// Runs `fold` over the lines of `input`, failing cleanly (with shard
/// provenance) if any worker panics.
///
/// This is the fail-fast face of [`run_lines_caught`]: same sharding and
/// fusion, but a poisoned shard turns the whole run into an `Err` instead
/// of surfacing a degraded result.
pub fn run_lines<F: ShardFold<str>>(
    input: &str,
    fold: &F,
    opts: PipelineOptions,
) -> Result<F::Out, ShardPanic> {
    let outcome = run_lines_caught(input, fold, opts);
    match outcome.poisoned.into_iter().next() {
        None => Ok(outcome.out),
        Some(first) => Err(first),
    }
}

/// Runs `fold` over `items`, failing cleanly (with shard provenance) if
/// any worker panics — the fail-fast face of [`run_slice_caught`].
pub fn run_slice<T: Sync, F: ShardFold<T>>(
    items: &[T],
    fold: &F,
    opts: SliceOptions,
) -> Result<F::Out, ShardPanic> {
    let outcome = run_slice_caught(items, fold, opts);
    match outcome.poisoned.into_iter().next() {
        None => Ok(outcome.out),
        Some(first) => Err(first),
    }
}

/// Shard-order fusion; an empty shard list folds an empty state so the
/// engine returns the same value the sequential path gives empty input.
fn fuse_outs<Item: ?Sized, F: ShardFold<Item>>(fold: &F, outs: Vec<F::Out>) -> F::Out {
    outs.into_iter()
        .reduce(|a, b| fold.merge(a, b))
        .unwrap_or_else(|| fold.finish(fold.init()))
}

/// First-error-line selection for folds whose shard result is
/// `Result<T, (line, E)>`: successful shards fuse with `merge_ok`, and
/// among failing shards the **lowest line number** wins — the error a
/// sequential scan would have hit first.
pub fn merge_line_results<T, E>(
    left: Result<T, (usize, E)>,
    right: Result<T, (usize, E)>,
    merge_ok: impl FnOnce(T, T) -> T,
) -> Result<T, (usize, E)> {
    match (left, right) {
        (Ok(a), Ok(b)) => Ok(merge_ok(a, b)),
        (Err(a), Err(b)) => Err(if b.0 < a.0 { b } else { a }),
        (Err(a), Ok(_)) => Err(a),
        (Ok(_), Err(b)) => Err(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy fold: sum of parsed integers, first bad line as error.
    struct SumFold;

    impl ShardFold<str> for SumFold {
        type State = Result<i64, (usize, String)>;
        type Out = Result<i64, (usize, String)>;

        fn init(&self) -> Self::State {
            Ok(0)
        }

        fn feed(&self, state: &mut Self::State, line: &str, index: usize) {
            let Ok(acc) = state else { return };
            if line.trim().is_empty() {
                return;
            }
            match line.trim().parse::<i64>() {
                Ok(n) => *acc += n,
                Err(e) => *state = Err((index, e.to_string())),
            }
        }

        fn finish(&self, state: Self::State) -> Self::Out {
            state
        }

        fn merge(&self, left: Self::Out, right: Self::Out) -> Self::Out {
            merge_line_results(left, right, |a, b| a + b)
        }
    }

    fn opts(workers: usize) -> PipelineOptions {
        PipelineOptions {
            workers,
            min_shard_bytes: 4,
        }
    }

    #[test]
    fn sharded_sum_equals_sequential_at_every_worker_count() {
        let input: String = (1..=200).map(|i| format!("{i}\n")).collect();
        let expected = run_lines(&input, &SumFold, opts(1)).unwrap();
        assert_eq!(expected, Ok((1..=200i64).sum()));
        for workers in [2, 3, 8, 16] {
            assert_eq!(
                run_lines(&input, &SumFold, opts(workers)).unwrap(),
                expected
            );
        }
    }

    #[test]
    fn first_error_line_wins_across_shards() {
        let mut lines: Vec<String> = (1..=100).map(|i| i.to_string()).collect();
        lines[90] = "late-bad".into();
        lines[7] = "early-bad".into();
        let input = lines.join("\n");
        for workers in [1, 2, 4, 8] {
            let out = run_lines(&input, &SumFold, opts(workers)).unwrap();
            assert_eq!(out.as_ref().unwrap_err().0, 7, "workers={workers}");
        }
    }

    #[test]
    fn blank_lines_and_missing_trailing_newline() {
        let input = "1\n\n2\n\n3"; // blank lines, no trailing newline
        for workers in [1, 2, 4] {
            assert_eq!(run_lines(input, &SumFold, opts(workers)).unwrap(), Ok(6));
        }
    }

    #[test]
    fn empty_input_yields_unit() {
        assert_eq!(run_lines("", &SumFold, opts(4)).unwrap(), Ok(0));
    }

    /// Slice engine: concatenation-shaped fold keeps input order.
    struct CollectFold;

    impl ShardFold<i32> for CollectFold {
        type State = Vec<(usize, i32)>;
        type Out = Vec<(usize, i32)>;

        fn init(&self) -> Self::State {
            Vec::new()
        }

        fn feed(&self, state: &mut Self::State, item: &i32, index: usize) {
            state.push((index, *item));
        }

        fn finish(&self, state: Self::State) -> Self::Out {
            state
        }

        fn merge(&self, mut left: Self::Out, right: Self::Out) -> Self::Out {
            left.extend(right);
            left
        }
    }

    #[test]
    fn slice_engine_preserves_order_and_indices() {
        let items: Vec<i32> = (0..500).collect();
        let expected: Vec<(usize, i32)> = items.iter().map(|&v| (v as usize, v)).collect();
        for workers in [1, 2, 3, 8] {
            let out = run_slice(
                &items,
                &CollectFold,
                SliceOptions {
                    workers,
                    min_chunk: 16,
                },
            )
            .unwrap();
            assert_eq!(out, expected, "workers={workers}");
        }
    }

    #[test]
    fn slice_engine_small_inputs_fall_back() {
        let items = [1, 2, 3];
        let out = run_slice(&items, &CollectFold, SliceOptions::default()).unwrap();
        assert_eq!(out, vec![(0, 1), (1, 2), (2, 3)]);
    }

    /// A fold that panics on a trigger line, for panic-isolation tests.
    struct PanicOnFold;

    impl ShardFold<str> for PanicOnFold {
        type State = Vec<usize>;
        type Out = Vec<usize>;

        fn init(&self) -> Self::State {
            Vec::new()
        }

        fn feed(&self, state: &mut Self::State, line: &str, index: usize) {
            if line == "boom" {
                panic!("injected fold panic at record {index}");
            }
            if !line.is_empty() {
                state.push(index);
            }
        }

        fn finish(&self, state: Self::State) -> Self::Out {
            state
        }

        fn merge(&self, mut left: Self::Out, right: Self::Out) -> Self::Out {
            left.extend(right);
            left
        }
    }

    #[test]
    fn panicking_shard_is_isolated_and_named() {
        // Enough lines that 4 workers shard; "boom" lands in one shard.
        let mut lines: Vec<String> = (0..100).map(|i| format!("line-{i:04}")).collect();
        lines[60] = "boom".into();
        let input = lines.join("\n");
        let outcome = run_lines_caught(&input, &PanicOnFold, opts(4));
        assert!(outcome.shards > 1, "input must actually shard");
        assert_eq!(outcome.poisoned.len(), 1);
        let poisoned = &outcome.poisoned[0];
        assert!(poisoned.message.contains("injected fold panic"));
        assert!(poisoned.first_record <= 60);
        // Surviving shards still merged: every record outside the
        // poisoned shard is present and in order.
        assert!(!outcome.out.is_empty());
        assert!(outcome.out.windows(2).all(|w| w[0] < w[1]));
        assert!(!outcome.out.contains(&60));
    }

    #[test]
    fn run_lines_fails_cleanly_on_panic() {
        let err = run_lines("boom", &PanicOnFold, opts(1)).unwrap_err();
        assert_eq!(err.shard, 0);
        assert!(err.message.contains("injected fold panic"));
    }

    #[test]
    fn sequential_path_is_panic_isolated_too() {
        let outcome = run_lines_caught("a\nboom\nb", &PanicOnFold, opts(1));
        assert_eq!(outcome.shards, 1);
        assert_eq!(outcome.poisoned.len(), 1);
        assert!(outcome.out.is_empty(), "poisoned shard's output is lost");
    }

    #[test]
    fn slice_panic_is_isolated() {
        struct PanicOnNegative;
        impl ShardFold<i32> for PanicOnNegative {
            type State = i64;
            type Out = i64;
            fn init(&self) -> i64 {
                0
            }
            fn feed(&self, acc: &mut i64, item: &i32, _index: usize) {
                assert!(*item >= 0, "negative item");
                *acc += i64::from(*item);
            }
            fn finish(&self, acc: i64) -> i64 {
                acc
            }
            fn merge(&self, a: i64, b: i64) -> i64 {
                a + b
            }
        }
        let mut items: Vec<i32> = (0..400).collect();
        items[350] = -1;
        let outcome = run_slice_caught(
            &items,
            &PanicOnNegative,
            SliceOptions {
                workers: 4,
                min_chunk: 16,
            },
        );
        assert_eq!(outcome.poisoned.len(), 1);
        assert!(outcome.poisoned[0].first_record <= 350);
        let err = run_slice(
            &items,
            &PanicOnNegative,
            SliceOptions {
                workers: 4,
                min_chunk: 16,
            },
        )
        .unwrap_err();
        assert!(err.message.contains("negative item"));
    }
}
