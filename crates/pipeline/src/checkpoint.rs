//! The durable run journal: crash-safe chunk-commit records and the
//! ordered committer the engine drives through [`CheckpointSink`].
//!
//! A long out-of-core run is a sequence of chunk folds fused in sequence
//! order. To survive a crash (OOM-kill, deploy, SIGTERM) the run
//! write-ahead-logs every *committed* chunk — one fsync'd NDJSON record
//! per chunk, framed with a CRC-32 so a torn tail write is detectable —
//! and a resumed run replays the journal, skips the committed prefix of
//! the input, and re-merges the decoded per-chunk results with the
//! freshly processed tail. Because [`ChunkSource`](crate::ChunkSource)
//! sequence numbers depend only on the input bytes and the chunk target
//! (never the worker count), a resume at any worker count reproduces the
//! exact chunk boundaries and therefore the exact output.
//!
//! This module is format-blind: records are opaque payload strings
//! (the facade crate encodes stage-specific results into them), and the
//! commit protocol lives in [`ChunkJournal`]:
//!
//! * chunks complete in *any* order on the worker pool, but only the
//!   contiguous prefix of successfully folded chunks is ever committed —
//!   `chunk_done(seq=k)` is buffered until every seq `< k` committed;
//! * each commit appends one framed record and fsyncs before the next,
//!   so the journal on disk is always a valid prefix of the run;
//! * a chunk whose result cannot be encoded (or a poisoned chunk, which
//!   never reports `chunk_done` at all) leaves a hole: nothing past it
//!   commits, and the resumed run reprocesses from the hole.
//!
//! Reading is tail-tolerant by design: [`read_journal`] stops at the
//! first record whose frame is malformed or whose CRC disagrees —
//! exactly what a record half-written at crash time looks like — and
//! reports everything before it as durable.

use jsonx_data::crc32;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

/// Everything the engine knows about one successfully folded chunk when
/// it reports the chunk to a [`CheckpointSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMeta {
    /// The chunk's position in the input's chunk sequence.
    pub seq: usize,
    /// Global index of the chunk's first line.
    pub first_line: usize,
    /// How many lines the chunk spans (including blank lines).
    pub lines: usize,
    /// The chunk's size in bytes — the resume cursor advances by exactly
    /// this much per committed chunk.
    pub bytes: usize,
}

/// Hook the engine calls once per successfully folded chunk, before the
/// chunk's result is fused. Calls arrive in completion order (any
/// order); implementations that need sequence order must buffer.
pub trait CheckpointSink<Out>: Sync {
    /// One chunk finished folding with result `out`.
    fn chunk_done(&self, meta: &ChunkMeta, out: &Out);
}

// ---------------------------------------------------------------------------
// Framed append-only journal file
// ---------------------------------------------------------------------------

/// Append-only writer of CRC-framed journal records.
///
/// Each record is one line: eight lowercase hex digits of the payload's
/// CRC-32, one space, the payload (which must not contain newlines), a
/// newline. Every append is followed by `sync_data`, so once `append`
/// returns the record survives a crash.
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Creates (or truncates) the journal at `path`.
    pub fn create(path: &Path) -> std::io::Result<JournalWriter> {
        Ok(JournalWriter {
            file: File::create(path)?,
        })
    }

    /// Opens an existing journal for appending (resume).
    pub fn append_to(path: &Path) -> std::io::Result<JournalWriter> {
        Ok(JournalWriter {
            file: File::options().append(true).open(path)?,
        })
    }

    /// Opens an existing journal for appending after truncating it to
    /// `valid_bytes` — the [`JournalRead::valid_bytes`] cursor — so a
    /// record torn by the previous crash is physically cut off before
    /// any new record lands after it.
    pub fn resume(path: &Path, valid_bytes: u64) -> std::io::Result<JournalWriter> {
        let file = File::options().append(true).open(path)?;
        file.set_len(valid_bytes)?;
        Ok(JournalWriter { file })
    }

    /// Appends one framed record and fsyncs it.
    ///
    /// # Panics
    ///
    /// Panics if `payload` contains a newline — that would corrupt the
    /// framing, and every caller controls its payloads.
    pub fn append(&mut self, payload: &str) -> std::io::Result<()> {
        assert!(
            !payload.contains('\n'),
            "journal payloads must be single lines"
        );
        let line = format!("{:08x} {payload}\n", crc32(payload.as_bytes()));
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }
}

/// What [`read_journal`] recovered from a journal file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRead {
    /// The payloads of every intact record, in file order.
    pub records: Vec<String>,
    /// Whether reading stopped early at a torn or corrupted record (the
    /// expected state after a crash mid-append). The intact prefix in
    /// `records` is still fully durable.
    pub truncated: bool,
    /// Byte length of the intact prefix — pass to
    /// [`JournalWriter::resume`] to cut a torn tail before appending.
    pub valid_bytes: u64,
}

/// Reads a journal tail-tolerantly: stops at the first line that is
/// incomplete (no trailing newline), malformed, or fails its CRC, and
/// returns the intact prefix.
pub fn read_journal(path: &Path) -> std::io::Result<JournalRead> {
    let text = std::fs::read_to_string(path)?;
    let mut records = Vec::new();
    let mut rest = text.as_str();
    let mut valid_bytes = 0u64;
    loop {
        let Some(nl) = rest.find('\n') else {
            // A non-empty remainder is a record that never finished
            // writing.
            return Ok(JournalRead {
                records,
                truncated: !rest.is_empty(),
                valid_bytes,
            });
        };
        let line = &rest[..nl];
        rest = &rest[nl + 1..];
        let Some(payload) = parse_frame(line) else {
            return Ok(JournalRead {
                records,
                truncated: true,
                valid_bytes,
            });
        };
        valid_bytes += nl as u64 + 1;
        records.push(payload.to_string());
    }
}

/// Checks one `crc32hex payload` frame; `Some(payload)` when intact.
fn parse_frame(line: &str) -> Option<&str> {
    let (crc_hex, payload) = line.split_at_checked(8)?;
    let payload = payload.strip_prefix(' ')?;
    let expected = u32::from_str_radix(crc_hex, 16).ok()?;
    (crc32(payload.as_bytes()) == expected).then_some(payload)
}

// ---------------------------------------------------------------------------
// Ordered committer
// ---------------------------------------------------------------------------

type Encode<Out> = dyn Fn(&ChunkMeta, &Out) -> Option<String> + Send + Sync;
type AfterCommit = dyn Fn(u64) + Send + Sync;

/// The commit protocol: buffers out-of-order `chunk_done` reports and
/// appends exactly the contiguous prefix of encodable chunk results to
/// the journal, in sequence order, fsyncing each.
///
/// The encoder returns the record payload for a chunk, or `None` for a
/// result that must not commit (a halted shard, an unencodable value) —
/// which latches the committer: nothing at or past that sequence number
/// ever reaches the journal, so a resume reprocesses from there.
/// I/O errors are latched too and surfaced by [`finish`](Self::finish);
/// the engine's run continues (the in-memory result is still correct,
/// only durability is lost).
pub struct ChunkJournal<Out> {
    inner: Mutex<CommitState>,
    encode: Box<Encode<Out>>,
    after_commit: Option<Box<AfterCommit>>,
}

struct CommitState {
    writer: JournalWriter,
    /// Completed-but-not-yet-committed chunk payloads, keyed by seq.
    pending: BTreeMap<usize, Option<String>>,
    /// The next sequence number eligible to commit.
    next: usize,
    /// Total records committed through this committer.
    committed: u64,
    /// Set when an unencodable result closed the journal.
    stopped: bool,
    error: Option<std::io::Error>,
}

impl<Out> ChunkJournal<Out> {
    /// Wraps `writer`, committing chunks from sequence number
    /// `start_seq` upward (the resumed prefix is `0..start_seq`).
    pub fn new(
        writer: JournalWriter,
        start_seq: usize,
        encode: impl Fn(&ChunkMeta, &Out) -> Option<String> + Send + Sync + 'static,
    ) -> ChunkJournal<Out> {
        ChunkJournal {
            inner: Mutex::new(CommitState {
                writer,
                pending: BTreeMap::new(),
                next: start_seq,
                committed: 0,
                stopped: false,
                error: None,
            }),
            encode: Box::new(encode),
            after_commit: None,
        }
    }

    /// Registers a hook fired after each durable commit with the running
    /// commit count — the seam the kill-and-resume harness injects its
    /// crashpoints through.
    pub fn with_after_commit(
        mut self,
        hook: impl Fn(u64) + Send + Sync + 'static,
    ) -> ChunkJournal<Out> {
        self.after_commit = Some(Box::new(hook));
        self
    }

    /// Consumes the committer: the journal writer (for appending
    /// post-run markers) plus the number of records committed, or the
    /// first I/O error a commit hit.
    pub fn finish(self) -> std::io::Result<(JournalWriter, u64)> {
        let inner = self.inner.into_inner().unwrap();
        match inner.error {
            Some(err) => Err(err),
            None => Ok((inner.writer, inner.committed)),
        }
    }

    fn drain(&self, inner: &mut CommitState) {
        while !inner.stopped && inner.error.is_none() {
            let Some(entry) = inner.pending.remove(&inner.next) else {
                return;
            };
            let Some(payload) = entry else {
                inner.stopped = true;
                return;
            };
            if let Err(err) = inner.writer.append(&payload) {
                inner.error = Some(err);
                return;
            }
            inner.next += 1;
            inner.committed += 1;
            if let Some(hook) = &self.after_commit {
                hook(inner.committed);
            }
        }
    }
}

impl<Out> CheckpointSink<Out> for ChunkJournal<Out>
where
    Out: Send,
{
    fn chunk_done(&self, meta: &ChunkMeta, out: &Out) {
        let payload = (self.encode)(meta, out);
        let mut inner = self.inner.lock().unwrap();
        if inner.stopped || inner.error.is_some() || meta.seq < inner.next {
            return;
        }
        inner.pending.insert(meta.seq, payload);
        self.drain(&mut inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("jsonx-checkpoint-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn journal_round_trips() {
        let path = tmp("round-trip");
        let mut writer = JournalWriter::create(&path).unwrap();
        for payload in ["{\"a\":1}", "{\"b\":2}", "plain text"] {
            writer.append(payload).unwrap();
        }
        let read = read_journal(&path).unwrap();
        assert!(!read.truncated);
        assert_eq!(read.records, vec!["{\"a\":1}", "{\"b\":2}", "plain text"]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_tail_is_dropped_not_fatal() {
        let path = tmp("corrupt-tail");
        let mut writer = JournalWriter::create(&path).unwrap();
        writer.append("first").unwrap();
        writer.append("second").unwrap();
        // A record torn mid-write: valid frame prefix, no newline.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"00000000 half-writ");
        std::fs::write(&path, &bytes).unwrap();
        let read = read_journal(&path).unwrap();
        assert!(read.truncated);
        assert_eq!(read.records, vec!["first", "second"]);
        // A bit flip in a complete record drops it and everything after.
        let mut bytes = std::fs::read(&path).unwrap();
        let flip = bytes.iter().position(|&b| b == b'f').unwrap();
        bytes[flip] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let read = read_journal(&path).unwrap();
        assert!(read.truncated);
        assert!(read.records.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_truncates_torn_tail_before_appending() {
        let path = tmp("resume-truncate");
        let mut writer = JournalWriter::create(&path).unwrap();
        writer.append("first").unwrap();
        drop(writer);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"00000000 torn");
        std::fs::write(&path, &bytes).unwrap();
        let read = read_journal(&path).unwrap();
        assert!(read.truncated);
        let mut writer = JournalWriter::resume(&path, read.valid_bytes).unwrap();
        writer.append("second").unwrap();
        let read = read_journal(&path).unwrap();
        assert!(!read.truncated);
        assert_eq!(read.records, vec!["first", "second"]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn committer_orders_out_of_order_chunks() {
        let path = tmp("ordered");
        let writer = JournalWriter::create(&path).unwrap();
        let journal: ChunkJournal<String> =
            ChunkJournal::new(writer, 0, |meta, out| Some(format!("{}:{out}", meta.seq)));
        let meta = |seq| ChunkMeta {
            seq,
            first_line: seq * 10,
            lines: 10,
            bytes: 100,
        };
        journal.chunk_done(&meta(2), &"c".to_string());
        journal.chunk_done(&meta(0), &"a".to_string());
        assert_eq!(read_journal(&path).unwrap().records, vec!["0:a"]);
        journal.chunk_done(&meta(1), &"b".to_string());
        let (_, committed) = journal.finish().unwrap();
        assert_eq!(committed, 3);
        assert_eq!(
            read_journal(&path).unwrap().records,
            vec!["0:a", "1:b", "2:c"]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unencodable_chunk_latches_the_committer() {
        let path = tmp("latched");
        let writer = JournalWriter::create(&path).unwrap();
        let journal: ChunkJournal<Option<String>> =
            ChunkJournal::new(writer, 0, |meta, out: &Option<String>| {
                out.as_ref().map(|s| format!("{}:{s}", meta.seq))
            });
        let meta = |seq| ChunkMeta {
            seq,
            first_line: 0,
            lines: 1,
            bytes: 1,
        };
        journal.chunk_done(&meta(0), &Some("a".to_string()));
        journal.chunk_done(&meta(1), &None);
        journal.chunk_done(&meta(2), &Some("c".to_string()));
        let (_, committed) = journal.finish().unwrap();
        assert_eq!(committed, 1);
        assert_eq!(read_journal(&path).unwrap().records, vec!["0:a"]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn gap_from_missing_chunk_blocks_later_commits() {
        // A poisoned chunk never reports chunk_done: nothing past its
        // hole may commit.
        let path = tmp("gap");
        let writer = JournalWriter::create(&path).unwrap();
        let journal: ChunkJournal<String> =
            ChunkJournal::new(writer, 0, |meta, out| Some(format!("{}:{out}", meta.seq)));
        let meta = |seq| ChunkMeta {
            seq,
            first_line: 0,
            lines: 1,
            bytes: 1,
        };
        journal.chunk_done(&meta(0), &"a".to_string());
        journal.chunk_done(&meta(2), &"c".to_string());
        journal.chunk_done(&meta(3), &"d".to_string());
        let (_, committed) = journal.finish().unwrap();
        assert_eq!(committed, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn after_commit_sees_running_count() {
        let path = tmp("hook");
        let writer = JournalWriter::create(&path).unwrap();
        let seen = std::sync::Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let journal: ChunkJournal<String> =
            ChunkJournal::new(writer, 0, |_, out: &String| Some(out.clone()))
                .with_after_commit(move |n| seen2.lock().unwrap().push(n));
        let meta = |seq| ChunkMeta {
            seq,
            first_line: 0,
            lines: 1,
            bytes: 1,
        };
        journal.chunk_done(&meta(1), &"b".to_string());
        journal.chunk_done(&meta(0), &"a".to_string());
        journal.finish().unwrap();
        assert_eq!(*seen.lock().unwrap(), vec![1, 2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_start_seq_skips_committed_prefix() {
        let path = tmp("resume-seq");
        let writer = JournalWriter::create(&path).unwrap();
        let journal: ChunkJournal<String> =
            ChunkJournal::new(writer, 2, |meta, out| Some(format!("{}:{out}", meta.seq)));
        let meta = |seq| ChunkMeta {
            seq,
            first_line: 0,
            lines: 1,
            bytes: 1,
        };
        // Stale reports for already-committed chunks are ignored.
        journal.chunk_done(&meta(0), &"stale".to_string());
        journal.chunk_done(&meta(2), &"c".to_string());
        journal.chunk_done(&meta(3), &"d".to_string());
        let (_, committed) = journal.finish().unwrap();
        assert_eq!(committed, 2);
        assert_eq!(read_journal(&path).unwrap().records, vec!["2:c", "3:d"]);
        std::fs::remove_file(&path).unwrap();
    }
}
