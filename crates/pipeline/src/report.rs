//! Fault-tolerance vocabulary: error policies, per-shard error summaries,
//! and the run report every tolerant entry point returns.
//!
//! Massive real-world NDJSON collections are dirty — truncated documents,
//! stray bytes, nesting bombs — and an all-or-nothing pipeline turns one
//! bad record into a dead run. The types here let a stage *account* for
//! rejected records instead: each shard folds an [`ErrorSummary`] (counts
//! by error kind plus the first few sample diagnostics), summaries merge
//! in shard order exactly like stage outputs, and the caller receives a
//! [`RunReport`] alongside the result. The engine's `catch_unwind` layer
//! reports poisoned shards through the same report as [`ShardPanic`]s.

use std::collections::BTreeMap;
use std::fmt;

/// How many sample diagnostics a summary retains by default. Counts in
/// [`ErrorSummary::by_kind`] are always exact; only the per-record samples
/// are capped.
pub const DIAGNOSTIC_SAMPLES: usize = 8;

/// What to do when a record is rejected (malformed, over a limit, or not
/// the shape the stage requires).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorPolicy {
    /// Abort the run on the first rejected record (the historical
    /// behaviour, and still the default).
    #[default]
    FailFast,
    /// Skip rejected records and keep going; `max_errors` (when set)
    /// bounds how many rejections the whole run tolerates before it fails
    /// anyway.
    Skip {
        /// Abort once the *total* rejection count exceeds this.
        max_errors: Option<usize>,
    },
    /// Like `Skip`, but the summary retains a diagnostic for every
    /// rejected record (up to `max_errors`) rather than just the first
    /// few samples.
    Collect {
        /// Abort once the total rejection count exceeds this.
        max_errors: usize,
    },
}

impl ErrorPolicy {
    /// Whether rejected records are tolerated at all.
    pub fn tolerates(&self) -> bool {
        !matches!(self, ErrorPolicy::FailFast)
    }

    /// The total-rejection bound, if any.
    pub fn max_errors(&self) -> Option<usize> {
        match self {
            ErrorPolicy::FailFast => None,
            ErrorPolicy::Skip { max_errors } => *max_errors,
            ErrorPolicy::Collect { max_errors } => Some(*max_errors),
        }
    }

    /// How many per-record diagnostics a shard summary should retain
    /// under this policy (ignoring any quarantine sink, which needs them
    /// all).
    pub fn sample_cap(&self) -> usize {
        match self {
            ErrorPolicy::FailFast => DIAGNOSTIC_SAMPLES,
            ErrorPolicy::Skip { .. } => DIAGNOSTIC_SAMPLES,
            ErrorPolicy::Collect { max_errors } => *max_errors,
        }
    }
}

/// One rejected record's diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordDiagnostic {
    /// Global record index (0-based NDJSON line number).
    pub record: usize,
    /// Byte offset of the error within the record.
    pub offset: usize,
    /// Stable machine-readable error label (e.g. `"unexpected-eof"`).
    pub kind: &'static str,
    /// Human-readable error message.
    pub message: String,
    /// The raw rejected line, retained only when a quarantine sink needs
    /// to write it back out.
    pub raw: Option<String>,
}

/// Per-shard (and, after merging, per-run) account of rejected records.
///
/// `total` and `by_kind` are exact; `rejects` holds at most the retention
/// cap the stage was configured with, with `dropped` counting the
/// diagnostics that fell past it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ErrorSummary {
    /// Exact number of rejected records.
    pub total: usize,
    /// Exact rejection counts grouped by stable error label.
    pub by_kind: BTreeMap<&'static str, usize>,
    /// Sample diagnostics, in record order after merging.
    pub rejects: Vec<RecordDiagnostic>,
    /// How many diagnostics were discarded past the retention cap.
    pub dropped: usize,
}

impl ErrorSummary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one rejection, retaining its diagnostic only while under
    /// `cap`.
    pub fn push(&mut self, diag: RecordDiagnostic, cap: usize) {
        self.total += 1;
        *self.by_kind.entry(diag.kind).or_insert(0) += 1;
        if self.rejects.len() < cap {
            self.rejects.push(diag);
        } else {
            self.dropped += 1;
        }
    }

    /// Merges `right` (the later shard) into `self`, re-applying the
    /// retention cap so the merged sample set is the *earliest* `cap`
    /// diagnostics — the ones a sequential run would have kept.
    pub fn merge(&mut self, right: ErrorSummary, cap: usize) {
        self.total += right.total;
        for (kind, n) in right.by_kind {
            *self.by_kind.entry(kind).or_insert(0) += n;
        }
        self.dropped += right.dropped;
        for diag in right.rejects {
            if self.rejects.len() < cap {
                self.rejects.push(diag);
            } else {
                self.dropped += 1;
            }
        }
    }

    /// Whether nothing was rejected.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// A worker panic caught by the engine, with shard provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPanic {
    /// Shard number (in shard order).
    pub shard: usize,
    /// Global index of the shard's first record.
    pub first_record: usize,
    /// The panic payload, when it was a string.
    pub message: String,
}

impl fmt::Display for ShardPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker panicked in shard {} (first record {}): {}",
            self.shard, self.first_record, self.message
        )
    }
}

impl std::error::Error for ShardPanic {}

/// Per-worker account of a chunked (work-stealing) run, collected only
/// when timing is requested ([`ChunkOptions::timing`](crate::ChunkOptions)):
/// how the dynamic dispatcher actually spread the work, and whether any
/// worker ran ahead of its static share (stole).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerTiming {
    /// Worker index (0-based).
    pub worker: usize,
    /// Chunks this worker claimed.
    pub chunks: usize,
    /// Lines this worker fed through the fold (blank lines included).
    pub records: usize,
    /// Bytes of chunk text this worker processed.
    pub bytes: usize,
    /// Time spent inside chunk processing (excludes claim waits), summed
    /// over the worker's chunks. Stored as a [`std::time::Duration`] so
    /// the report stays `Eq`; derive rates at display time.
    pub busy: std::time::Duration,
    /// Chunks claimed beyond this worker's static fair share
    /// (`chunks - ceil(total_chunks / workers)`, floored at 0) — a direct
    /// count of work stolen from slower workers' shares.
    pub steals: usize,
}

impl WorkerTiming {
    /// Records per second over this worker's busy time (0 when idle).
    pub fn records_per_sec(&self) -> f64 {
        let secs = self.busy.as_secs_f64();
        if secs > 0.0 {
            self.records as f64 / secs
        } else {
            0.0
        }
    }

    /// Bytes per second over this worker's busy time (0 when idle).
    pub fn bytes_per_sec(&self) -> f64 {
        let secs = self.busy.as_secs_f64();
        if secs > 0.0 {
            self.bytes as f64 / secs
        } else {
            0.0
        }
    }
}

/// The account of one tolerant streaming run, returned alongside the
/// stage result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Number of non-blank records processed (accepted + rejected).
    pub records: usize,
    /// Number of work units the input was split into: static shards on
    /// the pre-split path, claimed chunks on the work-stealing path
    /// (1 on the sequential path).
    pub shards: usize,
    /// The merged rejection account.
    pub errors: ErrorSummary,
    /// Shards whose worker panicked; their partial results are lost but
    /// the remaining shards still merge.
    pub poisoned: Vec<ShardPanic>,
    /// Per-worker timing, populated only when the run requested it
    /// (empty otherwise, so untimed reports compare as before).
    pub timings: Vec<WorkerTiming>,
}

impl RunReport {
    /// Whether every record was accepted and no shard panicked.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty() && self.poisoned.is_empty()
    }

    /// Merges `right` (the later run) into `self`, so long-lived services
    /// can aggregate many per-request or per-connection reports into one
    /// final account. Error samples re-apply `cap` exactly like
    /// [`ErrorSummary::merge`]; panic provenance and timings concatenate.
    pub fn merge(&mut self, right: RunReport, cap: usize) {
        self.records += right.records;
        self.shards += right.shards;
        self.errors.merge(right.errors, cap);
        self.poisoned.extend(right.poisoned);
        self.timings.extend(right.timings);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(record: usize, kind: &'static str) -> RecordDiagnostic {
        RecordDiagnostic {
            record,
            offset: 0,
            kind,
            message: format!("boom at {record}"),
            raw: None,
        }
    }

    #[test]
    fn push_caps_samples_but_counts_exactly() {
        let mut s = ErrorSummary::new();
        for i in 0..10 {
            s.push(diag(i, if i % 2 == 0 { "even" } else { "odd" }), 3);
        }
        assert_eq!(s.total, 10);
        assert_eq!(s.by_kind["even"], 5);
        assert_eq!(s.by_kind["odd"], 5);
        assert_eq!(s.rejects.len(), 3);
        assert_eq!(s.dropped, 7);
    }

    #[test]
    fn merge_keeps_earliest_samples_in_shard_order() {
        let mut left = ErrorSummary::new();
        left.push(diag(1, "a"), 4);
        left.push(diag(3, "a"), 4);
        let mut right = ErrorSummary::new();
        right.push(diag(7, "b"), 4);
        right.push(diag(9, "b"), 4);
        right.push(diag(11, "b"), 4);
        left.merge(right, 4);
        assert_eq!(left.total, 5);
        let records: Vec<usize> = left.rejects.iter().map(|d| d.record).collect();
        assert_eq!(records, vec![1, 3, 7, 9]);
        assert_eq!(left.dropped, 1);
        assert_eq!(left.by_kind["a"], 2);
        assert_eq!(left.by_kind["b"], 3);
    }

    #[test]
    fn run_report_merge_aggregates_and_recaps() {
        let mut left = RunReport {
            records: 3,
            shards: 1,
            ..RunReport::default()
        };
        left.errors.push(diag(0, "a"), 2);
        let mut right = RunReport {
            records: 5,
            shards: 2,
            ..RunReport::default()
        };
        right.errors.push(diag(4, "b"), 2);
        right.errors.push(diag(6, "b"), 2);
        right.poisoned.push(ShardPanic {
            shard: 1,
            first_record: 4,
            message: "boom".into(),
        });
        left.merge(right, 2);
        assert_eq!(left.records, 8);
        assert_eq!(left.shards, 3);
        assert_eq!(left.errors.total, 3);
        assert_eq!(left.errors.rejects.len(), 2, "cap re-applied on merge");
        assert_eq!(left.errors.dropped, 1);
        assert_eq!(left.poisoned.len(), 1);
        assert!(!left.is_clean());
    }

    #[test]
    fn policy_helpers() {
        assert!(!ErrorPolicy::FailFast.tolerates());
        assert!(ErrorPolicy::Skip { max_errors: None }.tolerates());
        assert_eq!(
            ErrorPolicy::Skip {
                max_errors: Some(5)
            }
            .max_errors(),
            Some(5)
        );
        assert_eq!(
            ErrorPolicy::Collect { max_errors: 9 }.sample_cap(),
            9,
            "collect retains up to max_errors diagnostics"
        );
        assert_eq!(ErrorPolicy::default(), ErrorPolicy::FailFast);
    }
}
