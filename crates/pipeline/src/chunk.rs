//! Out-of-core chunked input: newline-aligned byte chunks with sequence
//! numbers, claimed dynamically by workers.
//!
//! A [`ChunkSource`] replaces the static newline pre-split as the unit of
//! work distribution. Workers *claim* chunks one at a time — a shared
//! atomic cursor over pre-split descriptors for in-memory input
//! ([`SliceChunks`]), a guarded incremental reader for input larger than
//! RAM ([`ReaderChunks`]) — so a straggler chunk delays only the worker
//! holding it while the rest of the pool keeps draining the queue. Every
//! chunk carries its **sequence number** and the global index of its
//! first line; the engine fuses per-chunk results in sequence order, so
//! the merge contract (and with it FailFast first-error-line selection
//! and `RunReport` determinism) is exactly the static-shard one.
//!
//! Bounded memory: [`ReaderChunks`] hands out owned chunk buffers and
//! takes them back through [`ChunkSource::recycle`], retaining at most a
//! small ring of them. Each worker holds at most one chunk at a time, so
//! peak resident chunk memory is `O(workers × chunk_bytes)` (plus one
//! oversized record, since chunks are never split mid-line) regardless of
//! corpus size.

use crate::shard::chunk_lines;
use std::borrow::Cow;
use std::fmt;
use std::io::BufRead;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default target chunk size for chunked dispatch (1 MiB): large enough
/// to amortise claim-cursor traffic and per-chunk state extraction, small
/// enough that a corpus splits into many stealable units per worker.
pub const DEFAULT_CHUNK_BYTES: usize = 1 << 20;

/// How many chunks per worker the automatic chunk sizing aims for. More
/// chunks means finer-grained stealing (stragglers redistribute better)
/// at the cost of more claim/merge overhead.
pub(crate) const CHUNKS_PER_WORKER: usize = 8;

/// Knobs for chunked (work-stealing / out-of-core) dispatch, orthogonal
/// to the sharding options in
/// [`PipelineOptions`](crate::PipelineOptions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkOptions {
    /// Target chunk size in **bytes**; chunks end at the first newline at
    /// or past the target, so a record longer than the target simply
    /// yields a bigger chunk (records are never split). `0` means
    /// automatic: in-memory inputs aim for [`CHUNKS_PER_WORKER`] chunks
    /// per worker (clamped to `[min_shard_bytes, DEFAULT_CHUNK_BYTES]`),
    /// readers use [`DEFAULT_CHUNK_BYTES`].
    pub chunk_bytes: usize,
    /// Maximum recycled chunk buffers a [`ReaderChunks`] retains
    /// (`0` = one per worker). Live buffers are additionally bounded by
    /// the worker count, since each worker holds at most one chunk.
    pub ring: usize,
    /// Collect per-worker timing
    /// ([`WorkerTiming`](crate::WorkerTiming)): chunks claimed, records,
    /// bytes, busy time and steal counts.
    pub timing: bool,
}

impl ChunkOptions {
    /// An explicit target chunk size in bytes (see
    /// [`chunk_bytes`](Self::chunk_bytes)).
    pub fn with_chunk_bytes(chunk_bytes: usize) -> Self {
        ChunkOptions {
            chunk_bytes,
            ..Default::default()
        }
    }
}

/// One claimed unit of work: a newline-aligned run of whole lines.
#[derive(Debug)]
pub struct Chunk<'a> {
    /// Position of this chunk in the input's chunk sequence; per-chunk
    /// results are fused in `seq` order.
    pub seq: usize,
    /// Global (whole-input) index of the chunk's first line.
    pub first_line: usize,
    /// The chunk's text: borrowed for in-memory sources, owned (and
    /// recyclable) for readers.
    pub text: Cow<'a, str>,
}

/// Why a chunk source stopped producing chunks.
#[derive(Debug)]
pub enum ChunkError {
    /// The underlying reader failed.
    Io {
        /// Sequence number the failed chunk would have had.
        chunk: usize,
        /// The reader's error.
        source: std::io::Error,
    },
    /// The input is not valid UTF-8.
    NotUtf8 {
        /// Zero-based line index where the invalid byte sequence starts.
        line: usize,
    },
}

impl fmt::Display for ChunkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkError::Io { chunk, source } => {
                write!(f, "reading input chunk {chunk}: {source}")
            }
            ChunkError::NotUtf8 { line } => {
                write!(f, "input is not valid UTF-8 (at line {})", line + 1)
            }
        }
    }
}

impl std::error::Error for ChunkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChunkError::Io { source, .. } => Some(source),
            ChunkError::NotUtf8 { .. } => None,
        }
    }
}

/// A shared queue of newline-aligned chunks, claimed by workers one at a
/// time. Implementations must be safely claimable from many threads
/// (`Sync`); `next_chunk` takes `&self`.
pub trait ChunkSource: Sync {
    /// Claims the next chunk, `Ok(None)` once the input is exhausted.
    /// Claims are totally ordered by `seq` but workers interleave freely.
    fn next_chunk(&self) -> Result<Option<Chunk<'_>>, ChunkError>;

    /// Returns an owned chunk buffer for reuse after the worker has
    /// drained it. In-memory sources hand out borrowed text and ignore
    /// this.
    fn recycle(&self, _buf: String) {}
}

// ---------------------------------------------------------------------------
// In-memory source
// ---------------------------------------------------------------------------

/// Zero-copy chunk source over an in-memory slice: the input is pre-split
/// into newline-aligned descriptors once, and workers claim them through
/// a shared atomic cursor — the work-stealing replacement for handing
/// each worker one big static shard.
pub struct SliceChunks<'a> {
    chunks: Vec<crate::shard::Shard<'a>>,
    cursor: AtomicUsize,
}

impl<'a> SliceChunks<'a> {
    /// Pre-splits `input` at newline boundaries into chunks of roughly
    /// `target_bytes` each (a record longer than the target gets its own
    /// oversized chunk).
    pub fn new(input: &'a str, target_bytes: usize) -> Self {
        SliceChunks {
            chunks: chunk_lines(input, target_bytes),
            cursor: AtomicUsize::new(0),
        }
    }

    /// How many chunks the input split into.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the input produced no chunks (empty input).
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }
}

impl ChunkSource for SliceChunks<'_> {
    fn next_chunk(&self) -> Result<Option<Chunk<'_>>, ChunkError> {
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
        Ok(self.chunks.get(idx).map(|shard| Chunk {
            seq: idx,
            first_line: shard.first_line,
            text: Cow::Borrowed(shard.text),
        }))
    }
}

// ---------------------------------------------------------------------------
// Out-of-core reader source
// ---------------------------------------------------------------------------

/// Incremental chunk source over any [`BufRead`]: corpora much larger
/// than RAM stream through a bounded ring of reusable chunk buffers.
///
/// Each claim reads whole lines until the buffer reaches the target
/// size (or EOF), so chunks are newline-aligned by construction and the
/// chunk's line count is exact without a rescan. Reads are serialised
/// behind a mutex — the reader is effectively a single producer — while
/// chunk *processing* runs unlocked on the claiming worker.
pub struct ReaderChunks<R> {
    inner: Mutex<ReaderState<R>>,
    chunk_bytes: usize,
    ring: usize,
}

struct ReaderState<R> {
    reader: R,
    pool: Vec<String>,
    seq: usize,
    next_line: usize,
    done: bool,
}

impl<R: BufRead> ReaderChunks<R> {
    /// Wraps `reader`, targeting `chunk_bytes` per chunk and retaining at
    /// most `ring` recycled buffers (both floored at sane minimums).
    pub fn new(reader: R, chunk_bytes: usize, ring: usize) -> Self {
        Self::with_offset(reader, chunk_bytes, ring, 0, 0)
    }

    /// Like [`new`](Self::new) but starting the chunk sequence at
    /// `first_seq` and the global line numbering at `first_line` — the
    /// resume constructor. The caller must have positioned `reader` at
    /// the byte offset where chunk `first_seq` begins (the sum of the
    /// committed chunks' byte lengths); chunk boundaries depend only on
    /// the byte stream and `chunk_bytes`, never the worker count, so the
    /// resumed sequence reproduces the original run's chunks exactly.
    pub fn with_offset(
        reader: R,
        chunk_bytes: usize,
        ring: usize,
        first_seq: usize,
        first_line: usize,
    ) -> Self {
        ReaderChunks {
            inner: Mutex::new(ReaderState {
                reader,
                pool: Vec::new(),
                seq: first_seq,
                next_line: first_line,
                done: false,
            }),
            chunk_bytes: chunk_bytes.max(1),
            ring: ring.max(1),
        }
    }
}

/// `read_line` with `ErrorKind::Interrupted` retried instead of surfaced.
///
/// A signal landing mid-read (`EINTR`) is a transient condition, not data
/// loss: `read_line` appends nothing for the interrupted call, so retrying
/// resumes exactly where the read left off. Std's default `read_until`
/// already swallows `Interrupted` internally, but `BufRead` implementors
/// may override `read_line` (network streams, test doubles, instrumented
/// readers), so the engine guards here rather than trusting every `R` —
/// without this, one stray signal would poison the whole run as a fatal
/// [`ChunkError::Io`].
fn read_line_retrying<R: BufRead>(reader: &mut R, buf: &mut String) -> std::io::Result<usize> {
    loop {
        match reader.read_line(buf) {
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            other => return other,
        }
    }
}

impl<R: BufRead + Send> ChunkSource for ReaderChunks<R> {
    fn next_chunk(&self) -> Result<Option<Chunk<'_>>, ChunkError> {
        let mut st = self.inner.lock().unwrap();
        if st.done {
            return Ok(None);
        }
        let mut buf = st.pool.pop().unwrap_or_default();
        buf.clear();
        let first_line = st.next_line;
        let mut lines = 0usize;
        while buf.len() < self.chunk_bytes {
            // `read_line` appends up to and including the next newline and
            // validates UTF-8, so the chunk stays newline-aligned and a
            // bad byte sequence surfaces as a clean diagnostic.
            match read_line_retrying(&mut st.reader, &mut buf) {
                Ok(0) => {
                    st.done = true;
                    break;
                }
                Ok(_) => lines += 1,
                Err(e) => {
                    // Latch exhaustion so the other workers drain out
                    // cleanly while this claim carries the error.
                    st.done = true;
                    return Err(if e.kind() == std::io::ErrorKind::InvalidData {
                        ChunkError::NotUtf8 {
                            line: first_line + lines,
                        }
                    } else {
                        ChunkError::Io {
                            chunk: st.seq,
                            source: e,
                        }
                    });
                }
            }
        }
        if buf.is_empty() {
            if st.pool.len() < self.ring {
                st.pool.push(buf);
            }
            return Ok(None);
        }
        st.next_line += lines;
        let seq = st.seq;
        st.seq += 1;
        Ok(Some(Chunk {
            seq,
            first_line,
            text: Cow::Owned(buf),
        }))
    }

    fn recycle(&self, mut buf: String) {
        // A chunk that swallowed one giant record would pin its capacity
        // forever; let oversized buffers drop instead.
        if buf.capacity() > self.chunk_bytes.saturating_mul(2) {
            return;
        }
        let mut st = self.inner.lock().unwrap();
        if st.pool.len() < self.ring {
            buf.clear();
            st.pool.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn drain<S: ChunkSource>(source: &S) -> Vec<(usize, usize, String)> {
        let mut out = Vec::new();
        while let Some(chunk) = source.next_chunk().unwrap() {
            out.push((chunk.seq, chunk.first_line, chunk.text.to_string()));
            if let Cow::Owned(buf) = chunk.text {
                source.recycle(buf);
            }
        }
        out
    }

    fn corpus(n: usize) -> String {
        (0..n).map(|i| format!("{{\"id\": {i}}}\n")).collect()
    }

    #[test]
    fn slice_and_reader_chunks_agree() {
        for input in [
            corpus(100),
            corpus(1),
            "no trailing newline".to_string(),
            "a\n\n\nb".to_string(),
            String::new(),
        ] {
            for target in [1usize, 7, 64, 1 << 20] {
                let slice = SliceChunks::new(&input, target);
                let from_slice = drain(&slice);
                let reader = ReaderChunks::new(Cursor::new(input.as_bytes()), target, 2);
                let from_reader = drain(&reader);
                assert_eq!(from_slice, from_reader, "target={target}");
                let rejoined: String = from_slice.iter().map(|(_, _, t)| t.as_str()).collect();
                assert_eq!(rejoined, input);
                // Sequence numbers are dense and first_line is cumulative.
                let mut line = 0usize;
                for (i, (seq, first_line, text)) in from_slice.iter().enumerate() {
                    assert_eq!(*seq, i);
                    assert_eq!(*first_line, line);
                    line += text.lines().count();
                }
            }
        }
    }

    #[test]
    fn oversized_record_gets_its_own_chunk() {
        let long = format!("{{\"blob\": \"{}\"}}\n", "x".repeat(4096));
        let input = format!("{{\"a\": 1}}\n{long}{{\"b\": 2}}\n");
        let source = SliceChunks::new(&input, 16);
        let chunks = drain(&source);
        assert!(chunks.iter().any(|(_, _, t)| t.len() > 4096));
        // Every chunk is newline-terminated (no record split).
        for (_, _, text) in &chunks {
            assert!(text.ends_with('\n'));
        }
        let rejoined: String = chunks.iter().map(|(_, _, t)| t.as_str()).collect();
        assert_eq!(rejoined, input);
    }

    #[test]
    fn reader_rejects_non_utf8_cleanly() {
        let mut bytes = b"{\"ok\": 1}\n".to_vec();
        bytes.extend_from_slice(&[0xff, 0xfe, b'\n']);
        let reader = ReaderChunks::new(Cursor::new(bytes), 4, 2);
        // First claim may carry the valid line or the error depending on
        // the target; drain until the error surfaces.
        let mut saw_error = None;
        loop {
            match reader.next_chunk() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    saw_error = Some(e);
                    break;
                }
            }
        }
        match saw_error {
            Some(ChunkError::NotUtf8 { line }) => assert_eq!(line, 1),
            other => panic!("expected NotUtf8, got {other:?}"),
        }
        // After an error the source reports exhaustion, not a hang.
        assert!(matches!(reader.next_chunk(), Ok(None)));
    }

    /// A reader whose `read_line` fails with `Interrupted` on every other
    /// call — the EINTR shape `read_line_retrying` must absorb.
    struct FlakyReader {
        inner: Cursor<Vec<u8>>,
        calls: usize,
    }

    impl std::io::Read for FlakyReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.inner.read(buf)
        }
    }

    impl BufRead for FlakyReader {
        fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
            self.inner.fill_buf()
        }

        fn consume(&mut self, amt: usize) {
            self.inner.consume(amt)
        }

        fn read_line(&mut self, buf: &mut String) -> std::io::Result<usize> {
            self.calls += 1;
            if self.calls % 2 == 1 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "signal landed mid-read",
                ));
            }
            self.inner.read_line(buf)
        }
    }

    #[test]
    fn interrupted_reads_are_retried_not_fatal() {
        let input = corpus(50);
        for target in [1usize, 16, 1 << 20] {
            let flaky = FlakyReader {
                inner: Cursor::new(input.clone().into_bytes()),
                calls: 0,
            };
            let reader = ReaderChunks::new(flaky, target, 2);
            let chunks = drain(&reader);
            let rejoined: String = chunks.iter().map(|(_, _, t)| t.as_str()).collect();
            assert_eq!(rejoined, input, "target={target}");
        }
    }

    #[test]
    fn non_interrupted_errors_still_surface() {
        struct BrokenReader;
        impl std::io::Read for BrokenReader {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        impl BufRead for BrokenReader {
            fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn consume(&mut self, _amt: usize) {}
        }
        let reader = ReaderChunks::new(BrokenReader, 8, 1);
        match reader.next_chunk() {
            Err(ChunkError::Io { chunk, .. }) => assert_eq!(chunk, 0),
            other => panic!("expected Io error, got {other:?}"),
        }
        assert!(matches!(reader.next_chunk(), Ok(None)));
    }

    #[test]
    fn recycle_bounds_the_pool() {
        let reader = ReaderChunks::new(Cursor::new(corpus(10).into_bytes()), 8, 1);
        reader.recycle(String::with_capacity(8));
        reader.recycle(String::with_capacity(8));
        assert_eq!(reader.inner.lock().unwrap().pool.len(), 1);
        // Oversized buffers are dropped, not retained.
        let reader = ReaderChunks::new(Cursor::new(Vec::new()), 8, 4);
        reader.recycle(String::with_capacity(1024));
        assert_eq!(reader.inner.lock().unwrap().pool.len(), 0);
    }
}
