//! Worker-count and sequential-fallback options shared by every pipeline
//! stage.

/// Resolves a requested worker count: `0` means one worker per available
/// CPU. This is the single source of truth the whole workspace uses.
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Options for byte-sharded (NDJSON) pipeline stages — re-exported as
/// `StreamingOptions` from the facade crate.
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    /// Number of worker threads (0 = number of available CPUs).
    pub workers: usize,
    /// Minimum shard size in **bytes** (not lines or items — contrast
    /// [`SliceOptions::min_chunk`], which counts items). Inputs shorter
    /// than twice this run sequentially, on both the static-shard and
    /// the byte-chunked work-stealing dispatch paths (see
    /// [`should_run_sequential`](Self::should_run_sequential)).
    pub min_shard_bytes: usize,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            workers: 0,
            min_shard_bytes: 64 * 1024,
        }
    }
}

impl PipelineOptions {
    /// A fixed worker count (used by the benches and the CLI).
    pub fn with_workers(workers: usize) -> Self {
        PipelineOptions {
            workers,
            ..Default::default()
        }
    }

    /// The resolved worker count (see [`resolve_workers`]).
    pub fn effective_workers(&self) -> usize {
        resolve_workers(self.workers)
    }

    /// Whether an input of `input_len` **bytes** should run on the
    /// sequential path: a single worker, or an input too small to be
    /// worth splitting (under `2 × min_shard_bytes`). Both dispatch
    /// strategies — static shards and byte-chunked work stealing — use
    /// this same threshold, so the tiny-input fallback picks the
    /// sequential path regardless of how the input would be split.
    pub fn should_run_sequential(&self, input_len: usize) -> bool {
        self.effective_workers().max(1) == 1 || input_len < self.min_shard_bytes.saturating_mul(2)
    }
}

/// Options for item-sharded (`&[T]`) pipeline stages — re-exported as
/// `ParallelOptions` from `jsonx-core`.
#[derive(Debug, Clone, Copy)]
pub struct SliceOptions {
    /// Number of worker threads (0 = number of available CPUs).
    pub workers: usize,
    /// Minimum **items** per partition (not bytes — contrast
    /// [`PipelineOptions::min_shard_bytes`]); collections shorter than
    /// twice this run sequentially.
    pub min_chunk: usize,
}

impl Default for SliceOptions {
    fn default() -> Self {
        SliceOptions {
            workers: 0,
            min_chunk: 256,
        }
    }
}

impl SliceOptions {
    /// A fixed worker count (used by the scalability experiment E6).
    pub fn with_workers(workers: usize) -> Self {
        SliceOptions {
            workers,
            ..Default::default()
        }
    }

    /// The resolved worker count (see [`resolve_workers`]).
    pub fn effective_workers(&self) -> usize {
        resolve_workers(self.workers)
    }

    /// Whether a collection of `len` **items** should run on the
    /// sequential path: a single worker, or a collection too small to be
    /// worth splitting (under `2 × min_chunk` items).
    pub fn should_run_sequential(&self, len: usize) -> bool {
        self.effective_workers().max(1) == 1 || len < self.min_chunk.max(1) * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_workers_resolves_to_cpus() {
        assert!(resolve_workers(0) >= 1);
        assert_eq!(resolve_workers(5), 5);
    }

    #[test]
    fn defaults_match_historical_values() {
        let p = PipelineOptions::default();
        assert_eq!((p.workers, p.min_shard_bytes), (0, 64 * 1024));
        let s = SliceOptions::default();
        assert_eq!((s.workers, s.min_chunk), (0, 256));
    }

    #[test]
    fn small_inputs_are_sequential() {
        let p = PipelineOptions {
            workers: 4,
            min_shard_bytes: 100,
        };
        assert!(p.should_run_sequential(199));
        assert!(!p.should_run_sequential(200));
        let s = SliceOptions {
            workers: 4,
            min_chunk: 10,
        };
        assert!(s.should_run_sequential(19));
        assert!(!s.should_run_sequential(20));
    }
}
