//! Property test: the word-parallel bitmap builder agrees bit-for-bit
//! with the scalar reference implementation on arbitrary byte strings —
//! escapes, chunk boundaries and all.

use jsonx_mison::bitmap::{build, build_scalar};
use proptest::prelude::*;

fn assert_equal(input: &[u8]) {
    let fast = build(input);
    let slow = build_scalar(input);
    assert_eq!(fast.quote, slow.quote, "quote on {input:?}");
    assert_eq!(fast.colon, slow.colon, "colon on {input:?}");
    assert_eq!(fast.comma, slow.comma, "comma on {input:?}");
    assert_eq!(fast.lbrace, slow.lbrace, "lbrace on {input:?}");
    assert_eq!(fast.rbrace, slow.rbrace, "rbrace on {input:?}");
    assert_eq!(fast.lbracket, slow.lbracket, "lbracket on {input:?}");
    assert_eq!(fast.rbracket, slow.rbracket, "rbracket on {input:?}");
    assert_eq!(fast.string_mask, slow.string_mask, "mask on {input:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn agrees_on_structural_soup(
        bytes in prop::collection::vec(
            prop::sample::select(b"\\\":,{}[]ax \n".to_vec()), 0..300)
    ) {
        assert_equal(&bytes);
    }

    #[test]
    fn agrees_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        assert_equal(&bytes);
    }

    #[test]
    fn agrees_around_chunk_boundaries(
        pad in 50usize..80,
        tail in prop::collection::vec(prop::sample::select(b"\\\"x".to_vec()), 0..20)
    ) {
        // Put escape-sensitive bytes right at the 64-byte boundary.
        let mut input = vec![b'x'; pad];
        input.extend_from_slice(&tail);
        assert_equal(&input);
    }
}
