//! Property test: projection agrees with the full parser on arbitrary
//! generated corpora — the correctness contract behind E9's speed claims.

use jsonx_gen::{Corpus, DialedGenerator, GeneratorConfig};
use jsonx_mison::{ProjectedParser, SpeculativeDecoder};
use jsonx_syntax::to_string;
use proptest::prelude::*;

#[test]
fn projection_agrees_on_fixed_corpora() {
    for corpus in Corpus::FIXED {
        let docs = corpus.generate(50);
        // Project the first document's first two top-level fields.
        let first = docs[0].as_object().unwrap();
        let fields: Vec<&str> = first.keys().take(3).collect();
        let parser = ProjectedParser::new(&fields).unwrap();
        for doc in &docs {
            let text = to_string(doc);
            let projected = parser.parse(text.as_bytes()).unwrap();
            for f in &fields {
                assert_eq!(
                    projected.get(f),
                    doc.get(f),
                    "corpus {} field {f} doc {text}",
                    corpus.name()
                );
            }
        }
    }
}

#[test]
fn speculative_decoder_agrees_on_fixed_corpora() {
    let docs = Corpus::Twitter.generate(100);
    let decoder = SpeculativeDecoder::new();
    for doc in &docs {
        let text = to_string(doc);
        for field in ["id", "user", "coordinates", "nonexistent_field"] {
            assert_eq!(
                decoder.get_field(text.as_bytes(), field),
                doc.get(field).cloned(),
                "field {field} doc {text}"
            );
        }
    }
    // Probes for the absent field always miss (they scan and find
    // nothing to learn), capping the rate at 75%; the three real fields
    // should hit almost always after warmup.
    assert!(
        decoder.stats().hit_rate() > 0.6,
        "rate={}",
        decoder.stats().hit_rate()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn projection_agrees_on_dialed_corpora(seed in 0u64..5000, noise in 0u8..=100) {
        let config = GeneratorConfig {
            seed,
            type_noise: f64::from(noise) / 100.0,
            shape_variants: 1 + (seed % 3) as usize,
            ..Default::default()
        };
        let docs = DialedGenerator::new(config).generate(5);
        let parser = ProjectedParser::new(&["id", "f0", "f1", "nested.f2"]).unwrap();
        for doc in &docs {
            let text = to_string(doc);
            match parser.parse(text.as_bytes()) {
                Ok(projected) => {
                    prop_assert_eq!(projected.get("id"), doc.get("id"));
                    prop_assert_eq!(projected.get("f0"), doc.get("f0"));
                    if let Some(nested) = projected.get("nested") {
                        prop_assert_eq!(
                            nested.get("f2"),
                            doc.get("nested").and_then(|n| n.get("f2"))
                        );
                    }
                }
                Err(e) => {
                    // Descending into a non-object is the only allowed error.
                    prop_assert!(
                        matches!(e, jsonx_mison::project::ProjectError::NotAnObject),
                        "unexpected error {e} on {}", text
                    );
                }
            }
        }
    }
}
