//! Projection pushdown: parse only the fields an analytics task needs.

use crate::index::StructuralIndex;
use jsonx_data::{Object, Value};
use jsonx_syntax::{parse_bytes, ParseError};
use std::collections::BTreeMap;
use std::fmt;

/// A tree of wanted fields, e.g. `["id", "user.name", "user.bio"]` becomes
/// `{id: leaf, user: {name: leaf, bio: leaf}}`.
#[derive(Debug, Clone, Default)]
struct FieldTree {
    children: BTreeMap<String, FieldTree>,
}

impl FieldTree {
    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    fn depth(&self) -> usize {
        1 + self
            .children
            .values()
            .map(FieldTree::depth)
            .max()
            .unwrap_or(0)
    }
}

/// Errors from projected parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum ProjectError {
    /// An empty or malformed field path was requested.
    BadFieldPath(String),
    /// The document is not an object at a level the projection descends.
    NotAnObject,
    /// A projected path descends into a field that is not an object.
    NotAnObjectAt { field: String },
    /// A projected value failed to parse.
    Value(ParseError),
}

impl fmt::Display for ProjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjectError::BadFieldPath(p) => write!(f, "bad field path '{p}'"),
            ProjectError::NotAnObject => write!(f, "document is not an object"),
            ProjectError::NotAnObjectAt { field } => {
                write!(f, "cannot descend into '{field}': not an object")
            }
            ProjectError::Value(e) => write!(f, "projected value: {e}"),
        }
    }
}

impl std::error::Error for ProjectError {}

/// A reusable projected parser for a fixed field set.
#[derive(Debug, Clone)]
pub struct ProjectedParser {
    fields: FieldTree,
    /// Index depth needed = depth of the field tree.
    levels: usize,
}

impl ProjectedParser {
    /// Builds a parser for dotted field paths (`"user.name"`).
    pub fn new(paths: &[&str]) -> Result<ProjectedParser, ProjectError> {
        let mut root = FieldTree::default();
        for path in paths {
            if path.is_empty() {
                return Err(ProjectError::BadFieldPath(path.to_string()));
            }
            let mut node = &mut root;
            for seg in path.split('.') {
                if seg.is_empty() {
                    return Err(ProjectError::BadFieldPath(path.to_string()));
                }
                node = node.children.entry(seg.to_string()).or_default();
            }
        }
        let levels = root.depth().saturating_sub(1).max(1);
        Ok(ProjectedParser {
            fields: root,
            levels,
        })
    }

    /// Index depth this projection builds.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Parses only the projected fields of `input`, returning an object
    /// mirroring the requested structure.
    pub fn parse(&self, input: &[u8]) -> Result<Object, ProjectError> {
        let index = StructuralIndex::build(input, self.levels);
        let root = index.root_span().ok_or(ProjectError::NotAnObject)?;
        if input[root.start] != b'{' {
            return Err(ProjectError::NotAnObject);
        }
        self.extract(input, &index, &self.fields, 1, root)
    }

    fn extract(
        &self,
        input: &[u8],
        index: &StructuralIndex,
        wanted: &FieldTree,
        level: usize,
        span: std::ops::Range<usize>,
    ) -> Result<Object, ProjectError> {
        let mut out = Object::new();
        let mut remaining = wanted.children.len();
        for &colon in index.colons_in(level, span.clone()) {
            if remaining == 0 {
                break; // all projected fields found — stop scanning
            }
            let colon = colon as usize;
            // Only colons directly inside *this* object: a colon at this
            // level but belonging to a sibling container cannot occur,
            // because `span` bounds the object.
            let Some(key_range) = index.key_before(colon) else {
                continue;
            };
            let key = decode_key(&input[key_range]);
            let Some(subtree) = wanted.children.get(key.as_ref()) else {
                continue;
            };
            let end = index.value_end(level, colon, span.clone());
            let raw = &input[colon + 1..end];
            if subtree.is_leaf() {
                let value = parse_bytes(trim(raw)).map_err(ProjectError::Value)?;
                out.insert(key.into_owned(), value);
            } else {
                // Descend: the value must be an object; find its span.
                let open = colon + 1 + leading_ws(raw);
                if input.get(open) != Some(&b'{') {
                    return Err(ProjectError::NotAnObjectAt {
                        field: key.into_owned(),
                    });
                }
                let child_span = index
                    .container_span(open)
                    .ok_or(ProjectError::NotAnObject)?;
                let inner = self.extract(input, index, subtree, level + 1, child_span)?;
                out.insert(key.into_owned(), Value::Obj(inner));
            }
            remaining -= 1;
        }
        Ok(out)
    }
}

fn leading_ws(raw: &[u8]) -> usize {
    raw.iter()
        .take_while(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        .count()
}

fn trim(raw: &[u8]) -> &[u8] {
    let start = leading_ws(raw);
    let end = raw.len()
        - raw
            .iter()
            .rev()
            .take_while(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
            .count();
    &raw[start..end.max(start)]
}

/// Decodes a key's escaped bytes (fast path: no backslash → borrowed).
fn decode_key(escaped: &[u8]) -> std::borrow::Cow<'_, str> {
    if !escaped.contains(&b'\\') {
        return String::from_utf8_lossy(escaped);
    }
    // Rare path: run the real string scanner over a re-quoted slice.
    let mut quoted = Vec::with_capacity(escaped.len() + 2);
    quoted.push(b'"');
    quoted.extend_from_slice(escaped);
    quoted.push(b'"');
    match parse_bytes(&quoted) {
        Ok(Value::Str(s)) => std::borrow::Cow::Owned(s),
        _ => String::from_utf8_lossy(escaped).into_owned().into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    const DOC: &[u8] =
        br#"{"id": 7, "user": {"name": "ada", "bio": "long text, with: tricks"}, "big": [1,2,3,{"deep": true}], "flag": false}"#;

    #[test]
    fn top_level_projection() {
        let p = ProjectedParser::new(&["id", "flag"]).unwrap();
        let out = p.parse(DOC).unwrap();
        assert_eq!(out.get("id"), Some(&json!(7)));
        assert_eq!(out.get("flag"), Some(&json!(false)));
        assert_eq!(out.len(), 2);
        assert_eq!(p.levels(), 1);
    }

    #[test]
    fn nested_projection() {
        let p = ProjectedParser::new(&["user.name"]).unwrap();
        let out = p.parse(DOC).unwrap();
        assert_eq!(Value::Obj(out), json!({"user": {"name": "ada"}}));
    }

    #[test]
    fn mixed_depth_projection() {
        let p = ProjectedParser::new(&["user.bio", "id"]).unwrap();
        let out = p.parse(DOC).unwrap();
        assert_eq!(out.get("id"), Some(&json!(7)));
        assert_eq!(
            out.get("user").unwrap().get("bio").unwrap(),
            &json!("long text, with: tricks")
        );
    }

    #[test]
    fn whole_container_as_leaf() {
        let p = ProjectedParser::new(&["big"]).unwrap();
        let out = p.parse(DOC).unwrap();
        assert_eq!(out.get("big"), Some(&json!([1, 2, 3, {"deep": true}])));
    }

    #[test]
    fn missing_fields_are_absent() {
        let p = ProjectedParser::new(&["nope", "id"]).unwrap();
        let out = p.parse(DOC).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.get("nope").is_none());
    }

    #[test]
    fn agrees_with_full_parser() {
        let p = ProjectedParser::new(&["user.name", "id", "flag"]).unwrap();
        let projected = p.parse(DOC).unwrap();
        let full = parse_bytes(DOC).unwrap();
        assert_eq!(projected.get("id"), full.get("id"));
        assert_eq!(projected.get("flag"), full.get("flag"));
        assert_eq!(
            projected.get("user").unwrap().get("name"),
            full.get("user").unwrap().get("name")
        );
    }

    #[test]
    fn tricky_keys_and_strings() {
        let doc = br#"{"we:ird, key": 1, "k\"2": {"x": 2}}"#;
        let p = ProjectedParser::new(&["we:ird, key"]).unwrap();
        let out = p.parse(doc).unwrap();
        assert_eq!(out.get("we:ird, key"), Some(&json!(1)));
        let p = ProjectedParser::new(&["k\"2.x"]).unwrap();
        let out = p.parse(doc).unwrap();
        assert_eq!(out.get("k\"2").unwrap().get("x"), Some(&json!(2)));
    }

    #[test]
    fn errors() {
        assert!(ProjectedParser::new(&[""]).is_err());
        assert!(ProjectedParser::new(&["a..b"]).is_err());
        let p = ProjectedParser::new(&["a"]).unwrap();
        assert!(p.parse(b"[1,2]").is_err()); // root not an object
        let p = ProjectedParser::new(&["a.b"]).unwrap();
        assert!(p.parse(br#"{"a": 3}"#).is_err()); // cannot descend scalar
    }

    #[test]
    fn early_exit_does_not_skip_later_fields() {
        // Fields are found regardless of physical order.
        let doc = br#"{"z": 1, "a": 2}"#;
        let p = ProjectedParser::new(&["a", "z"]).unwrap();
        let out = p.parse(doc).unwrap();
        assert_eq!(out.len(), 2);
    }
}
