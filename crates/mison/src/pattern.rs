//! Speculative field-position pattern trees.
//!
//! Mison observes that within one collection, a field usually appears at
//! the same *physical* position: `"user"` is, say, almost always the 3rd
//! top-level colon. The pattern tree remembers, per field, the colon
//! ordinals where the field has been seen, ordered by hit count; probing
//! checks those ordinals first (one key comparison each) and only falls
//! back to scanning every colon when speculation misses.

use std::collections::HashMap;

/// Speculation statistics (exposed for E10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatternStats {
    /// Probes answered by a remembered ordinal.
    pub hits: u64,
    /// Probes that fell back to scanning.
    pub misses: u64,
}

impl PatternStats {
    /// Hit ratio in \[0,1\]; 0 when nothing was probed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Per-field position predictor.
#[derive(Debug, Clone, Default)]
pub struct PatternTree {
    /// field → [(colon ordinal, hits)] sorted by hits descending.
    patterns: HashMap<String, Vec<(usize, u64)>>,
    stats: PatternStats,
    /// Cap on remembered ordinals per field (paper keeps trees small).
    max_alternatives: usize,
}

impl PatternTree {
    /// Creates a tree remembering at most `max_alternatives` positions
    /// per field.
    pub fn new(max_alternatives: usize) -> PatternTree {
        PatternTree {
            patterns: HashMap::new(),
            stats: PatternStats::default(),
            max_alternatives: max_alternatives.max(1),
        }
    }

    /// The candidate ordinals for `field`, most likely first.
    pub fn candidates(&self, field: &str) -> impl Iterator<Item = usize> + '_ {
        self.patterns
            .get(field)
            .into_iter()
            .flatten()
            .map(|&(ordinal, _)| ordinal)
    }

    /// Looks `field` up among `keys` (the document's key list in physical
    /// order), speculating on remembered ordinals before scanning.
    /// Returns the ordinal where the field was found.
    pub fn probe(&mut self, field: &str, keys: &[&str]) -> Option<usize> {
        self.probe_lazy(field, keys.len(), |o| keys.get(o).copied())
    }

    /// Like [`probe`](Self::probe), but extracts keys on demand — a
    /// speculation *hit* costs a single key extraction, which is the whole
    /// point of the pattern tree (the eager variant would pay for every
    /// key even when the first guess lands).
    pub fn probe_lazy<'k>(
        &mut self,
        field: &str,
        total: usize,
        key_at: impl Fn(usize) -> Option<&'k str>,
    ) -> Option<usize> {
        // Speculation: try remembered ordinals.
        if let Some(candidates) = self.patterns.get_mut(field) {
            for slot in 0..candidates.len() {
                let (ordinal, _) = candidates[slot];
                if ordinal < total && key_at(ordinal) == Some(field) {
                    candidates[slot].1 += 1;
                    // Keep most-hit first.
                    candidates.sort_by_key(|c| std::cmp::Reverse(c.1));
                    self.stats.hits += 1;
                    return Some(ordinal);
                }
            }
        }
        // Deoptimise: scan, then learn.
        self.stats.misses += 1;
        let found = (0..total).find(|&o| key_at(o) == Some(field));
        if let Some(ordinal) = found {
            self.learn(field, ordinal);
        }
        found
    }

    /// Records that `field` was seen at `ordinal`.
    pub fn learn(&mut self, field: &str, ordinal: usize) {
        let entry = self.patterns.entry(field.to_string()).or_default();
        match entry.iter_mut().find(|(o, _)| *o == ordinal) {
            Some((_, hits)) => *hits += 1,
            None => {
                entry.push((ordinal, 1));
                entry.sort_by_key(|c| std::cmp::Reverse(c.1));
                entry.truncate(self.max_alternatives);
            }
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PatternStats {
        self.stats
    }

    /// Resets statistics (keeps the learned tree).
    pub fn reset_stats(&mut self) {
        self.stats = PatternStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_and_speculates() {
        let mut tree = PatternTree::new(3);
        let keys = ["id", "user", "text"];
        // First probe scans (miss) and learns.
        assert_eq!(tree.probe("user", &keys), Some(1));
        assert_eq!(tree.stats(), PatternStats { hits: 0, misses: 1 });
        // Second probe speculates successfully.
        assert_eq!(tree.probe("user", &keys), Some(1));
        assert_eq!(tree.stats(), PatternStats { hits: 1, misses: 1 });
    }

    #[test]
    fn deoptimises_on_layout_change() {
        let mut tree = PatternTree::new(3);
        let layout_a = ["id", "user", "text"];
        let layout_b = ["user", "id", "text"];
        tree.probe("user", &layout_a);
        // Layout changed: speculation misses, falls back, learns both.
        assert_eq!(tree.probe("user", &layout_b), Some(0));
        assert_eq!(tree.stats().misses, 2);
        // Now both ordinals are known: either layout hits.
        assert_eq!(tree.probe("user", &layout_a), Some(1));
        assert_eq!(tree.probe("user", &layout_b), Some(0));
        assert_eq!(tree.stats().hits, 2);
    }

    #[test]
    fn absent_fields_report_none() {
        let mut tree = PatternTree::new(2);
        assert_eq!(tree.probe("ghost", &["a", "b"]), None);
        assert_eq!(tree.stats().misses, 1);
    }

    #[test]
    fn alternative_cap_is_enforced() {
        let mut tree = PatternTree::new(2);
        for ordinal in 0..5 {
            tree.learn("f", ordinal);
        }
        assert!(tree.candidates("f").count() <= 2);
    }

    #[test]
    fn hit_rate() {
        let mut tree = PatternTree::new(2);
        let keys = ["a", "b"];
        tree.probe("a", &keys);
        tree.probe("a", &keys);
        tree.probe("a", &keys);
        assert!((tree.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(PatternStats::default().hit_rate(), 0.0);
    }
}
