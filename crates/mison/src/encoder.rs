//! The speculative encoder — the other half of Fad.js.
//!
//! Fad.js speculates on *encoding* too: "applications tend to serialise
//! objects of the same shape over and over", so the encoder caches the
//! constant skeleton of a shape (`{"id":` … `,"name":` … `}`) and only
//! renders the values, deoptimising to the general serializer when the
//! shape changes. [`SpeculativeEncoder`] keeps a shape-keyed template
//! cache; its output is byte-identical to `jsonx_syntax::to_string` (a
//! property the tests pin).

use jsonx_data::Value;
use jsonx_syntax::{append_compact, to_string};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Encoder statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EncoderStats {
    /// Documents rendered from a cached shape template.
    pub template_hits: u64,
    /// Documents that fell back to the general serializer.
    pub generic_encodes: u64,
}

/// One cached shape template: the constant byte chunks between value
/// positions of a flat record shape.
#[derive(Debug, Clone)]
struct Template {
    /// `chunks[i]` precedes value *i*; the final chunk closes the object.
    chunks: Vec<String>,
    /// Field names in physical order (the shape key, for verification).
    keys: Vec<String>,
}

/// A shape-caching JSON encoder for record streams.
#[derive(Debug, Default)]
pub struct SpeculativeEncoder {
    templates: Mutex<HashMap<u64, Template>>,
    template_hits: AtomicU64,
    generic_encodes: AtomicU64,
}

impl SpeculativeEncoder {
    /// Creates an encoder with an empty template cache.
    pub fn new() -> SpeculativeEncoder {
        SpeculativeEncoder::default()
    }

    /// Encodes `value` to compact JSON text, using a cached shape template
    /// when the top-level record shape has been seen before.
    pub fn encode(&self, value: &Value) -> String {
        let Some(obj) = value.as_object() else {
            self.generic_encodes.fetch_add(1, Ordering::Relaxed);
            return to_string(value);
        };
        let key = shape_hash(obj);
        {
            let templates = self.templates.lock();
            if let Some(template) = templates.get(&key) {
                if template.keys.len() == obj.len()
                    && template.keys.iter().zip(obj.keys()).all(|(a, b)| a == b)
                {
                    // Speculation hit: stitch values into the template.
                    let mut out = String::with_capacity(template.chunks.len() * 8);
                    for (chunk, (_, member)) in template.chunks.iter().zip(obj.iter()) {
                        out.push_str(chunk);
                        append_compact(&mut out, member);
                    }
                    out.push_str(template.chunks.last().expect("closing chunk"));
                    self.template_hits.fetch_add(1, Ordering::Relaxed);
                    return out;
                }
            }
        }
        // Deoptimise: general serializer, then learn the shape.
        self.generic_encodes.fetch_add(1, Ordering::Relaxed);
        let rendered = to_string(value);
        let template = Template {
            chunks: build_chunks(obj),
            keys: obj.keys().map(str::to_string).collect(),
        };
        self.templates.lock().insert(key, template);
        rendered
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> EncoderStats {
        EncoderStats {
            template_hits: self.template_hits.load(Ordering::Relaxed),
            generic_encodes: self.generic_encodes.load(Ordering::Relaxed),
        }
    }

    /// Number of cached shape templates.
    pub fn cached_shapes(&self) -> usize {
        self.templates.lock().len()
    }
}

/// Order-sensitive hash of the top-level key sequence.
fn shape_hash(obj: &jsonx_data::Object) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for k in obj.keys() {
        k.hash(&mut h);
    }
    obj.len().hash(&mut h);
    h.finish()
}

/// The constant chunks around each value position:
/// `{"k0":`, `,"k1":`, …, `}`.
fn build_chunks(obj: &jsonx_data::Object) -> Vec<String> {
    let mut chunks = Vec::with_capacity(obj.len() + 1);
    for (i, (k, _)) in obj.iter().enumerate() {
        let mut chunk = String::new();
        chunk.push(if i == 0 { '{' } else { ',' });
        chunk.push_str(&to_string(&Value::Str(k.to_string())));
        chunk.push(':');
        chunks.push(chunk);
    }
    if obj.is_empty() {
        // Single chunk, no value positions.
        chunks.push("{}".to_string());
    } else {
        chunks.push("}".to_string());
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    #[test]
    fn byte_identical_to_general_serializer() {
        let enc = SpeculativeEncoder::new();
        let docs = vec![
            json!({"id": 1, "name": "a", "geo": {"lat": 1.5}}),
            json!({"id": 2, "name": "b", "geo": null}),
            json!({"id": 3, "name": "c\n", "geo": {"lat": -2.0}}),
            json!([1, 2]),
            json!({}),
            json!({"different": true}),
        ];
        for d in &docs {
            assert_eq!(enc.encode(d), to_string(d), "mismatch on {d}");
        }
        // Same-shape docs after the first should have hit the template.
        assert!(enc.stats().template_hits >= 2);
    }

    #[test]
    fn stable_streams_hit_after_first() {
        let enc = SpeculativeEncoder::new();
        for i in 0..100i64 {
            let d = json!({"id": i, "flag": (i % 2 == 0)});
            assert_eq!(enc.encode(&d), to_string(&d));
        }
        let stats = enc.stats();
        assert_eq!(stats.generic_encodes, 1);
        assert_eq!(stats.template_hits, 99);
        assert_eq!(enc.cached_shapes(), 1);
    }

    #[test]
    fn shape_changes_deoptimise_and_learn() {
        let enc = SpeculativeEncoder::new();
        enc.encode(&json!({"a": 1}));
        enc.encode(&json!({"b": 1})); // new shape: generic + learn
        enc.encode(&json!({"a": 2})); // cached
        enc.encode(&json!({"b": 2})); // cached
        let stats = enc.stats();
        assert_eq!(stats.generic_encodes, 2);
        assert_eq!(stats.template_hits, 2);
        assert_eq!(enc.cached_shapes(), 2);
    }

    #[test]
    fn tricky_keys_render_correctly() {
        let enc = SpeculativeEncoder::new();
        let d = json!({"we\"ird": 1, "uni\u{e9}": "x"});
        assert_eq!(enc.encode(&d), to_string(&d));
        let d2 = json!({"we\"ird": 9, "uni\u{e9}": "y"});
        assert_eq!(enc.encode(&d2), to_string(&d2)); // template path
        assert_eq!(enc.stats().template_hits, 1);
    }

    #[test]
    fn empty_object_shape() {
        let enc = SpeculativeEncoder::new();
        assert_eq!(enc.encode(&json!({})), "{}");
        assert_eq!(enc.encode(&json!({})), "{}");
    }
}
