//! The leveled structural index.
//!
//! Stage 2 of the Mison pipeline: colon and comma positions bucketed by
//! nesting level, built **only to the depth the query needs** — deeper
//! structure is never examined, which is where projection pushdown's
//! asymptotic win comes from.

use crate::bitmap::{build, Bitmaps};

/// A structural index over one JSON document.
#[derive(Debug, Clone)]
pub struct StructuralIndex {
    /// The bitmaps the index was distilled from.
    pub bitmaps: Bitmaps,
    /// `colons[l]` = sorted positions of colons at nesting level `l+1`
    /// (level 1 = directly inside the root container).
    colons: Vec<Vec<u32>>,
    /// Same bucketing for commas.
    commas: Vec<Vec<u32>>,
    /// Sorted positions of container events `(pos, open?, depth_after)`.
    containers: Vec<(u32, bool, u16)>,
}

impl StructuralIndex {
    /// Builds the index down to `max_level` (1 = root fields only).
    pub fn build(input: &[u8], max_level: usize) -> StructuralIndex {
        let bitmaps = build(input);
        let mut colons: Vec<Vec<u32>> = vec![Vec::new(); max_level];
        let mut commas: Vec<Vec<u32>> = vec![Vec::new(); max_level];

        // Walk every structural position in order with a single merged
        // bit-scan per word, tracking depth — no materialised event list.
        // Container events are recorded only when the index may need to
        // descend (max_level > 1): level-1 projections never ask for
        // sub-container spans, and skipping the event list is part of the
        // depth-bounded saving E9/A1 measure.
        let track_containers = max_level > 1;
        let mut depth: usize = 0;
        let mut containers = Vec::new();
        let words = bitmaps.colon.len();
        for w in 0..words {
            let opens = bitmaps.lbrace[w] | bitmaps.lbracket[w];
            let closes = bitmaps.rbrace[w] | bitmaps.rbracket[w];
            let mut rest = opens | closes | bitmaps.colon[w] | bitmaps.comma[w];
            while rest != 0 {
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                let mask = 1u64 << bit;
                let pos = (w * 64 + bit) as u32;
                if opens & mask != 0 {
                    depth += 1;
                    if track_containers {
                        containers.push((pos, true, depth as u16));
                    }
                } else if closes & mask != 0 {
                    if track_containers {
                        containers.push((pos, false, depth as u16));
                    }
                    depth = depth.saturating_sub(1);
                } else if bitmaps.colon[w] & mask != 0 {
                    if depth >= 1 && depth <= max_level {
                        colons[depth - 1].push(pos);
                    }
                } else if depth >= 1 && depth <= max_level {
                    commas[depth - 1].push(pos);
                }
            }
        }
        StructuralIndex {
            bitmaps,
            colons,
            commas,
            containers,
        }
    }

    /// Colon positions at `level` (1-based) within `range`.
    pub fn colons_in(&self, level: usize, range: std::ops::Range<usize>) -> &[u32] {
        slice_in(self.colons.get(level - 1).map_or(&[], |v| v), range)
    }

    /// The first comma at `level` strictly after `pos`, within `range`.
    pub fn next_comma(
        &self,
        level: usize,
        pos: usize,
        range: std::ops::Range<usize>,
    ) -> Option<usize> {
        let commas = self.commas.get(level - 1)?;
        let start = commas.partition_point(|&c| (c as usize) <= pos);
        commas[start..]
            .first()
            .map(|&c| c as usize)
            .filter(|&c| c < range.end)
    }

    /// The key string ending just before `colon`: returns the byte range
    /// *between* the quotes (escaped form). Works by scanning the quote
    /// bitmap backwards — O(1) for the adjacent key, no materialised
    /// quote list.
    pub fn key_before(&self, colon: usize) -> Option<std::ops::Range<usize>> {
        let close = self.prev_quote(colon)?;
        let open = self.prev_quote(close)?;
        Some(open + 1..close)
    }

    /// Position of the last unescaped quote strictly before `before`.
    fn prev_quote(&self, before: usize) -> Option<usize> {
        let mut w = before / 64;
        if w >= self.bitmaps.quote.len() {
            w = self.bitmaps.quote.len().checked_sub(1)?;
        }
        let mut mask = if before / 64 == w {
            (1u64 << (before % 64)) - 1
        } else {
            !0
        };
        loop {
            let word = self.bitmaps.quote[w] & mask;
            if word != 0 {
                return Some(w * 64 + 63 - word.leading_zeros() as usize);
            }
            if w == 0 {
                return None;
            }
            w -= 1;
            mask = !0;
        }
    }

    /// The end (exclusive) of the value starting after `colon` at `level`,
    /// inside the parent container span `parent`: the next same-level
    /// comma, or the parent's closing position.
    pub fn value_end(&self, level: usize, colon: usize, parent: std::ops::Range<usize>) -> usize {
        match self.next_comma(level, colon, parent.clone()) {
            Some(c) => c,
            None => parent.end - 1, // before the closing brace/bracket
        }
    }

    /// Finds the span of the container that *opens* at `open_pos`
    /// (inclusive of both braces). Uses the recorded container events —
    /// only available when the index was built with `max_level > 1`.
    pub fn container_span(&self, open_pos: usize) -> Option<std::ops::Range<usize>> {
        let start = self
            .containers
            .partition_point(|&(p, _, _)| (p as usize) < open_pos);
        let (p0, is_open, d0) = *self.containers.get(start)?;
        if p0 as usize != open_pos || !is_open {
            return None;
        }
        for &(p, open, d) in &self.containers[start + 1..] {
            if !open && d == d0 {
                return Some(open_pos..p as usize + 1);
            }
            if !open && d < d0 {
                break;
            }
        }
        None
    }

    /// The root container's span (the whole document trimmed to its
    /// outermost `{...}` or `[...]`), derived from the bitmaps directly
    /// so it works at any index depth.
    pub fn root_span(&self) -> Option<std::ops::Range<usize>> {
        let first_open = (0..self.bitmaps.lbrace.len()).find_map(|w| {
            let word = self.bitmaps.lbrace[w] | self.bitmaps.lbracket[w];
            (word != 0).then(|| w * 64 + word.trailing_zeros() as usize)
        })?;
        let last_close = (0..self.bitmaps.rbrace.len()).rev().find_map(|w| {
            let word = self.bitmaps.rbrace[w] | self.bitmaps.rbracket[w];
            (word != 0).then(|| w * 64 + 63 - word.leading_zeros() as usize)
        })?;
        // A closer before the opener means no well-formed root container.
        (last_close > first_open).then_some(first_open..last_close + 1)
    }
}

fn slice_in(positions: &[u32], range: std::ops::Range<usize>) -> &[u32] {
    let lo = positions.partition_point(|&p| (p as usize) < range.start);
    let hi = positions.partition_point(|&p| (p as usize) < range.end);
    &positions[lo..hi]
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{"id": 7, "user": {"name": "ada", "tags": ["x", "y"]}, "n": [1, 2]}"#;

    fn idx(levels: usize) -> StructuralIndex {
        StructuralIndex::build(DOC.as_bytes(), levels)
    }

    #[test]
    fn level_one_colons_are_root_fields() {
        let index = idx(2);
        let root = index.root_span().unwrap();
        let cols = index.colons_in(1, root.clone());
        assert_eq!(cols.len(), 3); // id, user, n
                                   // Their keys:
        let keys: Vec<&str> = cols
            .iter()
            .map(|&c| {
                let r = index.key_before(c as usize).unwrap();
                std::str::from_utf8(&DOC.as_bytes()[r]).unwrap()
            })
            .collect();
        assert_eq!(keys, vec!["id", "user", "n"]);
    }

    #[test]
    fn level_two_colons_are_nested_fields() {
        let index = idx(2);
        let root = index.root_span().unwrap();
        let cols = index.colons_in(2, root);
        let keys: Vec<&str> = cols
            .iter()
            .map(|&c| {
                let r = index.key_before(c as usize).unwrap();
                std::str::from_utf8(&DOC.as_bytes()[r]).unwrap()
            })
            .collect();
        assert_eq!(keys, vec!["name", "tags"]);
    }

    #[test]
    fn index_is_depth_bounded() {
        let index = idx(1);
        let root = index.root_span().unwrap();
        assert_eq!(index.colons_in(1, root.clone()).len(), 3);
        assert!(index.colons_in(2, root).is_empty()); // never built
    }

    #[test]
    fn value_ends() {
        let index = idx(1);
        let root = index.root_span().unwrap();
        let cols: Vec<usize> = index
            .colons_in(1, root.clone())
            .iter()
            .map(|&c| c as usize)
            .collect();
        // id's value ends at the comma after `7`.
        let end = index.value_end(1, cols[0], root.clone());
        assert_eq!(&DOC[cols[0] + 1..end], " 7");
        // n's value (last field) ends at the closing brace.
        let end = index.value_end(1, cols[2], root.clone());
        assert_eq!(DOC[cols[2] + 1..end].trim(), "[1, 2]");
    }

    #[test]
    fn container_spans() {
        let index = idx(3);
        let user_open = DOC.find("{\"name\"").unwrap();
        let span = index.container_span(user_open).unwrap();
        assert_eq!(&DOC[span.clone()], r#"{"name": "ada", "tags": ["x", "y"]}"#);
        assert!(index.container_span(user_open + 1).is_none());
    }

    #[test]
    fn commas_inside_nested_containers_do_not_split_values() {
        let index = idx(1);
        let root = index.root_span().unwrap();
        let cols: Vec<usize> = index
            .colons_in(1, root.clone())
            .iter()
            .map(|&c| c as usize)
            .collect();
        // user's value contains commas at level ≥ 2; its level-1 end must
        // be the comma before "n".
        let end = index.value_end(1, cols[1], root);
        assert!(DOC[cols[1] + 1..end].trim().ends_with('}'));
    }

    #[test]
    fn array_root() {
        let doc = br#"[{"a": 1}, {"a": 2}]"#;
        let index = StructuralIndex::build(doc, 2);
        let root = index.root_span().unwrap();
        assert_eq!(root, 0..doc.len());
        assert_eq!(index.colons_in(2, root).len(), 2);
    }
}
