//! The speculative decoder — Fad.js semantics as a library.
//!
//! Fad.js observes that "most applications never use all the fields of
//! input objects" and makes the *decoder* access-pattern-driven: fields
//! are materialised lazily, and a shared profile learned from earlier
//! documents lets later ones decode their hot fields without scanning.
//! Here the JIT machinery becomes an explicit [`PatternTree`] shared
//! behind a lock (matching the runtime-wide caches of the original), with
//! deoptimisation to the structural-index scan on misses.

use crate::index::StructuralIndex;
use crate::pattern::{PatternStats, PatternTree};
use jsonx_data::Value;
use jsonx_syntax::parse_bytes;
use parking_lot::Mutex;

/// Decoder statistics.
pub type SpeculativeStats = PatternStats;

/// A speculative, access-pattern-driven field decoder shared across the
/// documents of one collection.
#[derive(Debug)]
pub struct SpeculativeDecoder {
    profile: Mutex<PatternTree>,
}

impl Default for SpeculativeDecoder {
    fn default() -> Self {
        SpeculativeDecoder::new()
    }
}

impl SpeculativeDecoder {
    /// Creates a decoder with an empty profile.
    pub fn new() -> SpeculativeDecoder {
        SpeculativeDecoder {
            profile: Mutex::new(PatternTree::new(4)),
        }
    }

    /// Decodes one top-level field of `input`, parsing only that field's
    /// bytes. Returns `None` when the field is absent.
    pub fn get_field(&self, input: &[u8], field: &str) -> Option<Value> {
        let index = StructuralIndex::build(input, 1);
        let root = index.root_span()?;
        if input[root.start] != b'{' {
            return None;
        }
        let colons = index.colons_in(1, root.clone());
        // Keys are extracted lazily: a speculation hit touches exactly one.
        let key_at = |ordinal: usize| -> Option<&str> {
            let &colon = colons.get(ordinal)?;
            index
                .key_before(colon as usize)
                .and_then(|r| std::str::from_utf8(&input[r]).ok())
        };
        let ordinal = self
            .profile
            .lock()
            .probe_lazy(field, colons.len(), key_at)?;
        let colon = colons[ordinal] as usize;
        let end = index.value_end(1, colon, root);
        parse_bytes(trim(&input[colon + 1..end])).ok()
    }

    /// Accumulated speculation statistics.
    pub fn stats(&self) -> SpeculativeStats {
        self.profile.lock().stats()
    }

    /// Clears statistics but keeps the learned profile.
    pub fn reset_stats(&self) {
        self.profile.lock().reset_stats();
    }
}

fn trim(raw: &[u8]) -> &[u8] {
    let start = raw
        .iter()
        .take_while(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        .count();
    let end = raw.len()
        - raw
            .iter()
            .rev()
            .take_while(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
            .count();
    &raw[start..end.max(start)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    #[test]
    fn decodes_single_fields() {
        let d = SpeculativeDecoder::new();
        let doc = br#"{"id": 1, "name": "ada", "nested": {"x": [1, 2]}}"#;
        assert_eq!(d.get_field(doc, "id"), Some(json!(1)));
        assert_eq!(d.get_field(doc, "name"), Some(json!("ada")));
        assert_eq!(d.get_field(doc, "nested"), Some(json!({"x": [1, 2]})));
        assert_eq!(d.get_field(doc, "ghost"), None);
    }

    #[test]
    fn stable_collections_hit_after_warmup() {
        let d = SpeculativeDecoder::new();
        let docs: Vec<String> = (0..50)
            .map(|i| format!(r#"{{"id": {i}, "name": "u{i}", "extra": [{i}]}}"#))
            .collect();
        for doc in &docs {
            assert!(d.get_field(doc.as_bytes(), "name").is_some());
        }
        let stats = d.stats();
        assert_eq!(stats.misses, 1); // only the first probe scanned
        assert_eq!(stats.hits, 49);
    }

    #[test]
    fn shifting_layouts_deoptimise() {
        let d = SpeculativeDecoder::new();
        // Alternating layouts: the profile ends up holding both ordinals,
        // after which both layouts hit.
        for i in 0..20 {
            let doc = if i % 2 == 0 {
                r#"{"a": 1, "name": "x"}"#
            } else {
                r#"{"name": "x", "a": 1}"#
            };
            assert_eq!(d.get_field(doc.as_bytes(), "name"), Some(json!("x")));
        }
        let stats = d.stats();
        assert!(stats.misses >= 2);
        assert!(stats.hits >= 16, "hits={}", stats.hits);
    }

    #[test]
    fn non_object_documents() {
        let d = SpeculativeDecoder::new();
        assert_eq!(d.get_field(b"[1,2,3]", "x"), None);
        assert_eq!(d.get_field(b"", "x"), None);
    }
}
