//! # jsonx-mison
//!
//! A Mison-style structural-index parser (Li et al., *Mison: A Fast JSON
//! Parser for Data Analytics*, PVLDB 2017) plus a Fad.js-style speculative
//! decoder (Bonetta & Brantner, PVLDB 2017) — the two §4.2 parsing systems
//! the tutorial surveys.
//!
//! ## Role in the workspace
//!
//! This crate is the **research testbed** where the paper's pipeline is
//! reproduced stage by stage and each stage can be measured in
//! isolation. The *production* fast path — the fused structural scanner +
//! projection pushdown the streaming CLI uses under `--fast-parse` —
//! lives in [`jsonx_syntax::structural`], where stage 1 (the bitmap
//! builder) was promoted; [`bitmap`] re-exports it so the experiments and
//! differential tests here keep running against the same bits. The
//! leveled index, dotted-path projection, and pattern-tree speculation
//! stages remain here as reference implementations: the fused scanner
//! deliberately absorbs their *ideas* (skip-scanning, verified
//! speculation) rather than their code.
//!
//! The Mison pipeline, reproduced stage by stage:
//!
//! 1. **Word-parallel bitmap construction** ([`bitmap`], promoted to
//!    `jsonx_syntax::structural`): one `u64` lane per 64 input bytes;
//!    quote/colon/comma/brace bitmaps, backslash-aware unescaped-quote
//!    detection, and the carry-propagating prefix-XOR string mask. (The
//!    paper uses AVX + PCLMULQDQ; the identical algorithms run here on
//!    portable 64-bit words — same structure, 64 lanes per operation.)
//! 2. **Leveled structural index** ([`index`]): colon and comma positions
//!    bucketed by nesting level, built only to the depth the query needs.
//! 3. **Projection pushdown** ([`project`]): parse *only* the requested
//!    (possibly dotted) fields, skipping everything else byte-free.
//! 4. **Speculation** ([`pattern`], [`speculative`]): pattern trees
//!    remember at which physical colon a field usually lives, so stable
//!    collections skip even the key comparisons; misses deoptimise to the
//!    index scan, Fad.js-style.
//!
//! ```
//! use jsonx_mison::project::ProjectedParser;
//!
//! let doc = br#"{"id": 7, "user": {"name": "ada", "bio": "..."}, "huge": [1,2,3]}"#;
//! let parser = ProjectedParser::new(&["id", "user.name"]).unwrap();
//! let out = parser.parse(doc).unwrap();
//! assert_eq!(out.get("id").unwrap().as_i64(), Some(7));
//! assert_eq!(out.get("user").unwrap().get("name").unwrap().as_str(), Some("ada"));
//! assert!(out.get("huge").is_none()); // never parsed
//! ```

pub mod bitmap;
pub mod encoder;
pub mod index;
pub mod pattern;
pub mod project;
pub mod speculative;

pub use bitmap::Bitmaps;
pub use encoder::{EncoderStats, SpeculativeEncoder};
pub use index::StructuralIndex;
pub use pattern::PatternTree;
pub use project::ProjectedParser;
pub use speculative::{SpeculativeDecoder, SpeculativeStats};
