//! Word-parallel structural bitmaps.
//!
//! Stage 1 of the Mison pipeline. Each `u64` word covers 64 input bytes,
//! bit *i* of word *w* describing byte `w*64 + i`. The construction
//! mirrors the paper:
//!
//! * per-character bitmaps by 64-lane comparison,
//! * unescaped-quote detection via backslash-run parity,
//! * the **string mask** via a prefix-XOR within each word (the software
//!   equivalent of the paper's carry-less multiplication by all-ones) with
//!   a carry bit propagated across words,
//! * structural bitmaps masked to positions *outside* string literals.

/// Structural bitmaps for one JSON document.
#[derive(Debug, Clone)]
pub struct Bitmaps {
    /// Input length in bytes.
    pub len: usize,
    /// Unescaped quotes.
    pub quote: Vec<u64>,
    /// `:` outside strings.
    pub colon: Vec<u64>,
    /// `,` outside strings.
    pub comma: Vec<u64>,
    /// `{` outside strings.
    pub lbrace: Vec<u64>,
    /// `}` outside strings.
    pub rbrace: Vec<u64>,
    /// `[` outside strings.
    pub lbracket: Vec<u64>,
    /// `]` outside strings.
    pub rbracket: Vec<u64>,
    /// 1 = byte is inside a string literal (between quotes).
    pub string_mask: Vec<u64>,
}

/// Prefix XOR within a word: bit i of the result is the XOR of bits 0..=i
/// of the input — the software stand-in for `PCLMULQDQ(m, ~0)`.
#[inline]
fn prefix_xor(m: u64) -> u64 {
    let mut x = m;
    x ^= x << 1;
    x ^= x << 2;
    x ^= x << 4;
    x ^= x << 8;
    x ^= x << 16;
    x ^= x << 32;
    x
}

/// SWAR byte-equality: returns a mask with `0x80` at every byte of
/// `word` equal to `byte` (the classic carry-borrow trick — 8 lanes per
/// operation, the portable stand-in for `_mm256_cmpeq_epi8`).
#[inline]
fn eq_mask(word: u64, byte: u8) -> u64 {
    const LOW: u64 = 0x0101_0101_0101_0101;
    const LOW7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
    const HIGH: u64 = 0x8080_8080_8080_8080;
    // Exact zero-byte detection: per-byte `(b & 0x7f) + 0x7f` sets bit 7
    // iff the low bits are non-zero and never carries across bytes (the
    // `(x - LOW) & !x` variant false-positives on 0x01 bytes trailing a
    // match — caught by the prop_bitmaps oracle tests).
    let x = word ^ (LOW * u64::from(byte));
    let t = (x & LOW7) + LOW7;
    !(t | x) & HIGH
}

/// Compresses an `eq_mask` result into 8 low bits, byte *i* → bit *i*
/// (the portable `movemask`). Collision-free by construction: term
/// positions `8i + 7j + 7` are distinct for all byte/multiplier pairs.
#[inline]
fn movemask(m: u64) -> u64 {
    (m >> 7).wrapping_mul(0x0102_0408_1020_4080) >> 56
}

/// Builds one character's bitmap word from a 64-byte chunk.
#[inline]
fn chunk_mask(chunk: &[u8; 64], byte: u8) -> u64 {
    let mut out = 0u64;
    for (k, sub) in chunk.chunks_exact(8).enumerate() {
        let w = u64::from_le_bytes(sub.try_into().expect("8-byte subword"));
        out |= movemask(eq_mask(w, byte)) << (k * 8);
    }
    out
}

/// Builds all bitmaps for `input` using 64-lane word-parallel scanning.
///
/// The fast path assumes no backslashes in a chunk (overwhelmingly the
/// common case); chunks containing backslashes fall back to the scalar
/// escape-parity scan for their quote bits. `build_scalar` is the
/// byte-at-a-time reference implementation the property tests compare
/// against.
pub fn build(input: &[u8]) -> Bitmaps {
    let words = input.len().div_ceil(64);
    let mut quote = vec![0u64; words];
    let mut colon = vec![0u64; words];
    let mut comma = vec![0u64; words];
    let mut lbrace = vec![0u64; words];
    let mut rbrace = vec![0u64; words];
    let mut lbracket = vec![0u64; words];
    let mut rbracket = vec![0u64; words];

    // Parity of the backslash run carried into the current chunk.
    let mut carry_run_odd = false;
    let mut w = 0usize;
    let mut chunks = input.chunks_exact(64);
    for chunk in &mut chunks {
        let chunk: &[u8; 64] = chunk.try_into().expect("exact chunk");
        colon[w] = chunk_mask(chunk, b':');
        comma[w] = chunk_mask(chunk, b',');
        lbrace[w] = chunk_mask(chunk, b'{');
        rbrace[w] = chunk_mask(chunk, b'}');
        lbracket[w] = chunk_mask(chunk, b'[');
        rbracket[w] = chunk_mask(chunk, b']');
        let bs = chunk_mask(chunk, b'\\');
        let mut q = chunk_mask(chunk, b'"');
        if bs == 0 {
            // Fast path: only the first byte can be escaped (by a run
            // ending in the previous chunk).
            if carry_run_odd {
                q &= !1u64;
            }
            carry_run_odd = false;
        } else {
            // Slow path: scalar escape-parity over this chunk.
            q = quote_bits_scalar(chunk, &mut carry_run_odd);
        }
        quote[w] = q;
        w += 1;
    }
    // Tail (< 64 bytes): scalar.
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let base = w * 64;
        let mut run_odd = carry_run_odd;
        for (i, &b) in rem.iter().enumerate() {
            let bit = 1u64 << ((base + i) % 64);
            match b {
                b'\\' => {
                    run_odd = !run_odd;
                    continue;
                }
                b'"' if !run_odd => quote[w] |= bit,
                b':' => colon[w] |= bit,
                b',' => comma[w] |= bit,
                b'{' => lbrace[w] |= bit,
                b'}' => rbrace[w] |= bit,
                b'[' => lbracket[w] |= bit,
                b']' => rbracket[w] |= bit,
                _ => {}
            }
            run_odd = false;
        }
    }

    // String mask: prefix-XOR per word with cross-word carry.
    let mut string_mask = vec![0u64; words];
    let mut carry = 0u64; // all-ones when a string spans into this word
    for w in 0..words {
        let m = prefix_xor(quote[w]) ^ carry;
        string_mask[w] = m;
        // Carry flips when the word holds an odd number of quotes.
        if quote[w].count_ones() % 2 == 1 {
            carry = !carry;
        }
    }

    // Mask structural characters that sit inside strings. The closing
    // quote's own bit is *set* in the prefix-XOR mask while the opening
    // one is not; neither is a structural character, so the off-by-one at
    // the quotes themselves is harmless.
    for w in 0..words {
        let outside = !string_mask[w];
        colon[w] &= outside;
        comma[w] &= outside;
        lbrace[w] &= outside;
        rbrace[w] &= outside;
        lbracket[w] &= outside;
        rbracket[w] &= outside;
    }

    Bitmaps {
        len: input.len(),
        quote,
        colon,
        comma,
        lbrace,
        rbrace,
        lbracket,
        rbracket,
        string_mask,
    }
}

/// Scalar quote-bit extraction for one chunk, tracking backslash-run
/// parity across chunk boundaries.
fn quote_bits_scalar(chunk: &[u8; 64], carry_run_odd: &mut bool) -> u64 {
    let mut q = 0u64;
    let mut run_odd = *carry_run_odd;
    for (i, &b) in chunk.iter().enumerate() {
        match b {
            b'\\' => {
                run_odd = !run_odd;
                continue;
            }
            b'"' if !run_odd => q |= 1 << i,
            _ => {}
        }
        run_odd = false;
    }
    *carry_run_odd = run_odd;
    q
}

/// Byte-at-a-time reference builder (the oracle for the word-parallel
/// fast path; also what the A1 ablation benchmarks against).
pub fn build_scalar(input: &[u8]) -> Bitmaps {
    let words = input.len().div_ceil(64);
    let mut quote = vec![0u64; words];
    let mut colon = vec![0u64; words];
    let mut comma = vec![0u64; words];
    let mut lbrace = vec![0u64; words];
    let mut rbrace = vec![0u64; words];
    let mut lbracket = vec![0u64; words];
    let mut rbracket = vec![0u64; words];
    let mut backslash_run = 0usize;
    for (i, &b) in input.iter().enumerate() {
        let (w, bit) = (i / 64, 1u64 << (i % 64));
        match b {
            b'\\' => {
                backslash_run += 1;
                continue;
            }
            b'"' if backslash_run.is_multiple_of(2) => quote[w] |= bit,
            b':' => colon[w] |= bit,
            b',' => comma[w] |= bit,
            b'{' => lbrace[w] |= bit,
            b'}' => rbrace[w] |= bit,
            b'[' => lbracket[w] |= bit,
            b']' => rbracket[w] |= bit,
            _ => {}
        }
        backslash_run = 0;
    }
    let mut string_mask = vec![0u64; words];
    let mut carry = 0u64;
    for w in 0..words {
        string_mask[w] = prefix_xor(quote[w]) ^ carry;
        if quote[w].count_ones() % 2 == 1 {
            carry = !carry;
        }
    }
    for w in 0..words {
        let outside = !string_mask[w];
        colon[w] &= outside;
        comma[w] &= outside;
        lbrace[w] &= outside;
        rbrace[w] &= outside;
        lbracket[w] &= outside;
        rbracket[w] &= outside;
    }
    Bitmaps {
        len: input.len(),
        quote,
        colon,
        comma,
        lbrace,
        rbrace,
        lbracket,
        rbracket,
        string_mask,
    }
}

impl Bitmaps {
    /// Iterates the set-bit positions of one bitmap.
    pub fn positions(bitmap: &[u64]) -> impl Iterator<Item = usize> + '_ {
        bitmap
            .iter()
            .enumerate()
            .flat_map(|(w, &word)| BitIter { word }.map(move |bit| w * 64 + bit))
    }

    /// True when the byte at `pos` lies inside a string literal.
    pub fn in_string(&self, pos: usize) -> bool {
        self.string_mask
            .get(pos / 64)
            .is_some_and(|w| w & (1 << (pos % 64)) != 0)
    }
}

struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn colon_positions(s: &str) -> Vec<usize> {
        let b = build(s.as_bytes());
        Bitmaps::positions(&b.colon).collect()
    }

    #[test]
    fn prefix_xor_basics() {
        assert_eq!(prefix_xor(0), 0);
        // Single bit at 0 → all bits from 0 upward set.
        assert_eq!(prefix_xor(1), u64::MAX);
        // Bits at 1 and 3 → mask covers bits 1 and 2 (the [1,3) span).
        assert_eq!(prefix_xor(0b1010), 0b0110);
    }

    #[test]
    fn structural_positions() {
        let s = r#"{"a": 1, "b": [2, 3]}"#;
        assert_eq!(colon_positions(s), vec![4, 12]);
        let b = build(s.as_bytes());
        assert_eq!(
            Bitmaps::positions(&b.comma).collect::<Vec<_>>(),
            vec![7, 16]
        );
        assert_eq!(Bitmaps::positions(&b.lbrace).collect::<Vec<_>>(), vec![0]);
        assert_eq!(
            Bitmaps::positions(&b.lbracket).collect::<Vec<_>>(),
            vec![14]
        );
    }

    #[test]
    fn colons_inside_strings_are_masked() {
        let s = r#"{"time": "12:30:00", "x": 1}"#;
        // Only the two key colons survive.
        assert_eq!(colon_positions(s).len(), 2);
    }

    #[test]
    fn escaped_quotes_do_not_toggle_strings() {
        let s = r#"{"k\"ey": "va\\\"l:ue", "x": 1}"#;
        // The only structural colons are after "k\"ey" and "x".
        let cols = colon_positions(s);
        assert_eq!(cols.len(), 2);
        // Braces inside the values stay masked.
        let b = build(s.as_bytes());
        assert_eq!(Bitmaps::positions(&b.lbrace).count(), 1);
    }

    #[test]
    fn escaped_backslash_before_quote() {
        // "a\\" — the quote after two backslashes IS a real closing quote.
        let s = r#"{"a": "b\\", "c": 1}"#;
        assert_eq!(colon_positions(s).len(), 2);
    }

    #[test]
    fn string_mask_spans_words() {
        // A string longer than 64 bytes must keep the mask set across the
        // word boundary.
        let long = format!(r#"{{"k": "{}", "x": 1}}"#, "a:".repeat(64));
        let cols = colon_positions(&long);
        assert_eq!(
            cols.len(),
            2,
            "colons inside the long string must be masked"
        );
    }

    #[test]
    fn in_string_probe() {
        let s = r#"{"a": "x:y"}"#;
        let b = build(s.as_bytes());
        let colon_in_string = s.find(":y").unwrap();
        assert!(b.in_string(colon_in_string));
        assert!(!b.in_string(4)); // the structural colon
    }

    #[test]
    fn swar_primitives() {
        let word = u64::from_le_bytes(*b"a:b::cd\"");
        let m = eq_mask(word, b':');
        assert_eq!(movemask(m), 0b0011010);
        assert_eq!(movemask(eq_mask(word, b'"')), 0b10000000);
        assert_eq!(movemask(eq_mask(word, b'x')), 0);
    }

    #[test]
    fn word_parallel_matches_scalar_reference() {
        let samples: Vec<String> = vec![
            r#"{"a": 1, "b": [true, "x:y"], "c\\": "d\""}"#.to_string(),
            "x".repeat(200),
            format!(r#"{{"long": "{}"}}"#, "ab\\\"c".repeat(40)),
            format!("{}{}", "\\".repeat(63), '"'),
            format!("{}{}", "\\".repeat(64), '"'),
            String::new(),
        ];
        for text in samples {
            let fast = build(text.as_bytes());
            let slow = build_scalar(text.as_bytes());
            assert_eq!(fast.quote, slow.quote, "quotes differ on {text:?}");
            assert_eq!(fast.colon, slow.colon, "colons differ on {text:?}");
            assert_eq!(
                fast.string_mask, slow.string_mask,
                "mask differs on {text:?}"
            );
            assert_eq!(fast.lbrace, slow.lbrace);
            assert_eq!(fast.comma, slow.comma);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let b = build(b"");
        assert_eq!(b.len, 0);
        assert_eq!(Bitmaps::positions(&b.colon).count(), 0);
        let b = build(b"1");
        assert_eq!(b.len, 1);
    }
}
