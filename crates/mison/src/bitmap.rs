//! Structural bitmaps — promoted to [`jsonx_syntax::structural`].
//!
//! The word-parallel bitmap builder originally developed here now lives
//! in `jsonx-syntax`, where the streaming pipeline's fast parse path uses
//! it without a crate cycle. This module re-exports it so the research
//! testbed (leveled index, projection, speculation experiments, and the
//! `prop_bitmaps` differential suite) keeps its original paths.

pub use jsonx_syntax::structural::{build, build_scalar, Bitmaps};
