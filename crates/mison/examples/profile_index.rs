use jsonx_gen::Corpus;
use jsonx_mison::{bitmap, ProjectedParser, StructuralIndex};
use jsonx_syntax::{parse_bytes, to_string};
use std::time::Instant;

fn main() {
    let docs = Corpus::Nytimes.generate(4000);
    let lines: Vec<String> = docs.iter().map(to_string).collect();
    let total: usize = lines.iter().map(String::len).sum();
    println!("{} docs, {} bytes", lines.len(), total);

    let t = Instant::now();
    for l in &lines {
        std::hint::black_box(parse_bytes(l.as_bytes()).unwrap());
    }
    println!("full parse      {:?}", t.elapsed());

    let t = Instant::now();
    for l in &lines {
        std::hint::black_box(bitmap::build(l.as_bytes()));
    }
    println!("bitmaps only    {:?}", t.elapsed());

    let t = Instant::now();
    for l in &lines {
        std::hint::black_box(StructuralIndex::build(l.as_bytes(), 1));
    }
    println!("index lvl1      {:?}", t.elapsed());

    let p = ProjectedParser::new(&["_id"]).unwrap();
    let t = Instant::now();
    for l in &lines {
        std::hint::black_box(p.parse(l.as_bytes()).unwrap());
    }
    println!("project 1 field {:?}", t.elapsed());
}
