//! # jsonx-baselines
//!
//! Faithful re-implementations of the schema-inference tools the tutorial
//! surveys in §4.1, each reproducing the *documented behaviour* (including
//! the documented limitations) of its original:
//!
//! * [`spark`] — Spark Dataframe schema extraction: no union types;
//!   conflicting types widen, ultimately to `String` ("resorts to Str on
//!   strongly heterogeneous collections").
//! * [`naive`] — Studio 3T-style per-document typing with **no merging**:
//!   the schema is the list of distinct document types, with size
//!   "comparable to that of the input data".
//! * [`mongo`] — mongodb-schema-style streaming field profiler: concise
//!   per-path statistics, but **no field-correlation information**.
//! * [`skinfer`] — Skinfer-style JSON Schema inference whose merge is
//!   "limited to record types only, and cannot be recursively applied to
//!   objects nested inside arrays".
//! * [`couchbase`] — Couchbase-style discovery: structural+semantic
//!   document *flavors* with index suggestions.
//!
//! All four consume the same collections as `jsonx-core`'s parametric
//! inference, so the benches can put them side by side (experiments E5,
//! E7, E12).

pub mod couchbase;
pub mod mongo;
pub mod naive;
pub mod skinfer;
pub mod spark;

pub use couchbase::{discover_flavors, Flavor, FlavorReport};
pub use mongo::{FieldProfile, MongoProfiler};
pub use naive::{infer_naive, NaiveSchema};
pub use skinfer::{infer_skinfer, skinfer_merge};
pub use spark::{infer_spark, spark_type_size, SparkType};
