//! Couchbase-style schema discovery: document *flavors*.
//!
//! The tutorial (§4.1): "Couchbase … is endowed with a schema discovery
//! module which classifies the objects of a JSON collection based on both
//! structural and semantic information. This module is meant to facilitate
//! query formulation and select relevant indexes."
//!
//! [`discover_flavors`] reproduces that behaviour: documents are grouped
//! into flavors by structure, with a *semantic* discriminator pass — when
//! one low-cardinality string field (e.g. GitHub's `type`, a `kind` tag)
//! explains the structural split, flavors are keyed and named by its
//! values, exactly the "facilitate query formulation" output (`WHERE
//! type = "PushEvent"`). Each flavor carries an inferred type and index
//! suggestions (the always-present scalar paths).

use jsonx_core::{infer_collection, Equivalence, JType};
use jsonx_data::Value;
use jsonx_skeleton::StructTree;
use std::collections::BTreeMap;

/// One discovered flavor of a collection.
#[derive(Debug, Clone)]
pub struct Flavor {
    /// Human-readable name: the discriminator value when one exists
    /// (`type=PushEvent`), otherwise `flavor-N`.
    pub name: String,
    /// Number of documents in the flavor.
    pub count: u64,
    /// The flavor's structure.
    pub structure: StructTree,
    /// K-inferred type of the flavor's documents.
    pub inferred: JType,
    /// Scalar paths present in every flavor document — index candidates.
    pub index_candidates: Vec<String>,
}

/// The discovery report.
#[derive(Debug, Clone)]
pub struct FlavorReport {
    /// Flavors, most populous first.
    pub flavors: Vec<Flavor>,
    /// The discriminator field, when one explains the flavors.
    pub discriminator: Option<String>,
    /// Total documents analysed.
    pub total_docs: u64,
}

/// Discovers the flavors of a collection, keeping at most `max_flavors`
/// (the long tail merges into the last flavor, as the Couchbase UI does).
pub fn discover_flavors(docs: &[Value], max_flavors: usize) -> FlavorReport {
    let max_flavors = max_flavors.max(1);
    // 1. Structural grouping.
    let mut groups: BTreeMap<StructTree, Vec<&Value>> = BTreeMap::new();
    for doc in docs {
        groups.entry(StructTree::of(doc)).or_default().push(doc);
    }
    let mut ranked: Vec<(StructTree, Vec<&Value>)> = groups.into_iter().collect();
    ranked.sort_by_key(|(_, members)| std::cmp::Reverse(members.len()));

    // 2. Semantic pass: find a low-cardinality string field whose value is
    //    constant within each structural group but differs across groups.
    let discriminator = find_discriminator(&ranked);

    // 3. Merge the tail beyond the flavor budget.
    if ranked.len() > max_flavors {
        let tail: Vec<(StructTree, Vec<&Value>)> = ranked.split_off(max_flavors - 1);
        let mut merged_members = Vec::new();
        let mut merged_tree: Option<StructTree> = None;
        for (tree, members) in tail {
            merged_members.extend(members);
            merged_tree = Some(match merged_tree {
                Some(acc) => acc.merge(tree),
                None => tree,
            });
        }
        if let Some(tree) = merged_tree {
            ranked.push((tree, merged_members));
        }
    }

    // 4. Materialise flavors.
    let flavors = ranked
        .into_iter()
        .enumerate()
        .map(|(i, (structure, members))| {
            let owned: Vec<Value> = members.iter().map(|v| (*v).clone()).collect();
            let inferred = infer_collection(&owned, Equivalence::Kind);
            let name = discriminator
                .as_deref()
                .and_then(|field| constant_string(&members, field))
                .map(|v| format!("{}={v}", discriminator.as_deref().expect("checked")))
                .unwrap_or_else(|| format!("flavor-{i}"));
            let index_candidates = index_candidates(&inferred);
            Flavor {
                name,
                count: members.len() as u64,
                structure,
                inferred,
                index_candidates,
            }
        })
        .collect();
    FlavorReport {
        flavors,
        discriminator,
        total_docs: docs.len() as u64,
    }
}

/// A field is a discriminator when it is a top-level string, constant
/// within every structural group, and takes ≥2 distinct values overall.
fn find_discriminator(groups: &[(StructTree, Vec<&Value>)]) -> Option<String> {
    let first_doc = groups.first()?.1.first()?;
    let candidates: Vec<String> = first_doc
        .as_object()?
        .iter()
        .filter(|(_, v)| v.as_str().is_some())
        .map(|(k, _)| k.to_string())
        .collect();
    for field in candidates {
        let mut values = std::collections::BTreeSet::new();
        let mut ok = true;
        for (_, members) in groups {
            match constant_string(members, &field) {
                Some(v) => {
                    values.insert(v);
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && values.len() >= 2 {
            return Some(field);
        }
    }
    None
}

/// The single string value `field` takes across `members`, if constant.
fn constant_string(members: &[&Value], field: &str) -> Option<String> {
    let mut out: Option<&str> = None;
    for doc in members {
        let v = doc.get(field)?.as_str()?;
        match out {
            None => out = Some(v),
            Some(seen) if seen == v => {}
            Some(_) => return None,
        }
    }
    out.map(str::to_string)
}

/// Always-present scalar paths of a flavor — plausible index keys.
fn index_candidates(ty: &JType) -> Vec<String> {
    let mut out = Vec::new();
    collect_paths(ty, String::new(), &mut out);
    out
}

fn collect_paths(ty: &JType, prefix: String, out: &mut Vec<String>) {
    if let JType::Record(rt) = ty {
        for (name, field) in &rt.fields {
            if field.presence < rt.count {
                continue; // optional fields index poorly
            }
            let path = if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}.{name}")
            };
            match &field.ty {
                JType::Record(_) => collect_paths(&field.ty, path, out),
                JType::Int { .. }
                | JType::Str { .. }
                | JType::Float { .. }
                | JType::Bool { .. } => out.push(path),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    fn events() -> Vec<Value> {
        (0..60)
            .map(|i| match i % 3 {
                0 => json!({"type": "push", "commits": [i], "repo": "r"}),
                1 => json!({"type": "watch", "action": "started", "repo": "r"}),
                _ => json!({"type": "fork", "forkee": {"id": (i as i64)}, "repo": "r"}),
            })
            .collect()
    }

    #[test]
    fn flavors_follow_structure() {
        let report = discover_flavors(&events(), 10);
        assert_eq!(report.flavors.len(), 3);
        assert_eq!(report.total_docs, 60);
        assert_eq!(report.flavors[0].count, 20);
    }

    #[test]
    fn discriminator_is_detected_and_names_flavors() {
        let report = discover_flavors(&events(), 10);
        assert_eq!(report.discriminator.as_deref(), Some("type"));
        let names: Vec<&str> = report.flavors.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"type=push"));
        assert!(names.contains(&"type=watch"));
        assert!(names.contains(&"type=fork"));
    }

    #[test]
    fn no_discriminator_when_fields_vary_within_groups() {
        let docs: Vec<Value> = (0..20)
            .map(|i| json!({"id": format!("u{i}"), "n": (i as i64)}))
            .collect();
        let report = discover_flavors(&docs, 5);
        // One structure, and `id` varies inside it → no discriminator.
        assert_eq!(report.flavors.len(), 1);
        assert_eq!(report.discriminator, None);
        assert_eq!(report.flavors[0].name, "flavor-0");
    }

    #[test]
    fn tail_merges_into_flavor_budget() {
        let report = discover_flavors(&events(), 2);
        assert_eq!(report.flavors.len(), 2);
        let total: u64 = report.flavors.iter().map(|f| f.count).sum();
        assert_eq!(total, 60);
    }

    #[test]
    fn index_candidates_are_mandatory_scalars() {
        let report = discover_flavors(&events(), 10);
        let push = report
            .flavors
            .iter()
            .find(|f| f.name == "type=push")
            .unwrap();
        assert!(push.index_candidates.contains(&"repo".to_string()));
        assert!(push.index_candidates.contains(&"type".to_string()));
        // commits is an array → not an index candidate.
        assert!(!push.index_candidates.iter().any(|p| p == "commits"));
    }

    #[test]
    fn flavor_types_admit_their_members() {
        let docs = events();
        let report = discover_flavors(&docs, 10);
        for doc in &docs {
            assert!(
                report.flavors.iter().any(|f| f.inferred.admits(doc)),
                "no flavor admits {doc}"
            );
        }
    }

    #[test]
    fn empty_collection() {
        let report = discover_flavors(&[], 4);
        assert!(report.flavors.is_empty());
        assert_eq!(report.discriminator, None);
    }
}
