//! Skinfer-style JSON Schema inference.
//!
//! The tutorial (§4.1): "Skinfer exploits two different functions for
//! inferring a schema from an object and for merging two schemas; schema
//! merging is limited to record types only, and cannot be recursively
//! applied to objects nested inside arrays."
//!
//! We reproduce both functions and both limitations. Schemas are plain
//! JSON Schema documents (as `Value`s), directly checkable with
//! `jsonx-schema`:
//!
//! * [`infer_skinfer`]: folds a collection with [`skinfer_merge`].
//! * [`skinfer_merge`]: merges `object` schemas recursively (properties
//!   union, `required` intersection), merges scalar `type`s into type
//!   arrays — but when two `array` schemas disagree on their `items`, it
//!   *drops the items constraint entirely* instead of recursing
//!   (the documented non-recursive-under-arrays behaviour that E12
//!   measures).

use jsonx_data::{json, Object, Value};

/// Infers a JSON Schema for one document (Skinfer's `schema_from_object`).
pub fn infer_one(value: &Value) -> Value {
    match value {
        Value::Null => json!({"type": "null"}),
        Value::Bool(_) => json!({"type": "boolean"}),
        Value::Num(n) if n.is_integer() => json!({"type": "integer"}),
        Value::Num(_) => json!({"type": "number"}),
        Value::Str(_) => json!({"type": "string"}),
        Value::Arr(items) => {
            let mut schema = Object::new();
            schema.insert("type", Value::from("array"));
            if let Some(first) = items.first() {
                // Skinfer types array items from the elements of *one*
                // document by merging them pairwise.
                let merged = items.iter().skip(1).fold(infer_one(first), |acc, v| {
                    skinfer_merge(&acc, &infer_one(v))
                });
                schema.insert("items", merged);
            }
            Value::Obj(schema)
        }
        Value::Obj(obj) => {
            let mut properties = Object::new();
            let mut required: Vec<Value> = Vec::new();
            for (k, v) in obj.iter() {
                properties.insert(k.to_string(), infer_one(v));
                required.push(Value::from(k));
            }
            let mut schema = Object::new();
            schema.insert("type", Value::from("object"));
            schema.insert("properties", Value::Obj(properties));
            if !required.is_empty() {
                schema.insert("required", Value::Arr(required));
            }
            Value::Obj(schema)
        }
    }
}

/// Merges two Skinfer schemas (Skinfer's `merge_schema`).
pub fn skinfer_merge(a: &Value, b: &Value) -> Value {
    let (Some(ta), Some(tb)) = (type_of(a), type_of(b)) else {
        // Unknown shape: give up and accept anything.
        return json!({});
    };
    if ta == "object" && tb == "object" {
        return merge_objects(a, b);
    }
    if ta == "array" && tb == "array" {
        return merge_arrays(a, b);
    }
    // Scalar (or mixed-category) merge: union the type lists.
    let mut types = type_list(a);
    for t in type_list(b) {
        if !types.contains(&t) {
            types.push(t);
        }
    }
    if types.len() == 1 {
        let mut o = Object::new();
        o.insert("type", Value::from(types.pop().expect("len checked")));
        Value::Obj(o)
    } else {
        let mut o = Object::new();
        o.insert(
            "type",
            Value::Arr(types.into_iter().map(Value::from).collect()),
        );
        Value::Obj(o)
    }
}

fn type_of(schema: &Value) -> Option<String> {
    match schema.get("type") {
        Some(Value::Str(s)) => Some(s.clone()),
        Some(Value::Arr(_)) => Some("mixed".to_string()),
        _ => None,
    }
}

fn type_list(schema: &Value) -> Vec<String> {
    match schema.get("type") {
        Some(Value::Str(s)) => vec![s.clone()],
        Some(Value::Arr(items)) => items
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect(),
        _ => vec![],
    }
}

fn merge_objects(a: &Value, b: &Value) -> Value {
    let empty = Object::new();
    let props_a = a
        .get("properties")
        .and_then(Value::as_object)
        .unwrap_or(&empty);
    let props_b = b
        .get("properties")
        .and_then(Value::as_object)
        .unwrap_or(&empty);
    let mut properties = Object::new();
    for (k, sa) in props_a.iter() {
        match props_b.get(k) {
            // Record merging *is* recursive — that part Skinfer does well.
            Some(sb) => properties.insert(k.to_string(), skinfer_merge(sa, sb)),
            None => properties.insert(k.to_string(), sa.clone()),
        };
    }
    for (k, sb) in props_b.iter() {
        if !properties.contains_key(k) {
            properties.insert(k.to_string(), sb.clone());
        }
    }
    // `required` is the intersection: a field mandatory in both stays so.
    let req = |s: &Value| -> Vec<String> {
        s.get("required")
            .and_then(Value::as_array)
            .map(|r| {
                r.iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default()
    };
    let ra = req(a);
    let rb = req(b);
    let required: Vec<Value> = ra
        .iter()
        .filter(|k| rb.contains(k))
        .map(|k| Value::from(k.as_str()))
        .collect();

    let mut schema = Object::new();
    schema.insert("type", Value::from("object"));
    schema.insert("properties", Value::Obj(properties));
    if !required.is_empty() {
        schema.insert("required", Value::Arr(required));
    }
    Value::Obj(schema)
}

fn merge_arrays(a: &Value, b: &Value) -> Value {
    match (a.get("items"), b.get("items")) {
        (Some(ia), Some(ib)) if ia == ib => {
            let mut schema = Object::new();
            schema.insert("type", Value::from("array"));
            schema.insert("items", ia.clone());
            Value::Obj(schema)
        }
        (None, None) => json!({"type": "array"}),
        // Differing item schemas: Skinfer does not recurse under arrays —
        // the constraint is dropped and any items are accepted.
        _ => json!({"type": "array"}),
    }
}

/// Infers a schema for a whole collection by folding [`skinfer_merge`].
pub fn infer_skinfer(docs: &[Value]) -> Value {
    let mut iter = docs.iter();
    let Some(first) = iter.next() else {
        // No observations: the vacuous schema.
        return json!({});
    };
    iter.fold(infer_one(first), |acc, d| {
        skinfer_merge(&acc, &infer_one(d))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    #[test]
    fn single_document_schema() {
        let s = infer_one(&json!({"id": 1, "tags": ["a"]}));
        assert_eq!(
            s,
            json!({
                "type": "object",
                "properties": {
                    "id": {"type": "integer"},
                    "tags": {"type": "array", "items": {"type": "string"}}
                },
                "required": ["id", "tags"]
            })
        );
    }

    #[test]
    fn record_merge_is_recursive() {
        let s = infer_skinfer(&[json!({"u": {"a": 1}}), json!({"u": {"a": 2, "b": "x"}})]);
        let u = s.get("properties").unwrap().get("u").unwrap();
        assert!(u.get("properties").unwrap().get("b").is_some());
        // `a` required in both, `b` only in one.
        assert_eq!(u.get("required"), Some(&json!(["a"])));
    }

    #[test]
    fn required_is_intersection() {
        let s = infer_skinfer(&[json!({"a": 1, "b": 2}), json!({"a": 3})]);
        assert_eq!(s.get("required"), Some(&json!(["a"])));
    }

    #[test]
    fn scalar_merge_builds_type_arrays() {
        let s = infer_skinfer(&[json!(1), json!("x")]);
        assert_eq!(s, json!({"type": ["integer", "string"]}));
        // Idempotent on the same type.
        let s = infer_skinfer(&[json!(1), json!(2)]);
        assert_eq!(s, json!({"type": "integer"}));
    }

    #[test]
    fn array_merge_does_not_recurse() {
        // The documented limitation: records nested inside arrays are not
        // merged — the items constraint is dropped wholesale.
        let s = infer_skinfer(&[json!({"xs": [{"a": 1}]}), json!({"xs": [{"a": 1, "b": 2}]})]);
        let xs = s.get("properties").unwrap().get("xs").unwrap();
        assert_eq!(xs, &json!({"type": "array"})); // items gone
    }

    #[test]
    fn identical_array_items_survive() {
        let s = infer_skinfer(&[json!([1, 2]), json!([3])]);
        assert_eq!(s, json!({"type": "array", "items": {"type": "integer"}}));
    }

    #[test]
    fn empty_collection_gives_vacuous_schema() {
        assert_eq!(infer_skinfer(&[]), json!({}));
    }
}
