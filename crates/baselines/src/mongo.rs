//! mongodb-schema-style streaming field profiler.
//!
//! The tutorial (§4.1): "this tool analyzes JSON objects pulled from
//! MongoDB, and processes them in a streaming fashion; it is able to
//! return quite concise schemas, but it cannot infer information
//! describing field correlation."
//!
//! [`MongoProfiler`] is accordingly a one-pass, bounded-memory profiler:
//! for every label path it tracks how many documents carry the field, the
//! distribution of kinds observed there, and a bounded sample of values.
//! What it deliberately does *not* track is which fields co-occur — the
//! limitation E7/E5 contrast against the union-typed inferrers.

use jsonx_data::{Kind, LabelPath, LabelStep, Value};
use std::collections::BTreeMap;

/// Per-path statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldProfile {
    /// In how many documents the path was present (for array paths: in how
    /// many parent containers an element existed).
    pub present: u64,
    /// Occurrences per kind at this path.
    pub kinds: BTreeMap<Kind, u64>,
    /// Up to `sample_cap` sample values (first-seen).
    pub samples: Vec<Value>,
}

impl FieldProfile {
    fn new() -> Self {
        FieldProfile {
            present: 0,
            kinds: BTreeMap::new(),
            samples: Vec::new(),
        }
    }

    /// Fraction of profiled documents containing this path.
    pub fn probability(&self, total_docs: u64) -> f64 {
        if total_docs == 0 {
            0.0
        } else {
            self.present as f64 / total_docs as f64
        }
    }

    /// Kinds observed, most frequent first.
    pub fn kinds_by_frequency(&self) -> Vec<(Kind, u64)> {
        let mut v: Vec<(Kind, u64)> = self.kinds.iter().map(|(k, n)| (*k, *n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

/// A streaming schema profiler.
#[derive(Debug, Clone)]
pub struct MongoProfiler {
    paths: BTreeMap<LabelPath, FieldProfile>,
    total_docs: u64,
    sample_cap: usize,
}

impl Default for MongoProfiler {
    fn default() -> Self {
        MongoProfiler::new(4)
    }
}

impl MongoProfiler {
    /// Creates a profiler keeping at most `sample_cap` sample values per
    /// path (bounded memory, as in the original tool).
    pub fn new(sample_cap: usize) -> Self {
        MongoProfiler {
            paths: BTreeMap::new(),
            total_docs: 0,
            sample_cap,
        }
    }

    /// Profiles one document (streaming: call per document, in any order).
    pub fn observe(&mut self, doc: &Value) {
        self.total_docs += 1;
        let mut prefix = Vec::new();
        self.walk(doc, &mut prefix);
    }

    fn walk(&mut self, value: &Value, prefix: &mut Vec<LabelStep>) {
        match value {
            Value::Obj(obj) => {
                for (k, v) in obj.iter() {
                    prefix.push(LabelStep::Field(k.to_string()));
                    self.record(prefix, v);
                    self.walk(v, prefix);
                    prefix.pop();
                }
            }
            Value::Arr(items) => {
                // One presence tick per parent array that has elements;
                // kind counts still count every element.
                prefix.push(LabelStep::AnyItem);
                let mut first = true;
                for v in items {
                    self.record_element(prefix, v, first);
                    first = false;
                    self.walk(v, prefix);
                }
                prefix.pop();
            }
            _ => {}
        }
    }

    fn record(&mut self, prefix: &[LabelStep], value: &Value) {
        let profile = self
            .paths
            .entry(LabelPath(prefix.to_vec()))
            .or_insert_with(FieldProfile::new);
        profile.present += 1;
        *profile.kinds.entry(value.kind()).or_insert(0) += 1;
        if profile.samples.len() < self.sample_cap {
            profile.samples.push(value.clone());
        }
    }

    fn record_element(&mut self, prefix: &[LabelStep], value: &Value, first: bool) {
        let profile = self
            .paths
            .entry(LabelPath(prefix.to_vec()))
            .or_insert_with(FieldProfile::new);
        if first {
            profile.present += 1;
        }
        *profile.kinds.entry(value.kind()).or_insert(0) += 1;
        if profile.samples.len() < self.sample_cap {
            profile.samples.push(value.clone());
        }
    }

    /// Number of documents observed.
    pub fn total_docs(&self) -> u64 {
        self.total_docs
    }

    /// The profiled paths.
    pub fn paths(&self) -> impl Iterator<Item = (&LabelPath, &FieldProfile)> {
        self.paths.iter()
    }

    /// Profile for one dotted path (e.g. `"user.name"`, `"tags[]"`).
    pub fn get(&self, dotted: &str) -> Option<&FieldProfile> {
        self.paths
            .iter()
            .find(|(p, _)| p.display() == dotted)
            .map(|(_, f)| f)
    }

    /// Schema size: number of profiled paths (concise by construction —
    /// the contrast to [`crate::naive`]).
    pub fn size(&self) -> usize {
        self.paths.len()
    }

    /// Renders a compact report, one line per path.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for (path, profile) in &self.paths {
            let kinds: Vec<String> = profile
                .kinds_by_frequency()
                .into_iter()
                .map(|(k, n)| format!("{k}×{n}"))
                .collect();
            out.push_str(&format!(
                "{} p={:.2} [{}]\n",
                path.display(),
                profile.probability(self.total_docs),
                kinds.join(", ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    fn profiler(docs: &[Value]) -> MongoProfiler {
        let mut p = MongoProfiler::default();
        for d in docs {
            p.observe(d);
        }
        p
    }

    #[test]
    fn presence_probability() {
        let p = profiler(&[
            json!({"a": 1, "b": "x"}),
            json!({"a": 2}),
            json!({"a": "s", "c": null}),
        ]);
        assert_eq!(p.total_docs(), 3);
        assert!((p.get("a").unwrap().probability(3) - 1.0).abs() < 1e-9);
        assert!((p.get("b").unwrap().probability(3) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn kind_distributions() {
        let p = profiler(&[json!({"a": 1}), json!({"a": 2}), json!({"a": "s"})]);
        let kinds = p.get("a").unwrap().kinds_by_frequency();
        assert_eq!(kinds[0], (Kind::Integer, 2));
        assert_eq!(kinds[1], (Kind::String, 1));
    }

    #[test]
    fn nested_and_array_paths() {
        let p = profiler(&[json!({"u": {"n": "a"}, "tags": [1, "x"]})]);
        assert!(p.get("u").is_some());
        assert!(p.get("u.n").is_some());
        assert!(p.get("tags[]").is_some());
        let tag_kinds = p.get("tags[]").unwrap();
        assert_eq!(tag_kinds.kinds.len(), 2);
        assert_eq!(tag_kinds.present, 1); // one array had elements
    }

    #[test]
    fn no_field_correlation_is_retained() {
        // Two disjoint shapes produce the same profile as their mixture —
        // exactly the information loss the tutorial points out.
        let disjoint = profiler(&[json!({"a": 1}), json!({"b": 2})]);
        let mixed = profiler(&[json!({"a": 1, "b": 2}), json!({})]);
        let probs = |p: &MongoProfiler| {
            (
                p.get("a").unwrap().probability(p.total_docs()),
                p.get("b").unwrap().probability(p.total_docs()),
            )
        };
        assert_eq!(probs(&disjoint), probs(&mixed));
    }

    #[test]
    fn sample_cap_bounds_memory() {
        let docs: Vec<Value> = (0..100).map(|i| json!({"k": i})).collect();
        let p = profiler(&docs);
        assert_eq!(p.get("k").unwrap().samples.len(), 4);
    }

    #[test]
    fn report_renders() {
        let p = profiler(&[json!({"a": 1})]);
        let report = p.report();
        assert!(report.contains("a p=1.00 [integer×1]"));
    }

    #[test]
    fn size_is_path_count() {
        let p = profiler(&[json!({"a": {"b": 1}, "c": 2})]);
        assert_eq!(p.size(), 3); // a, a.b, c
    }
}
