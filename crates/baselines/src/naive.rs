//! Studio 3T-style "no-merge" inference.
//!
//! The tutorial (§4.1) notes that Studio 3T "is not able to merge similar
//! types, and the resulting schemas can have a huge size, which is
//! comparable to that of the input data". This baseline reproduces that
//! behaviour: every document is typed exactly, and the schema is the list
//! of *distinct* document types with occurrence counts. Experiment E7
//! plots its size against the merging inferrers'.

use jsonx_core::{infer_value, type_size, Equivalence, JType};
use jsonx_data::Value;

/// A no-merge schema: distinct per-document types with multiplicities.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveSchema {
    /// Distinct exact document types, in first-seen order.
    pub variants: Vec<(JType, u64)>,
}

impl NaiveSchema {
    /// Number of distinct document shapes.
    pub fn variant_count(&self) -> usize {
        self.variants.len()
    }

    /// Total schema size: the sum of all variant sizes — the quantity that
    /// grows with the data instead of converging.
    pub fn size(&self) -> usize {
        self.variants.iter().map(|(t, _)| type_size(t)).sum()
    }

    /// A value conforms when some variant admits it.
    pub fn admits(&self, value: &Value) -> bool {
        self.variants.iter().any(|(t, _)| t.admits(value))
    }
}

/// Infers the no-merge schema of a collection.
///
/// Per-document types come from the same map step as parametric inference
/// (all counters 1), so variants are comparable across tools; deduplication
/// is by structural equality of the exact types.
pub fn infer_naive(docs: &[Value]) -> NaiveSchema {
    let mut variants: Vec<(JType, u64)> = Vec::new();
    for doc in docs {
        // The equivalence only affects fusion, which the map step applies
        // inside arrays; Kind vs Label is irrelevant for exact documents
        // with homogeneous arrays, and Kind matches Studio 3T's display.
        let t = infer_value(doc, Equivalence::Kind);
        match variants.iter_mut().find(|(v, _)| *v == t) {
            Some((_, n)) => *n += 1,
            None => variants.push((t, 1)),
        }
    }
    NaiveSchema { variants }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    #[test]
    fn duplicates_collapse_distinct_shapes_do_not() {
        let docs = vec![
            json!({"a": 1}),
            json!({"a": 2}),
            json!({"a": "s"}),
            json!({"b": true}),
        ];
        let s = infer_naive(&docs);
        assert_eq!(s.variant_count(), 3);
        assert_eq!(s.variants[0].1, 2); // {"a": Int} seen twice
    }

    #[test]
    fn size_grows_with_shape_diversity() {
        // Every document distinct: size ~ data size.
        let diverse: Vec<Value> = (0..50)
            .map(|i| {
                let key = format!("k{i}");
                json!({ key: i })
            })
            .collect();
        let s = infer_naive(&diverse);
        assert_eq!(s.variant_count(), 50);
        assert!(s.size() >= 150); // 3 nodes per variant
                                  // Homogeneous collection: one variant no matter the count.
        let uniform: Vec<Value> = (0..50).map(|i| json!({"k": i})).collect();
        assert_eq!(infer_naive(&uniform).variant_count(), 1);
    }

    #[test]
    fn admits_only_seen_shapes() {
        let s = infer_naive(&[json!({"a": 1}), json!({"b": "x"})]);
        assert!(s.admits(&json!({"a": 7})));
        assert!(s.admits(&json!({"b": "y"})));
        // Exact typing: the combined shape was never seen.
        assert!(!s.admits(&json!({"a": 1, "b": "x"})));
    }

    #[test]
    fn empty_collection() {
        let s = infer_naive(&[]);
        assert_eq!(s.variant_count(), 0);
        assert_eq!(s.size(), 0);
        assert!(!s.admits(&json!(null)));
    }
}
