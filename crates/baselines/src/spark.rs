//! Spark Dataframe-style schema inference.
//!
//! Models `spark.read.json` schema extraction as documented and surveyed:
//! a type language **without union types**, where conflicting observations
//! are resolved by widening — `Long` and `Double` widen to `Double`,
//! anything else that conflicts widens to `String` (Spark's
//! `compatibleType` falls back to `StringType`). Structs take the union of
//! their fields; arrays merge element types. `null` observations make a
//! position nullable without changing its type.

use jsonx_data::Value;
use std::fmt;

/// The Spark-style type lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparkType {
    /// Only nulls seen so far.
    Null,
    Boolean,
    /// Integral numbers.
    Long,
    /// Any numbers.
    Double,
    /// The widening fallback — and where heterogeneity goes to die.
    String,
    Array(Box<SparkType>),
    /// Field name → type, sorted by name. (Spark tracks nullability per
    /// field; presence/absence maps to nullable, which we keep implicit.)
    Struct(Vec<(String, SparkType)>),
}

impl SparkType {
    /// The exact type of one value.
    fn of(value: &Value) -> SparkType {
        match value {
            Value::Null => SparkType::Null,
            Value::Bool(_) => SparkType::Boolean,
            Value::Num(n) if n.is_integer() => SparkType::Long,
            Value::Num(_) => SparkType::Double,
            Value::Str(_) => SparkType::String,
            Value::Arr(items) => {
                let item = items.iter().map(SparkType::of).fold(SparkType::Null, merge);
                SparkType::Array(Box::new(item))
            }
            Value::Obj(obj) => {
                let mut fields: Vec<(String, SparkType)> = obj
                    .iter()
                    .map(|(k, v)| (k.to_string(), SparkType::of(v)))
                    .collect();
                fields.sort_by(|(a, _), (b, _)| a.cmp(b));
                SparkType::Struct(fields)
            }
        }
    }

    /// Structural admission under Spark semantics: a `String` position
    /// accepts any *scalar* (Spark stringifies scalars when the schema says
    /// string), which is exactly the imprecision E5 measures.
    pub fn admits(&self, value: &Value) -> bool {
        match (self, value) {
            (SparkType::Null, Value::Null) => true,
            (_, Value::Null) => true, // everything is nullable in Spark
            (SparkType::Boolean, Value::Bool(_)) => true,
            (SparkType::Long, Value::Num(n)) => n.is_integer(),
            (SparkType::Double, Value::Num(_)) => true,
            (SparkType::String, v) => !matches!(v, Value::Arr(_) | Value::Obj(_)),
            (SparkType::Array(item), Value::Arr(items)) => items.iter().all(|v| item.admits(v)),
            (SparkType::Struct(fields), Value::Obj(obj)) => obj.iter().all(|(k, v)| {
                fields
                    .iter()
                    .find(|(name, _)| name == k)
                    .is_some_and(|(_, t)| t.admits(v))
            }),
            _ => false,
        }
    }
}

/// Spark's `compatibleType`: the least upper bound in its lattice, with
/// `String` as the fallback for incompatible pairs.
pub fn merge(a: SparkType, b: SparkType) -> SparkType {
    use SparkType::*;
    match (a, b) {
        (Null, t) | (t, Null) => t,
        (Boolean, Boolean) => Boolean,
        (Long, Long) => Long,
        (Double, Double) | (Long, Double) | (Double, Long) => Double,
        (String, _) | (_, String) => String,
        (Array(x), Array(y)) => Array(Box::new(merge(*x, *y))),
        (Struct(xs), Struct(ys)) => {
            let mut fields: Vec<(std::string::String, SparkType)> = Vec::new();
            let mut xi = xs.into_iter().peekable();
            let mut yi = ys.into_iter().peekable();
            loop {
                match (xi.peek(), yi.peek()) {
                    (Some((xn, _)), Some((yn, _))) => {
                        if xn == yn {
                            let (name, xt) = xi.next().expect("peeked");
                            let (_, yt) = yi.next().expect("peeked");
                            fields.push((name, merge(xt, yt)));
                        } else if xn < yn {
                            fields.push(xi.next().expect("peeked"));
                        } else {
                            fields.push(yi.next().expect("peeked"));
                        }
                    }
                    (Some(_), None) => fields.push(xi.next().expect("peeked")),
                    (None, Some(_)) => fields.push(yi.next().expect("peeked")),
                    (None, None) => break,
                }
            }
            Struct(fields)
        }
        // Struct vs Array vs scalar conflicts: the StringType fallback.
        _ => String,
    }
}

/// Infers a Spark-style schema for a collection.
pub fn infer_spark(docs: &[Value]) -> SparkType {
    docs.iter().map(SparkType::of).fold(SparkType::Null, merge)
}

/// AST size, comparable to [`jsonx_core::type_size`].
pub fn spark_type_size(t: &SparkType) -> usize {
    match t {
        SparkType::Array(item) => 1 + spark_type_size(item),
        SparkType::Struct(fields) => {
            1 + fields
                .iter()
                .map(|(_, t)| 1 + spark_type_size(t))
                .sum::<usize>()
        }
        _ => 1,
    }
}

impl fmt::Display for SparkType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparkType::Null => write!(f, "null"),
            SparkType::Boolean => write!(f, "boolean"),
            SparkType::Long => write!(f, "long"),
            SparkType::Double => write!(f, "double"),
            SparkType::String => write!(f, "string"),
            SparkType::Array(item) => write!(f, "array<{item}>"),
            SparkType::Struct(fields) => {
                write!(f, "struct<")?;
                for (i, (name, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{name}:{t}")?;
                }
                write!(f, ">")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    #[test]
    fn homogeneous_structs() {
        let t = infer_spark(&[json!({"id": 1, "name": "a"}), json!({"id": 2, "name": "b"})]);
        assert_eq!(t.to_string(), "struct<id:long,name:string>");
    }

    #[test]
    fn numeric_widening() {
        let t = infer_spark(&[json!(1), json!(2.5)]);
        assert_eq!(t, SparkType::Double);
    }

    #[test]
    fn heterogeneity_falls_to_string() {
        // The §4.1 claim: conflicting kinds resort to Str.
        assert_eq!(infer_spark(&[json!(1), json!("x")]), SparkType::String);
        assert_eq!(infer_spark(&[json!(true), json!(1)]), SparkType::String);
        assert_eq!(
            infer_spark(&[json!({"a": 1}), json!([1])]),
            SparkType::String
        );
    }

    #[test]
    fn nulls_are_absorbed() {
        assert_eq!(infer_spark(&[json!(null), json!(1)]), SparkType::Long);
        assert_eq!(infer_spark(&[]), SparkType::Null);
    }

    #[test]
    fn field_union_in_structs() {
        let t = infer_spark(&[json!({"a": 1}), json!({"b": "x"})]);
        assert_eq!(t.to_string(), "struct<a:long,b:string>");
    }

    #[test]
    fn conflicting_field_types_widen_in_place() {
        let t = infer_spark(&[json!({"v": 1}), json!({"v": "s"})]);
        assert_eq!(t.to_string(), "struct<v:string>");
    }

    #[test]
    fn arrays_merge_elements() {
        let t = infer_spark(&[json!([1, 2]), json!([2.5])]);
        assert_eq!(t.to_string(), "array<double>");
        let t = infer_spark(&[json!([1]), json!(["x"])]);
        assert_eq!(t.to_string(), "array<string>");
    }

    #[test]
    fn string_admits_any_scalar() {
        let t = infer_spark(&[json!(1), json!("x")]); // String
        assert!(t.admits(&json!(true)));
        assert!(t.admits(&json!(3.5)));
        assert!(t.admits(&json!(null)));
        assert!(!t.admits(&json!([1])));
    }

    #[test]
    fn struct_admits_missing_fields_as_null() {
        let t = infer_spark(&[json!({"a": 1, "b": "x"})]);
        assert!(t.admits(&json!({"a": 2}))); // b nullable/absent
        assert!(!t.admits(&json!({"a": "not long"})));
        assert!(!t.admits(&json!({"unknown": 1})));
    }

    #[test]
    fn sizes_comparable() {
        let t = infer_spark(&[json!({"a": 1, "b": [true]})]);
        assert_eq!(spark_type_size(&t), 6);
    }
}
