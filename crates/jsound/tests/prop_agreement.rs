//! Property test: for randomly generated JSound schemas and instances, the
//! JSound validator agrees with the JSON Schema validator running the
//! compiled translation — pinning `compile_to_json_schema` semantics.

use jsonx_data::{json, Number, Object, Value};
use jsonx_jsound::JSoundSchema;
use jsonx_schema::{CompiledSchema, ValidatorOptions};
use proptest::prelude::*;

fn arb_jsound() -> impl Strategy<Value = Value> {
    let atomic = prop_oneof![
        Just(json!("string")),
        Just(json!("integer")),
        Just(json!("decimal")),
        Just(json!("boolean")),
        Just(json!("null")),
        Just(json!("any")),
        Just(json!("date")),
        Just(json!("anyURI")),
    ];
    atomic.prop_recursive(3, 12, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|t| Value::Arr(vec![t])),
            prop::collection::vec(("[a-c]", any::<bool>(), inner), 0..3).prop_map(|fields| {
                let mut obj = Object::new();
                for (name, required, ty) in fields {
                    let key = if required { format!("!{name}") } else { name };
                    obj.insert(key, ty);
                }
                Value::Obj(obj)
            }),
        ]
    })
}

fn arb_instance() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-50i64..50).prop_map(|i| Value::Num(Number::Int(i))),
        (-2.0f64..2.0).prop_map(|f| Value::Num(Number::from_f64(f).unwrap())),
        "[a-c]{0,3}".prop_map(Value::Str),
        Just(json!("2019-03-26")),
        Just(json!("2019-13-45")),
        Just(json!("2019-02-29")),
        Just(json!("2020-02-29")),
        Just(json!("https://example.org/x")),
        Just(json!("not a uri")),
        Just(json!("2019-03-26T10:00:00Z")),
    ];
    leaf.prop_recursive(3, 12, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..3).prop_map(Value::Arr),
            prop::collection::vec(("[a-c]", inner), 0..3)
                .prop_map(|pairs| Value::Obj(pairs.into_iter().collect::<Object>())),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    #[test]
    fn jsound_and_translation_agree(schema_doc in arb_jsound(), instance in arb_instance()) {
        // Duplicate names with/without `!` can collide after marker
        // stripping; those schemas are rejected by JSound — skip them.
        let Ok(jsound) = JSoundSchema::compile(&schema_doc) else {
            return Ok(());
        };
        let translated = jsound.compile_to_json_schema();
        let compiled = CompiledSchema::compile(&translated)
            .unwrap_or_else(|e| panic!("translation of {schema_doc} invalid: {e}"));
        let opts = ValidatorOptions { enforce_formats: true };
        let a = jsound.is_valid(&instance);
        let b = compiled.validate_with(&instance, opts).is_ok();
        prop_assert_eq!(
            a, b,
            "JSound={} translation={} disagree on {} for schema {}",
            a, b, instance, schema_doc
        );
    }
}
