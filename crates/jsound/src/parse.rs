//! Parsing JSound schema documents (the compact syntax).

use crate::ast::{AtomicType, JSoundError, JSoundField, JSoundType};
use jsonx_data::Value;

/// A compiled JSound schema.
#[derive(Debug, Clone, PartialEq)]
pub struct JSoundSchema {
    /// The root type.
    pub root: JSoundType,
}

impl JSoundSchema {
    /// Compiles a JSound schema document.
    pub fn compile(document: &Value) -> Result<JSoundSchema, JSoundError> {
        Ok(JSoundSchema {
            root: compile_type(document, "$")?,
        })
    }
}

fn compile_type(value: &Value, path: &str) -> Result<JSoundType, JSoundError> {
    match value {
        Value::Str(name) => AtomicType::from_name(name)
            .map(JSoundType::Atomic)
            .ok_or_else(|| JSoundError {
                path: path.to_string(),
                message: format!("unknown atomic type '{name}'"),
            }),
        Value::Arr(items) => match items.len() {
            1 => Ok(JSoundType::Array(Box::new(compile_type(
                &items[0],
                &format!("{path}[]"),
            )?))),
            n => Err(JSoundError {
                path: path.to_string(),
                message: format!("array types must have exactly one member type, found {n}"),
            }),
        },
        Value::Obj(obj) => {
            let mut fields = Vec::with_capacity(obj.len());
            for (raw_name, member) in obj.iter() {
                let (name, required, unique) = parse_markers(raw_name);
                if name.is_empty() {
                    return Err(JSoundError {
                        path: path.to_string(),
                        message: format!("empty field name in '{raw_name}'"),
                    });
                }
                if fields.iter().any(|f: &JSoundField| f.name == name) {
                    return Err(JSoundError {
                        path: path.to_string(),
                        message: format!("field '{name}' declared twice"),
                    });
                }
                let ty = compile_type(member, &format!("{path}.{name}"))?;
                fields.push(JSoundField {
                    name,
                    required,
                    unique,
                    ty,
                });
            }
            Ok(JSoundType::Object(fields))
        }
        other => Err(JSoundError {
            path: path.to_string(),
            message: format!(
                "a JSound type is a type name, an object, or a one-element array; found {}",
                other.kind()
            ),
        }),
    }
}

/// Strips the `!` (required) and `@` (unique id) markers off a field name.
fn parse_markers(raw: &str) -> (String, bool, bool) {
    let mut required = false;
    let mut unique = false;
    let mut rest = raw;
    loop {
        if let Some(r) = rest.strip_prefix('!') {
            required = true;
            rest = r;
        } else if let Some(r) = rest.strip_prefix('@') {
            unique = true;
            required = true; // identifiers are implicitly required
            rest = r;
        } else {
            break;
        }
    }
    (rest.to_string(), required, unique)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    #[test]
    fn atomic_and_array_types() {
        let s = JSoundSchema::compile(&json!("string")).unwrap();
        assert_eq!(s.root, JSoundType::Atomic(AtomicType::String));
        let s = JSoundSchema::compile(&json!(["integer"])).unwrap();
        assert_eq!(
            s.root,
            JSoundType::Array(Box::new(JSoundType::Atomic(AtomicType::Integer)))
        );
    }

    #[test]
    fn object_markers() {
        let s = JSoundSchema::compile(&json!({
            "@id": "integer",
            "!name": "string",
            "nick": "string"
        }))
        .unwrap();
        let JSoundType::Object(fields) = &s.root else {
            panic!()
        };
        let by_name = |n: &str| fields.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("id").unique && by_name("id").required);
        assert!(by_name("name").required && !by_name("name").unique);
        assert!(!by_name("nick").required);
    }

    #[test]
    fn bad_schemas_rejected() {
        assert!(JSoundSchema::compile(&json!("widget")).is_err());
        assert!(JSoundSchema::compile(&json!(["string", "integer"])).is_err());
        assert!(JSoundSchema::compile(&json!([])).is_err());
        assert!(JSoundSchema::compile(&json!(3)).is_err());
        assert!(JSoundSchema::compile(&json!({"!a": "string", "a": "integer"})).is_err());
        assert!(JSoundSchema::compile(&json!({"!": "string"})).is_err());
    }

    #[test]
    fn nested_error_paths() {
        let err = JSoundSchema::compile(&json!({"a": {"b": "mystery"}})).unwrap_err();
        assert_eq!(err.path, "$.a.b");
    }
}
