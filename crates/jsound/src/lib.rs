//! # jsonx-jsound
//!
//! A JSound-style schema language, after the JSONiq JSound specification
//! the tutorial surveys in §2 as "an alternative, but quite restrictive,
//! schema language". JSound schemas are *schemas by example*: a schema is
//! itself a JSON document whose shape mirrors the instances, written in
//! the compact syntax —
//!
//! ```json
//! {
//!   "!id": "integer",
//!   "name": "string",
//!   "tags": ["string"],
//!   "address": { "street": "string", "city": "string" }
//! }
//! ```
//!
//! * a field value is an **atomic type name** (`"string"`, `"integer"`,
//!   `"decimal"`, `"boolean"`, `"null"`, `"anyURI"`, `"dateTime"`,
//!   `"date"`, `"any"`), a nested **object** (record), or a
//!   **one-element array** (array of that member type);
//! * a key prefixed `!` is **required**; other keys are optional
//!   (the compact-syntax marker);
//! * `@` before a type name marks the field as unique identifier
//!   (validated as the base type; uniqueness is per-collection);
//! * there are **no union types** — that restrictiveness is the point the
//!   tutorial makes, and what distinguishes it from JSON Schema (§2).
//!
//! [`JSoundSchema::compile_to_json_schema`] translates a JSound schema into
//! the JSON Schema dialect of `jsonx-schema`, and the integration tests
//! check both validators agree.

pub mod ast;
pub mod compile;
pub mod parse;
pub mod validate;

pub use ast::{AtomicType, JSoundError, JSoundType};
pub use parse::JSoundSchema;
pub use validate::JSoundViolation;
