//! JSound validation, including per-collection uniqueness of `@` fields.

use crate::ast::{AtomicType, JSoundType};
use crate::parse::JSoundSchema;
use jsonx_data::{canonical_cmp, Pointer, Value};
use std::fmt;

/// One JSound validation failure.
#[derive(Debug, Clone, PartialEq)]
pub struct JSoundViolation {
    /// Path into the instance.
    pub path: Pointer,
    /// Description.
    pub message: String,
}

impl fmt::Display for JSoundViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.path.to_string();
        write!(
            f,
            "{}: {}",
            if p.is_empty() { "<root>" } else { &p },
            self.message
        )
    }
}

impl std::error::Error for JSoundViolation {}

impl JSoundSchema {
    /// Validates one instance.
    pub fn validate(&self, value: &Value) -> Result<(), Vec<JSoundViolation>> {
        let mut errors = Vec::new();
        check(&self.root, value, &Pointer::root(), &mut errors);
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// True when the instance conforms.
    pub fn is_valid(&self, value: &Value) -> bool {
        self.validate(value).is_ok()
    }

    /// Validates a whole collection, additionally enforcing that every
    /// `@`-marked field takes pairwise-distinct values across documents.
    pub fn validate_collection(&self, docs: &[Value]) -> Result<(), Vec<JSoundViolation>> {
        let mut errors = Vec::new();
        for (i, doc) in docs.iter().enumerate() {
            if let Err(mut errs) = self.validate(doc) {
                for e in &mut errs {
                    // Prefix the document index.
                    let mut tokens: Vec<jsonx_data::Token> = vec![jsonx_data::Token::Index(i)];
                    tokens.extend(e.path.tokens().iter().cloned());
                    e.path = tokens.into_iter().collect();
                }
                errors.extend(errs);
            }
        }
        // Uniqueness of identifier fields (top-level objects only, as in
        // JSound collections).
        if let JSoundType::Object(fields) = &self.root {
            for field in fields.iter().filter(|f| f.unique) {
                let mut seen: Vec<(&Value, usize)> = Vec::new();
                for (i, doc) in docs.iter().enumerate() {
                    let Some(v) = doc.get(&field.name) else {
                        continue;
                    };
                    if let Some((_, first)) = seen
                        .iter()
                        .find(|(w, _)| canonical_cmp(w, v) == std::cmp::Ordering::Equal)
                    {
                        errors.push(JSoundViolation {
                            path: Pointer::root().push_index(i).push_key(&field.name),
                            message: format!(
                                "duplicate identifier value {v} (first seen in document {first})"
                            ),
                        });
                    } else {
                        seen.push((v, i));
                    }
                }
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

fn check(ty: &JSoundType, value: &Value, path: &Pointer, errors: &mut Vec<JSoundViolation>) {
    match ty {
        JSoundType::Atomic(atomic) => check_atomic(*atomic, value, path, errors),
        JSoundType::Array(item) => match value.as_array() {
            Some(items) => {
                for (i, member) in items.iter().enumerate() {
                    check(item, member, &path.push_index(i), errors);
                }
            }
            None => errors.push(JSoundViolation {
                path: path.clone(),
                message: format!("expected an array, found {}", value.kind()),
            }),
        },
        JSoundType::Object(fields) => match value.as_object() {
            Some(obj) => {
                for field in fields {
                    match obj.get(&field.name) {
                        Some(member) => {
                            check(&field.ty, member, &path.push_key(&field.name), errors)
                        }
                        None if field.required => errors.push(JSoundViolation {
                            path: path.clone(),
                            message: format!("missing required field '{}'", field.name),
                        }),
                        None => {}
                    }
                }
                // JSound objects are closed.
                for (key, _) in obj.iter() {
                    if !fields.iter().any(|f| f.name == key) {
                        errors.push(JSoundViolation {
                            path: path.push_key(key),
                            message: format!("undeclared field '{key}'"),
                        });
                    }
                }
            }
            None => errors.push(JSoundViolation {
                path: path.clone(),
                message: format!("expected an object, found {}", value.kind()),
            }),
        },
    }
}

fn check_atomic(
    atomic: AtomicType,
    value: &Value,
    path: &Pointer,
    errors: &mut Vec<JSoundViolation>,
) {
    let ok = match atomic {
        AtomicType::Any => true,
        AtomicType::String => value.as_str().is_some(),
        AtomicType::Integer => value.as_number().is_some_and(|n| n.is_integer()),
        AtomicType::Decimal => value.as_number().is_some(),
        AtomicType::Boolean => value.as_bool().is_some(),
        AtomicType::Null => value.is_null(),
        AtomicType::AnyUri => value.as_str().is_some_and(uri_shaped),
        AtomicType::DateTime => value.as_str().is_some_and(datetime_shaped),
        AtomicType::Date => value.as_str().is_some_and(date_shaped),
    };
    if !ok {
        errors.push(JSoundViolation {
            path: path.clone(),
            message: format!("expected {}, found {}", atomic.name(), value),
        });
    }
}

fn uri_shaped(s: &str) -> bool {
    // RFC 3986 scheme: ALPHA *( ALPHA / DIGIT / "+" / "-" / "." ) — the
    // leading-alpha rule matters (dates like 2019-03-26T10:00:00Z are not
    // URIs; caught by the cross-validator property test).
    s.split_once(':').is_some_and(|(scheme, _)| {
        scheme
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic())
            && scheme
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "+-.".contains(c))
    }) && !s.contains(' ')
}

fn date_shaped(s: &str) -> bool {
    // XML Schema dates carry real month/day ranges (kept in agreement
    // with jsonx-schema's `format: date`, property-tested in
    // tests/prop_agreement.rs).
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3
        || parts[0].len() != 4
        || parts[1].len() != 2
        || parts[2].len() != 2
        || !parts.iter().all(|p| p.bytes().all(|b| b.is_ascii_digit()))
    {
        return false;
    }
    let year: u32 = parts[0].parse().unwrap_or(0);
    let month: u32 = parts[1].parse().unwrap_or(0);
    let day: u32 = parts[2].parse().unwrap_or(0);
    let max_day = match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if year.is_multiple_of(4) && (!year.is_multiple_of(100) || year.is_multiple_of(400)) => {
            29
        }
        2 => 28,
        _ => return false,
    };
    (1..=max_day).contains(&day)
}

fn datetime_shaped(s: &str) -> bool {
    match s.split_once('T') {
        Some((d, t)) => date_shaped(d) && t.contains(':'),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    fn schema(doc: Value) -> JSoundSchema {
        JSoundSchema::compile(&doc).unwrap()
    }

    #[test]
    fn atomic_validation() {
        let s = schema(json!("integer"));
        assert!(s.is_valid(&json!(3)));
        assert!(s.is_valid(&json!(3.0)));
        assert!(!s.is_valid(&json!(3.5)));
        assert!(!s.is_valid(&json!("3")));
        assert!(schema(json!("any")).is_valid(&json!({"x": [1]})));
    }

    #[test]
    fn lexical_atomics() {
        let s = schema(json!("date"));
        assert!(s.is_valid(&json!("2019-03-26")));
        assert!(!s.is_valid(&json!("26/03/2019")));
        let s = schema(json!("dateTime"));
        assert!(s.is_valid(&json!("2019-03-26T10:00:00Z")));
        assert!(!s.is_valid(&json!("2019-03-26")));
        let s = schema(json!("anyURI"));
        assert!(s.is_valid(&json!("https://openproceedings.org")));
        assert!(!s.is_valid(&json!("not a uri")));
    }

    #[test]
    fn objects_are_closed_and_marked() {
        let s = schema(json!({"!id": "integer", "name": "string"}));
        assert!(s.is_valid(&json!({"id": 1, "name": "a"})));
        assert!(s.is_valid(&json!({"id": 1})));
        assert!(!s.is_valid(&json!({"name": "a"}))); // missing required
        assert!(!s.is_valid(&json!({"id": 1, "zz": 2}))); // undeclared
    }

    #[test]
    fn arrays_and_nesting() {
        let s = schema(json!({"tags": ["string"], "geo": {"lat": "decimal"}}));
        assert!(s.is_valid(&json!({"tags": ["a", "b"], "geo": {"lat": 1.5}})));
        let errs = s
            .validate(&json!({"tags": ["a", 3], "geo": {"lat": "x"}}))
            .unwrap_err();
        let paths: Vec<String> = errs.iter().map(|e| e.path.to_string()).collect();
        assert!(paths.contains(&"/tags/1".to_string()));
        assert!(paths.contains(&"/geo/lat".to_string()));
    }

    #[test]
    fn collection_uniqueness() {
        let s = schema(json!({"@id": "integer", "name": "string"}));
        let ok = vec![json!({"id": 1}), json!({"id": 2})];
        assert!(s.validate_collection(&ok).is_ok());
        let dup = vec![json!({"id": 1}), json!({"id": 2}), json!({"id": 1})];
        let errs = s.validate_collection(&dup).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].path.to_string(), "/2/id");
        assert!(errs[0].message.contains("duplicate identifier"));
    }

    #[test]
    fn collection_errors_carry_document_index() {
        let s = schema(json!({"!id": "integer"}));
        let errs = s
            .validate_collection(&[json!({"id": 1}), json!({"id": "x"})])
            .unwrap_err();
        assert_eq!(errs[0].path.to_string(), "/1/id");
    }
}
