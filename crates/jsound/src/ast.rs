//! JSound schema AST.

use std::fmt;

/// JSound atomic types (the XML-Schema-flavoured names of the spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicType {
    String,
    Integer,
    /// Any number (JSound's `decimal`/`double` collapse to this).
    Decimal,
    Boolean,
    Null,
    /// String with URI shape (validated loosely).
    AnyUri,
    /// String with RFC 3339 date-time shape.
    DateTime,
    /// String with RFC 3339 date shape.
    Date,
    /// Anything.
    Any,
}

impl AtomicType {
    /// Parses a JSound atomic type name.
    pub fn from_name(name: &str) -> Option<AtomicType> {
        Some(match name {
            "string" => AtomicType::String,
            "integer" => AtomicType::Integer,
            "decimal" | "double" => AtomicType::Decimal,
            "boolean" => AtomicType::Boolean,
            "null" => AtomicType::Null,
            "anyURI" => AtomicType::AnyUri,
            "dateTime" => AtomicType::DateTime,
            "date" => AtomicType::Date,
            "any" => AtomicType::Any,
            _ => return None,
        })
    }

    /// The canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            AtomicType::String => "string",
            AtomicType::Integer => "integer",
            AtomicType::Decimal => "decimal",
            AtomicType::Boolean => "boolean",
            AtomicType::Null => "null",
            AtomicType::AnyUri => "anyURI",
            AtomicType::DateTime => "dateTime",
            AtomicType::Date => "date",
            AtomicType::Any => "any",
        }
    }
}

/// A JSound type expression.
#[derive(Debug, Clone, PartialEq)]
pub enum JSoundType {
    /// An atomic type.
    Atomic(AtomicType),
    /// An array whose members all have the given type.
    Array(Box<JSoundType>),
    /// A record with (name, required, unique, type) fields.
    Object(Vec<JSoundField>),
}

/// One declared field of a JSound object type.
#[derive(Debug, Clone, PartialEq)]
pub struct JSoundField {
    /// Field name (markers stripped).
    pub name: String,
    /// `!`-prefixed in the compact syntax.
    pub required: bool,
    /// `@`-marked identifier field (unique within a collection).
    pub unique: bool,
    /// Declared type.
    pub ty: JSoundType,
}

/// A schema-compilation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JSoundError {
    /// Dotted path into the schema document.
    pub path: String,
    /// Description.
    pub message: String,
}

impl fmt::Display for JSoundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid JSound schema at '{}': {}",
            self.path, self.message
        )
    }
}

impl std::error::Error for JSoundError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_names_round_trip() {
        for t in [
            AtomicType::String,
            AtomicType::Integer,
            AtomicType::Decimal,
            AtomicType::Boolean,
            AtomicType::Null,
            AtomicType::AnyUri,
            AtomicType::DateTime,
            AtomicType::Date,
            AtomicType::Any,
        ] {
            assert_eq!(AtomicType::from_name(t.name()), Some(t));
        }
        assert_eq!(AtomicType::from_name("double"), Some(AtomicType::Decimal));
        assert_eq!(AtomicType::from_name("widget"), None);
    }
}
