//! Compiling JSound schemas into JSON Schema documents.
//!
//! The translation witnesses the expressiveness gap §2 of the tutorial
//! discusses: everything JSound can say, JSON Schema can (the converse is
//! false — JSound has no unions, negation, or numeric bounds).

use crate::ast::{AtomicType, JSoundType};
use crate::parse::JSoundSchema;
use jsonx_data::{json, Object, Value};

impl JSoundSchema {
    /// Renders this schema as an equivalent JSON Schema document.
    pub fn compile_to_json_schema(&self) -> Value {
        to_schema(&self.root)
    }
}

fn to_schema(ty: &JSoundType) -> Value {
    match ty {
        JSoundType::Atomic(atomic) => atomic_schema(*atomic),
        JSoundType::Array(item) => {
            let mut obj = Object::new();
            obj.insert("type", Value::from("array"));
            obj.insert("items", to_schema(item));
            Value::Obj(obj)
        }
        JSoundType::Object(fields) => {
            let mut properties = Object::new();
            let mut required: Vec<Value> = Vec::new();
            for field in fields {
                properties.insert(field.name.clone(), to_schema(&field.ty));
                if field.required {
                    required.push(Value::from(field.name.as_str()));
                }
            }
            let mut obj = Object::new();
            obj.insert("type", Value::from("object"));
            obj.insert("properties", Value::Obj(properties));
            if !required.is_empty() {
                required.sort_by(jsonx_data::canonical_cmp);
                obj.insert("required", Value::Arr(required));
            }
            obj.insert("additionalProperties", Value::Bool(false));
            Value::Obj(obj)
        }
    }
}

fn atomic_schema(atomic: AtomicType) -> Value {
    match atomic {
        AtomicType::Any => json!(true),
        AtomicType::String => json!({"type": "string"}),
        AtomicType::Integer => json!({"type": "integer"}),
        AtomicType::Decimal => json!({"type": "number"}),
        AtomicType::Boolean => json!({"type": "boolean"}),
        AtomicType::Null => json!({"type": "null"}),
        AtomicType::AnyUri => json!({"type": "string", "format": "uri"}),
        AtomicType::DateTime => json!({"type": "string", "format": "date-time"}),
        AtomicType::Date => json!({"type": "string", "format": "date"}),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_record_schema() {
        let s = JSoundSchema::compile(&json!({
            "!id": "integer",
            "name": "string",
            "tags": ["string"]
        }))
        .unwrap();
        let schema = s.compile_to_json_schema();
        assert_eq!(schema.get("type"), Some(&json!("object")));
        assert_eq!(schema.get("required"), Some(&json!(["id"])));
        assert_eq!(
            schema.get("properties").unwrap().get("tags"),
            Some(&json!({"type": "array", "items": {"type": "string"}}))
        );
        assert_eq!(schema.get("additionalProperties"), Some(&json!(false)));
    }

    #[test]
    fn formats_map_to_format_keyword() {
        let s = JSoundSchema::compile(&json!({"when": "dateTime"})).unwrap();
        let schema = s.compile_to_json_schema();
        assert_eq!(
            schema.get("properties").unwrap().get("when"),
            Some(&json!({"type": "string", "format": "date-time"}))
        );
    }
}
