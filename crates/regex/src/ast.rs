//! Regex abstract syntax.

use std::fmt;

/// A parsed regular expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single literal character.
    Literal(char),
    /// `.` — any character except `\n`.
    AnyChar,
    /// A character class `[...]` or a `\d`-family shorthand.
    Class {
        /// `[^...]`
        negated: bool,
        /// Members (singletons and ranges), unnormalised.
        items: Vec<ClassItem>,
    },
    /// `^`
    StartAnchor,
    /// `$`
    EndAnchor,
    /// Sequence.
    Concat(Vec<Ast>),
    /// `a|b|c`.
    Alternate(Vec<Ast>),
    /// `e*`, `e+`, `e?`, `e{m,n}`.
    Repeat {
        /// The repeated node.
        node: Box<Ast>,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions; `None` = unbounded.
        max: Option<u32>,
    },
    /// `( e )` — grouping only (no capture semantics needed for matching).
    Group(Box<Ast>),
}

/// One member of a character class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassItem {
    /// A single character.
    Single(char),
    /// An inclusive range `a-z`.
    Range(char, char),
}

/// Errors from parsing or compiling a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegexError {
    /// Unexpected end of pattern.
    UnexpectedEnd,
    /// A character that cannot appear here.
    Unexpected { at: usize, found: char },
    /// Quantifier with nothing to repeat (e.g. leading `*`).
    NothingToRepeat { at: usize },
    /// `[z-a]` style reversed range.
    InvalidRange { at: usize },
    /// `{m,n}` with `m > n`.
    InvalidCounts { at: usize },
    /// Unknown `\x` escape.
    UnknownEscape { at: usize, escape: char },
    /// Unclosed `(` or `[`.
    Unclosed { at: usize, what: char },
    /// Counted repetition would expand the program beyond the size cap.
    TooLarge,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegexError::UnexpectedEnd => write!(f, "unexpected end of pattern"),
            RegexError::Unexpected { at, found } => {
                write!(f, "unexpected character '{found}' at {at}")
            }
            RegexError::NothingToRepeat { at } => write!(f, "nothing to repeat at {at}"),
            RegexError::InvalidRange { at } => write!(f, "invalid class range at {at}"),
            RegexError::InvalidCounts { at } => write!(f, "invalid repetition counts at {at}"),
            RegexError::UnknownEscape { at, escape } => {
                write!(f, "unknown escape '\\{escape}' at {at}")
            }
            RegexError::Unclosed { at, what } => write!(f, "unclosed '{what}' opened at {at}"),
            RegexError::TooLarge => write!(f, "pattern expands beyond the size limit"),
        }
    }
}

impl std::error::Error for RegexError {}

impl ClassItem {
    /// True when `c` falls in this item.
    pub fn contains(&self, c: char) -> bool {
        match *self {
            ClassItem::Single(s) => c == s,
            ClassItem::Range(lo, hi) => lo <= c && c <= hi,
        }
    }
}

/// The `\d` shorthand as class items.
pub fn digit_items() -> Vec<ClassItem> {
    vec![ClassItem::Range('0', '9')]
}

/// The `\w` shorthand as class items.
pub fn word_items() -> Vec<ClassItem> {
    vec![
        ClassItem::Range('a', 'z'),
        ClassItem::Range('A', 'Z'),
        ClassItem::Range('0', '9'),
        ClassItem::Single('_'),
    ]
}

/// The `\s` shorthand as class items.
pub fn space_items() -> Vec<ClassItem> {
    vec![
        ClassItem::Single(' '),
        ClassItem::Single('\t'),
        ClassItem::Single('\n'),
        ClassItem::Single('\r'),
        ClassItem::Single('\u{0B}'),
        ClassItem::Single('\u{0C}'),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_item_membership() {
        assert!(ClassItem::Range('a', 'f').contains('c'));
        assert!(!ClassItem::Range('a', 'f').contains('g'));
        assert!(ClassItem::Single('-').contains('-'));
    }

    #[test]
    fn shorthand_families() {
        assert!(digit_items().iter().any(|i| i.contains('7')));
        assert!(word_items().iter().any(|i| i.contains('_')));
        assert!(space_items().iter().any(|i| i.contains('\t')));
        assert!(!word_items().iter().any(|i| i.contains('-')));
    }
}
