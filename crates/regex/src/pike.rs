//! Pike-VM NFA simulation (breadth-first, no backtracking).

use crate::nfa::{Inst, Program};

/// Unanchored search: does the pattern match any substring?
pub fn search(prog: &Program, text: &str) -> bool {
    run(prog, text, false, &mut Matcher::new())
}

/// Anchored full match: does the pattern match the entire input?
pub fn full_match(prog: &Program, text: &str) -> bool {
    run(prog, text, true, &mut Matcher::new())
}

/// Reusable simulation scratch: the two thread lists, persisted across
/// calls so that steady-state matching (one matcher driving many inputs,
/// as the schema validator's pattern slots do) allocates nothing.
///
/// One matcher may serve programs of different sizes; the lists grow to
/// the largest program seen and stay there.
#[derive(Debug, Default)]
pub struct Matcher {
    current: ThreadList,
    next: ThreadList,
}

impl Matcher {
    /// Creates an empty matcher (no allocation until first use).
    pub fn new() -> Self {
        Matcher::default()
    }

    /// Unanchored search reusing this matcher's buffers.
    pub fn search(&mut self, prog: &Program, text: &str) -> bool {
        run(prog, text, false, self)
    }

    /// Anchored full match reusing this matcher's buffers.
    pub fn full_match(&mut self, prog: &Program, text: &str) -> bool {
        run(prog, text, true, self)
    }
}

/// A deduplicated set of live thread pcs.
///
/// Membership is tracked with generation stamps rather than booleans:
/// clearing between input positions bumps `gen` in O(1) instead of
/// rewriting a flag per instruction, which dominates simulation cost for
/// long linear programs (counted repetitions) over short inputs.
#[derive(Debug, Default)]
struct ThreadList {
    dense: Vec<usize>,
    marks: Vec<u32>,
    gen: u32,
}

impl ThreadList {
    /// Clears the list and makes room for programs of `n` instructions.
    fn reset(&mut self, n: usize) {
        if self.marks.len() < n {
            self.marks.resize(n, 0);
        }
        self.clear();
    }

    fn clear(&mut self) {
        self.dense.clear();
        self.gen = match self.gen.checked_add(1) {
            Some(g) => g,
            None => {
                // Stamp wrap-around: stale marks could alias the new
                // generation, so reset them all once per 2^32 clears.
                self.marks.fill(0);
                1
            }
        };
    }

    /// Marks `pc`; true when it was already a member.
    fn test_and_set(&mut self, pc: usize) -> bool {
        if self.marks[pc] == self.gen {
            return true;
        }
        self.marks[pc] = self.gen;
        false
    }

    fn is_empty(&self) -> bool {
        self.dense.is_empty()
    }
}

/// Adds `pc` and transitively follows zero-width instructions.
/// `at_start`/`at_end` describe the *current* input position.
fn add_thread(
    prog: &Program,
    list: &mut ThreadList,
    pc: usize,
    at_start: bool,
    at_end: bool,
) -> bool {
    if list.test_and_set(pc) {
        return false;
    }
    match prog.insts[pc] {
        Inst::Jump(next) => add_thread(prog, list, next, at_start, at_end),
        Inst::Split(a, b) => {
            let m1 = add_thread(prog, list, a, at_start, at_end);
            let m2 = add_thread(prog, list, b, at_start, at_end);
            m1 || m2
        }
        Inst::AssertStart(next) => at_start && add_thread(prog, list, next, at_start, at_end),
        Inst::AssertEnd(next) => at_end && add_thread(prog, list, next, at_start, at_end),
        Inst::Match => true,
        Inst::Char { .. } => {
            list.dense.push(pc);
            false
        }
    }
}

fn run(prog: &Program, text: &str, anchored: bool, scratch: &mut Matcher) -> bool {
    let n = prog.insts.len();
    let Matcher { current, next } = scratch;
    current.reset(n);
    next.reset(n);

    // Iterate without materialising a `Vec<char>`; the lookahead tells us
    // whether the position after the current character is end-of-input.
    let mut chars = text.chars().peekable();

    // Seed at position 0.
    if add_thread(prog, current, prog.start, true, text.is_empty()) {
        // Matched the empty string at the start.
        if !anchored || text.is_empty() {
            return true;
        }
        // Anchored: an empty-string match only counts at end of input,
        // which `at_end` above already required.
    }

    while let Some(c) = chars.next() {
        let at_end_after = chars.peek().is_none();
        next.clear();
        let mut matched = false;
        for &pc in &current.dense {
            if let Inst::Char { ref spec, next: nx } = prog.insts[pc] {
                if spec.matches(c) {
                    // Position after consuming c: start only if unanchored
                    // re-seeding would say so; "start" assertion means
                    // absolute input start, so it is false here.
                    if add_thread(prog, next, nx, false, at_end_after) {
                        matched = true;
                    }
                }
            }
        }
        if matched && (!anchored || at_end_after) {
            // For unanchored search any match suffices; for anchored
            // matching, a Match reached exactly at end of input suffices.
            return true;
        }
        std::mem::swap(current, next);
        // Unanchored: re-seed a fresh attempt starting at the next position.
        if !anchored && add_thread(prog, current, prog.start, false, at_end_after) {
            return true;
        }
        if current.is_empty() && anchored {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use crate::Regex;

    fn m(pat: &str, text: &str) -> bool {
        Regex::compile(pat).unwrap().is_match(text)
    }

    fn fm(pat: &str, text: &str) -> bool {
        Regex::compile(pat).unwrap().is_full_match(text)
    }

    #[test]
    fn literals() {
        assert!(m("abc", "xxabcxx"));
        assert!(!m("abc", "ab"));
        assert!(m("", "anything")); // empty pattern matches everywhere
        assert!(m("", ""));
    }

    #[test]
    fn anchors() {
        assert!(m("^ab", "abc"));
        assert!(!m("^ab", "xab"));
        assert!(m("bc$", "abc"));
        assert!(!m("bc$", "bcd"));
        assert!(m("^abc$", "abc"));
        assert!(!m("^abc$", "aabc"));
        assert!(m("^$", ""));
        assert!(!m("^$", "x"));
    }

    #[test]
    fn quantifiers() {
        assert!(m("^a*$", ""));
        assert!(m("^a*$", "aaaa"));
        assert!(!m("^a+$", ""));
        assert!(m("^a+$", "aa"));
        assert!(m("^a?b$", "b"));
        assert!(m("^a?b$", "ab"));
        assert!(!m("^a?b$", "aab"));
    }

    #[test]
    fn counted_repetition() {
        assert!(fm("a{3}", "aaa"));
        assert!(!fm("a{3}", "aa"));
        assert!(!fm("a{3}", "aaaa"));
        for n in 0..6 {
            let s = "a".repeat(n);
            assert_eq!(fm("a{2,4}", &s), (2..=4).contains(&n), "n={n}");
            assert_eq!(fm("a{2,}", &s), n >= 2, "n={n}");
        }
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("^(cat|dog)$", "cat"));
        assert!(m("^(cat|dog)$", "dog"));
        assert!(!m("^(cat|dog)$", "cow"));
        assert!(fm("(ab)+", "ababab"));
        assert!(!fm("(ab)+", "aba"));
        assert!(m("a(b|c)*d", "abcbcd"));
    }

    #[test]
    fn classes_and_dot() {
        assert!(m("^[a-c]+$", "abccba"));
        assert!(!m("^[a-c]+$", "abd"));
        assert!(m("^[^0-9]+$", "abc!"));
        assert!(!m("^[^0-9]+$", "ab1"));
        assert!(m("^.$", "x"));
        assert!(!m("^.$", "\n"));
    }

    #[test]
    fn shorthand_classes() {
        assert!(fm(r"\d{4}-\d{2}-\d{2}", "2019-03-26"));
        assert!(!fm(r"\d{4}-\d{2}-\d{2}", "2019-3-26"));
        assert!(fm(r"\w+", "snake_case9"));
        assert!(!fm(r"\w+", "with space"));
        assert!(fm(r"\s*", "  \t "));
        assert!(fm(r"\S+", "dense"));
    }

    #[test]
    fn unicode_input() {
        assert!(m("é+", "café"));
        assert!(fm("^.{4}$", "日本語х"));
        assert!(fm(r"é", "é"));
    }

    #[test]
    fn pathological_patterns_stay_linear() {
        // The classic backtracking bomb (a?^n a^n vs "a"*n) — a Pike VM
        // handles this in polynomial time; just assert it terminates with
        // the right answer.
        let n = 20;
        let pat = format!("^{}{}$", "a?".repeat(n), "a".repeat(n));
        let text = "a".repeat(n);
        assert!(m(&pat, &text));
        let text_short = "a".repeat(n - 1);
        assert!(!m(&pat, &text_short));
    }

    #[test]
    fn schema_style_patterns() {
        // Patterns of the sort JSON Schemas actually carry.
        assert!(m(r"^[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+$", "a.b@example.com"));
        assert!(fm(r"^#?([0-9a-fA-F]{6}|[0-9a-fA-F]{3})$", "#a1b2c3"));
        assert!(fm(r"^(19|20)\d{2}$", "2019"));
        assert!(!fm(r"^(19|20)\d{2}$", "1819"));
    }

    #[test]
    fn empty_alternation_branch() {
        assert!(fm("a(b|)c", "abc"));
        assert!(fm("a(b|)c", "ac"));
    }

    #[test]
    fn matcher_reuse_across_patterns_and_inputs() {
        // One matcher serves differently-sized programs back to back and
        // agrees with the allocating entry points.
        let pats = [r"^a+$", r"\d{4}-\d{2}", "x|y|z", "^$"];
        let inputs = ["aaa", "2019-03", "only w here", "", "a1b2"];
        let mut m = super::Matcher::new();
        for p in pats {
            let re = crate::Regex::compile(p).unwrap();
            for text in inputs {
                assert_eq!(
                    re.is_match_with(&mut m, text),
                    re.is_match(text),
                    "pattern {p} input {text:?}"
                );
            }
        }
    }
}
