//! Generating strings *from* patterns.
//!
//! Walking the AST and making a random choice at every alternation/
//! repetition yields a string the pattern matches — the generative dual of
//! matching, used by the schema sampler to produce witnesses for `pattern`
//! keywords.

use crate::ast::{Ast, ClassItem};

/// A tiny deterministic PRNG (split-mix-ish); the crate avoids external
/// dependencies, and sampling only needs uncorrelated choices.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Cap on unbounded repetitions, so `a*` samples stay short.
const MAX_UNBOUNDED: u32 = 4;

/// Generates a string matching `ast`, or `None` when some required class
/// is unsatisfiable. Anchors contribute nothing (the result matches both
/// anchored and unanchored).
pub fn sample(ast: &Ast, seed: u64) -> Option<String> {
    let mut rng = Rng(seed ^ 0xD6E8_FEB8_6659_FD93);
    let mut out = String::new();
    emit(ast, &mut rng, &mut out)?;
    Some(out)
}

fn emit(ast: &Ast, rng: &mut Rng, out: &mut String) -> Option<()> {
    match ast {
        Ast::Empty | Ast::StartAnchor | Ast::EndAnchor => Some(()),
        Ast::Literal(c) => {
            out.push(*c);
            Some(())
        }
        Ast::AnyChar => {
            // Printable ASCII keeps witnesses readable.
            let c = (b' ' + rng.below(95) as u8) as char;
            out.push(if c == '\n' { 'x' } else { c });
            Some(())
        }
        Ast::Class { negated, items } => {
            out.push(pick_class_char(*negated, items, rng)?);
            Some(())
        }
        Ast::Group(inner) => emit(inner, rng, out),
        Ast::Concat(parts) => {
            for p in parts {
                emit(p, rng, out)?;
            }
            Some(())
        }
        Ast::Alternate(branches) => {
            // Try branches starting from a random one, in case some are
            // unsatisfiable.
            let start = rng.below(branches.len());
            for i in 0..branches.len() {
                let branch = &branches[(start + i) % branches.len()];
                let mut attempt = String::new();
                if emit(branch, rng, &mut attempt).is_some() {
                    out.push_str(&attempt);
                    return Some(());
                }
            }
            None
        }
        Ast::Repeat { node, min, max } => {
            let upper = max.unwrap_or(min + MAX_UNBOUNDED);
            let count = min + rng.below((upper - min + 1) as usize) as u32;
            for _ in 0..count {
                emit(node, rng, out)?;
            }
            Some(())
        }
    }
}

fn pick_class_char(negated: bool, items: &[ClassItem], rng: &mut Rng) -> Option<char> {
    if !negated {
        if items.is_empty() {
            return None;
        }
        let item = &items[rng.below(items.len())];
        return Some(match *item {
            ClassItem::Single(c) => c,
            ClassItem::Range(lo, hi) => {
                let span = (hi as u32).saturating_sub(lo as u32) + 1;
                char::from_u32(lo as u32 + (rng.below(span as usize) as u32)).unwrap_or(lo)
            }
        });
    }
    // Negated class: try printable ASCII candidates.
    for _ in 0..256 {
        let c = (b' ' + rng.below(95) as u8) as char;
        if !items.iter().any(|i| i.contains(c)) {
            return Some(c);
        }
    }
    // Fall back to scanning the whole printable range deterministically.
    (' '..='~').find(|&c| !items.iter().any(|i| i.contains(c)))
}

#[cfg(test)]
mod tests {
    use crate::Regex;

    /// Every sample must match its own pattern.
    fn check(pattern: &str) {
        let re = Regex::compile(pattern).unwrap();
        for seed in 0..50 {
            let s = re
                .sample(seed)
                .unwrap_or_else(|| panic!("no sample for {pattern}"));
            assert!(
                re.is_full_match(&s) || re.is_match(&s),
                "sample {s:?} does not match {pattern}"
            );
        }
    }

    #[test]
    fn samples_match_their_patterns() {
        for pattern in [
            "abc",
            "^[a-z]{3,8}$",
            r"\d{4}-\d{2}-\d{2}",
            "(cat|dog|cow)+",
            "^#?([0-9a-fA-F]{6}|[0-9a-fA-F]{3})$",
            "a*b+c?",
            "[^0-9]{2}",
            r"user_\w{1,10}",
            "",
        ] {
            check(pattern);
        }
    }

    #[test]
    fn anchored_samples_full_match() {
        let re = Regex::compile("^[a-c]{2}$").unwrap();
        for seed in 0..20 {
            assert!(re.is_full_match(&re.sample(seed).unwrap()));
        }
    }

    #[test]
    fn samples_vary_with_seed() {
        let re = Regex::compile("[a-z]{8}").unwrap();
        let a = re.sample(1).unwrap();
        let b = re.sample(2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn unbounded_repetition_is_capped() {
        let re = Regex::compile("a*").unwrap();
        for seed in 0..20 {
            assert!(re.sample(seed).unwrap().len() <= 4);
        }
    }
}
