//! NFA compilation (Thompson construction over a flat instruction list).

use crate::ast::{Ast, ClassItem, RegexError};

/// Cap on compiled program size; counted repetitions expand by copying, so
/// `a{1000}{1000}` style patterns must be rejected rather than compiled.
const MAX_PROGRAM: usize = 1 << 16;

/// A character matcher.
#[derive(Debug, Clone, PartialEq)]
pub enum CharSpec {
    /// One exact character.
    Literal(char),
    /// `.` — anything but `\n`.
    AnyButNewline,
    /// A (possibly negated) set of items.
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
}

impl CharSpec {
    /// True when `c` is accepted.
    pub fn matches(&self, c: char) -> bool {
        match self {
            CharSpec::Literal(l) => c == *l,
            CharSpec::AnyButNewline => c != '\n',
            CharSpec::Class { negated, items } => {
                let inside = items.iter().any(|i| i.contains(c));
                inside != *negated
            }
        }
    }
}

/// One NFA instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// Consume a character matching the spec, then go to `next`.
    Char { spec: CharSpec, next: usize },
    /// Fork execution to both targets.
    Split(usize, usize),
    /// Unconditional jump.
    Jump(usize),
    /// Zero-width: succeed only at input start.
    AssertStart(usize),
    /// Zero-width: succeed only at input end.
    AssertEnd(usize),
    /// Accept.
    Match,
}

/// A compiled NFA program; entry point is instruction 0 … `start`.
#[derive(Debug, Clone)]
pub struct Program {
    /// Flat instruction list.
    pub insts: Vec<Inst>,
    /// Entry pc.
    pub start: usize,
}

/// Compiles an AST to a [`Program`].
pub fn compile(ast: &Ast) -> Result<Program, RegexError> {
    let mut c = Compiler { insts: Vec::new() };
    let start = c.reserve()?; // placeholder jump to the real start
    let frag_start = c.emit_ast(ast)?;
    let m = c.push(Inst::Match)?;
    c.patch_dangling(frag_start.exits, m);
    c.insts[start] = Inst::Jump(frag_start.entry);
    Ok(Program {
        insts: c.insts,
        start,
    })
}

/// A compiled fragment: entry pc and the pcs whose `next` still dangles.
struct Frag {
    entry: usize,
    exits: Vec<DanglingEdge>,
}

/// A hole to patch: which instruction, and which of its out-edges.
#[derive(Clone, Copy)]
enum DanglingEdge {
    Next(usize),
    Split2(usize),
}

struct Compiler {
    insts: Vec<Inst>,
}

impl Compiler {
    fn reserve(&mut self) -> Result<usize, RegexError> {
        self.push(Inst::Jump(usize::MAX))
    }

    fn push(&mut self, inst: Inst) -> Result<usize, RegexError> {
        if self.insts.len() >= MAX_PROGRAM {
            return Err(RegexError::TooLarge);
        }
        self.insts.push(inst);
        Ok(self.insts.len() - 1)
    }

    fn patch_dangling(&mut self, exits: Vec<DanglingEdge>, target: usize) {
        for e in exits {
            match e {
                DanglingEdge::Next(pc) => match &mut self.insts[pc] {
                    Inst::Char { next, .. }
                    | Inst::Jump(next)
                    | Inst::AssertStart(next)
                    | Inst::AssertEnd(next) => *next = target,
                    other => unreachable!("bad patch target {other:?}"),
                },
                DanglingEdge::Split2(pc) => {
                    if let Inst::Split(_, b) = &mut self.insts[pc] {
                        *b = target;
                    } else {
                        unreachable!("split patch on non-split")
                    }
                }
            }
        }
    }

    fn emit_ast(&mut self, ast: &Ast) -> Result<Frag, RegexError> {
        match ast {
            Ast::Empty => {
                let pc = self.push(Inst::Jump(usize::MAX))?;
                Ok(Frag {
                    entry: pc,
                    exits: vec![DanglingEdge::Next(pc)],
                })
            }
            Ast::Literal(c) => self.emit_char(CharSpec::Literal(*c)),
            Ast::AnyChar => self.emit_char(CharSpec::AnyButNewline),
            Ast::Class { negated, items } => self.emit_char(CharSpec::Class {
                negated: *negated,
                items: items.clone(),
            }),
            Ast::StartAnchor => {
                let pc = self.push(Inst::AssertStart(usize::MAX))?;
                Ok(Frag {
                    entry: pc,
                    exits: vec![DanglingEdge::Next(pc)],
                })
            }
            Ast::EndAnchor => {
                let pc = self.push(Inst::AssertEnd(usize::MAX))?;
                Ok(Frag {
                    entry: pc,
                    exits: vec![DanglingEdge::Next(pc)],
                })
            }
            Ast::Group(inner) => self.emit_ast(inner),
            Ast::Concat(items) => {
                let mut iter = items.iter();
                let first = self.emit_ast(iter.next().expect("concat non-empty"))?;
                let mut exits = first.exits;
                for item in iter {
                    let frag = self.emit_ast(item)?;
                    self.patch_dangling(exits, frag.entry);
                    exits = frag.exits;
                }
                Ok(Frag {
                    entry: first.entry,
                    exits,
                })
            }
            Ast::Alternate(branches) => {
                // Chain of splits: s1 -> (b1 | s2), s2 -> (b2 | s3), …
                let mut exits = Vec::new();
                let mut split_pcs = Vec::new();
                for _ in 0..branches.len() - 1 {
                    split_pcs.push(self.push(Inst::Split(usize::MAX, usize::MAX))?);
                }
                // Link split chain.
                for w in 0..split_pcs.len().saturating_sub(1) {
                    let next_split = split_pcs[w + 1];
                    if let Inst::Split(_, b) = &mut self.insts[split_pcs[w]] {
                        *b = next_split;
                    }
                }
                for (i, branch) in branches.iter().enumerate() {
                    let frag = self.emit_ast(branch)?;
                    if i < split_pcs.len() {
                        if let Inst::Split(a, _) = &mut self.insts[split_pcs[i]] {
                            *a = frag.entry;
                        }
                    } else {
                        // Last branch: the final split's second edge.
                        let last = *split_pcs.last().expect("≥2 branches");
                        if let Inst::Split(_, b) = &mut self.insts[last] {
                            *b = frag.entry;
                        }
                    }
                    exits.extend(frag.exits);
                }
                Ok(Frag {
                    entry: split_pcs[0],
                    exits,
                })
            }
            Ast::Repeat { node, min, max } => self.emit_repeat(node, *min, *max),
        }
    }

    fn emit_char(&mut self, spec: CharSpec) -> Result<Frag, RegexError> {
        let pc = self.push(Inst::Char {
            spec,
            next: usize::MAX,
        })?;
        Ok(Frag {
            entry: pc,
            exits: vec![DanglingEdge::Next(pc)],
        })
    }

    fn emit_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>) -> Result<Frag, RegexError> {
        match (min, max) {
            // e* : split(e-loop, out)
            (0, None) => {
                let split = self.push(Inst::Split(usize::MAX, usize::MAX))?;
                let body = self.emit_ast(node)?;
                if let Inst::Split(a, _) = &mut self.insts[split] {
                    *a = body.entry;
                }
                self.patch_dangling(body.exits, split);
                Ok(Frag {
                    entry: split,
                    exits: vec![DanglingEdge::Split2(split)],
                })
            }
            // e+ : e, split(back-to-e, out)
            (1, None) => {
                let body = self.emit_ast(node)?;
                let split = self.push(Inst::Split(usize::MAX, usize::MAX))?;
                self.patch_dangling(body.exits, split);
                if let Inst::Split(a, _) = &mut self.insts[split] {
                    *a = body.entry;
                }
                Ok(Frag {
                    entry: body.entry,
                    exits: vec![DanglingEdge::Split2(split)],
                })
            }
            // e? : split(e, out)
            (0, Some(1)) => {
                let split = self.push(Inst::Split(usize::MAX, usize::MAX))?;
                let body = self.emit_ast(node)?;
                if let Inst::Split(a, _) = &mut self.insts[split] {
                    *a = body.entry;
                }
                let mut exits = body.exits;
                exits.push(DanglingEdge::Split2(split));
                Ok(Frag {
                    entry: split,
                    exits,
                })
            }
            // e{m,n} / e{m,} : expand to m copies then (n-m) optionals or a
            // trailing star.
            (min, max) => {
                let mut entry = None;
                let mut exits: Vec<DanglingEdge> = Vec::new();
                // Required copies.
                for _ in 0..min {
                    let frag = self.emit_ast(node)?;
                    if entry.is_some() {
                        self.patch_dangling(std::mem::take(&mut exits), frag.entry);
                    } else {
                        entry = Some(frag.entry);
                    }
                    exits = frag.exits;
                }
                match max {
                    None => {
                        // Trailing e*.
                        let star = self.emit_repeat(node, 0, None)?;
                        if entry.is_some() {
                            self.patch_dangling(std::mem::take(&mut exits), star.entry);
                        } else {
                            entry = Some(star.entry);
                        }
                        exits = star.exits;
                    }
                    Some(max) => {
                        // (max-min) optional copies; every split's out-edge
                        // dangles to the overall exit.
                        for _ in min..max {
                            let opt = self.emit_repeat_optional(node)?;
                            if entry.is_some() {
                                self.patch_dangling(std::mem::take(&mut exits), opt.entry);
                            } else {
                                entry = Some(opt.entry);
                            }
                            exits = opt.body_exits;
                            exits.push(opt.skip_exit);
                        }
                    }
                }
                match entry {
                    Some(entry) => Ok(Frag { entry, exits }),
                    None => {
                        // e{0} — matches the empty string.
                        let pc = self.push(Inst::Jump(usize::MAX))?;
                        Ok(Frag {
                            entry: pc,
                            exits: vec![DanglingEdge::Next(pc)],
                        })
                    }
                }
            }
        }
    }

    /// Emits one `e?` where the skip edge must join the *final* exit rather
    /// than the next copy (so `a{1,3}` accepts "a", "aa", "aaa").
    fn emit_repeat_optional(&mut self, node: &Ast) -> Result<OptFrag, RegexError> {
        let split = self.push(Inst::Split(usize::MAX, usize::MAX))?;
        let body = self.emit_ast(node)?;
        if let Inst::Split(a, _) = &mut self.insts[split] {
            *a = body.entry;
        }
        Ok(OptFrag {
            entry: split,
            body_exits: body.exits,
            skip_exit: DanglingEdge::Split2(split),
        })
    }
}

struct OptFrag {
    entry: usize,
    body_exits: Vec<DanglingEdge>,
    skip_exit: DanglingEdge,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn prog(p: &str) -> Program {
        compile(&parse(p).unwrap()).unwrap()
    }

    #[test]
    fn compiles_basic_forms() {
        for p in [
            "", "a", "ab|cd", "a*", "a+", "a?", "a{2,4}", "[a-z]+$", "^x",
        ] {
            let program = prog(p);
            assert!(matches!(program.insts.last(), Some(Inst::Match)));
        }
    }

    #[test]
    fn counted_repetition_expands() {
        let p3 = prog("a{3}");
        let p1 = prog("a");
        assert!(p3.insts.len() > p1.insts.len());
    }

    #[test]
    fn size_cap_enforced() {
        // 60000 copies of a 2-inst fragment exceeds MAX_PROGRAM.
        let ast = parse("(ab){40000}").unwrap();
        assert!(matches!(compile(&ast), Err(RegexError::TooLarge)));
    }

    #[test]
    fn charspec_matching() {
        assert!(CharSpec::AnyButNewline.matches('x'));
        assert!(!CharSpec::AnyButNewline.matches('\n'));
        let cls = CharSpec::Class {
            negated: true,
            items: vec![ClassItem::Range('0', '9')],
        };
        assert!(cls.matches('a'));
        assert!(!cls.matches('5'));
    }
}
