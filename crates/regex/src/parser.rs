//! Pattern parser (recursive descent over the ECMA subset).

use crate::ast::{digit_items, space_items, word_items, Ast, ClassItem, RegexError};

/// Parses a pattern into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, RegexError> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut p = Parser { chars, pos: 0 };
    let ast = p.parse_alternation()?;
    if p.pos != p.chars.len() {
        return Err(RegexError::Unexpected {
            at: p.pos,
            found: p.chars[p.pos],
        });
    }
    Ok(ast)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_alternation(&mut self) -> Result<Ast, RegexError> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alternate(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().expect("one item"),
            _ => Ast::Concat(items),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, RegexError> {
        let at = self.pos;
        let atom = self.parse_atom()?;
        let mut node = atom;
        loop {
            let (min, max) = match self.peek() {
                Some('*') => {
                    self.bump();
                    (0, None)
                }
                Some('+') => {
                    self.bump();
                    (1, None)
                }
                Some('?') => {
                    self.bump();
                    (0, Some(1))
                }
                Some('{') => {
                    if let Some(counts) = self.try_parse_counts()? {
                        counts
                    } else {
                        break;
                    }
                }
                _ => break,
            };
            if matches!(node, Ast::StartAnchor | Ast::EndAnchor | Ast::Empty) {
                return Err(RegexError::NothingToRepeat { at });
            }
            node = Ast::Repeat {
                node: Box::new(node),
                min,
                max,
            };
        }
        Ok(node)
    }

    /// Parses `{m}`, `{m,}`, `{m,n}` after seeing `{`. A `{` that is not a
    /// valid counted repetition is treated as a literal (ECMA behaviour),
    /// signalled by returning `Ok(None)` without consuming.
    fn try_parse_counts(&mut self) -> Result<Option<(u32, Option<u32>)>, RegexError> {
        let start = self.pos;
        debug_assert_eq!(self.peek(), Some('{'));
        self.bump();
        let min = self.parse_number();
        let Some(min) = min else {
            self.pos = start;
            return Ok(None);
        };
        match self.peek() {
            Some('}') => {
                self.bump();
                Ok(Some((min, Some(min))))
            }
            Some(',') => {
                self.bump();
                if self.peek() == Some('}') {
                    self.bump();
                    return Ok(Some((min, None)));
                }
                let Some(max) = self.parse_number() else {
                    self.pos = start;
                    return Ok(None);
                };
                if self.peek() != Some('}') {
                    self.pos = start;
                    return Ok(None);
                }
                self.bump();
                if max < min {
                    return Err(RegexError::InvalidCounts { at: start });
                }
                Ok(Some((min, Some(max))))
            }
            _ => {
                self.pos = start;
                Ok(None)
            }
        }
    }

    fn parse_number(&mut self) -> Option<u32> {
        let mut any = false;
        let mut v: u32 = 0;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                any = true;
                v = v.saturating_mul(10).saturating_add(d);
                self.bump();
            } else {
                break;
            }
        }
        any.then_some(v)
    }

    fn parse_atom(&mut self) -> Result<Ast, RegexError> {
        let at = self.pos;
        let Some(c) = self.bump() else {
            return Err(RegexError::UnexpectedEnd);
        };
        match c {
            '(' => {
                // Support non-capturing group syntax transparently.
                if self.peek() == Some('?') {
                    let save = self.pos;
                    self.bump();
                    if self.peek() == Some(':') {
                        self.bump();
                    } else {
                        self.pos = save;
                    }
                }
                let inner = self.parse_alternation()?;
                if self.bump() != Some(')') {
                    return Err(RegexError::Unclosed { at, what: '(' });
                }
                Ok(Ast::Group(Box::new(inner)))
            }
            '[' => self.parse_class(at),
            '.' => Ok(Ast::AnyChar),
            '^' => Ok(Ast::StartAnchor),
            '$' => Ok(Ast::EndAnchor),
            '*' | '+' | '?' => Err(RegexError::NothingToRepeat { at }),
            ')' => Err(RegexError::Unexpected { at, found: ')' }),
            '\\' => self.parse_escape(at),
            c => Ok(Ast::Literal(c)),
        }
    }

    fn parse_escape(&mut self, at: usize) -> Result<Ast, RegexError> {
        let Some(c) = self.bump() else {
            return Err(RegexError::UnexpectedEnd);
        };
        let class = |negated, items| Ast::Class { negated, items };
        Ok(match c {
            'd' => class(false, digit_items()),
            'D' => class(true, digit_items()),
            'w' => class(false, word_items()),
            'W' => class(true, word_items()),
            's' => class(false, space_items()),
            'S' => class(true, space_items()),
            'n' => Ast::Literal('\n'),
            't' => Ast::Literal('\t'),
            'r' => Ast::Literal('\r'),
            'f' => Ast::Literal('\u{0C}'),
            'v' => Ast::Literal('\u{0B}'),
            '0' => Ast::Literal('\0'),
            'u' => Ast::Literal(self.parse_unicode_escape(at)?),
            c if c.is_ascii_alphanumeric() => {
                return Err(RegexError::UnknownEscape { at, escape: c })
            }
            // Any punctuation may be escaped to itself.
            c => Ast::Literal(c),
        })
    }

    fn parse_unicode_escape(&mut self, at: usize) -> Result<char, RegexError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let Some(c) = self.bump() else {
                return Err(RegexError::UnexpectedEnd);
            };
            let Some(d) = c.to_digit(16) else {
                return Err(RegexError::UnknownEscape { at, escape: 'u' });
            };
            v = v * 16 + d;
        }
        char::from_u32(v).ok_or(RegexError::UnknownEscape { at, escape: 'u' })
    }

    fn parse_class(&mut self, at: usize) -> Result<Ast, RegexError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut items = Vec::new();
        // `]` as the first member is a literal.
        if self.peek() == Some(']') {
            self.bump();
            items.push(ClassItem::Single(']'));
        }
        loop {
            let item_at = self.pos;
            let Some(c) = self.bump() else {
                return Err(RegexError::Unclosed { at, what: '[' });
            };
            if c == ']' {
                return Ok(Ast::Class { negated, items });
            }
            let lo = if c == '\\' {
                match self.class_escape(item_at)? {
                    ClassMember::Char(c) => c,
                    ClassMember::Items(mut shorthand) => {
                        items.append(&mut shorthand);
                        continue;
                    }
                }
            } else {
                c
            };
            // Possible range `lo-hi` (a trailing `-` is a literal).
            if self.peek() == Some('-') && self.chars.get(self.pos + 1).is_some_and(|&n| n != ']') {
                self.bump(); // consume '-'
                let hi_at = self.pos;
                let Some(h) = self.bump() else {
                    return Err(RegexError::Unclosed { at, what: '[' });
                };
                let hi = if h == '\\' {
                    match self.class_escape(hi_at)? {
                        ClassMember::Char(c) => c,
                        ClassMember::Items(_) => {
                            return Err(RegexError::InvalidRange { at: hi_at })
                        }
                    }
                } else {
                    h
                };
                if hi < lo {
                    return Err(RegexError::InvalidRange { at: item_at });
                }
                items.push(ClassItem::Range(lo, hi));
            } else {
                items.push(ClassItem::Single(lo));
            }
        }
    }

    fn class_escape(&mut self, at: usize) -> Result<ClassMember, RegexError> {
        let Some(c) = self.bump() else {
            return Err(RegexError::UnexpectedEnd);
        };
        Ok(match c {
            'd' => ClassMember::Items(digit_items()),
            'w' => ClassMember::Items(word_items()),
            's' => ClassMember::Items(space_items()),
            'n' => ClassMember::Char('\n'),
            't' => ClassMember::Char('\t'),
            'r' => ClassMember::Char('\r'),
            'f' => ClassMember::Char('\u{0C}'),
            'v' => ClassMember::Char('\u{0B}'),
            '0' => ClassMember::Char('\0'),
            'u' => ClassMember::Char(self.parse_unicode_escape(at)?),
            c if c.is_ascii_alphanumeric() => {
                return Err(RegexError::UnknownEscape { at, escape: c })
            }
            c => ClassMember::Char(c),
        })
    }
}

enum ClassMember {
    Char(char),
    Items(Vec<ClassItem>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_and_concat() {
        assert_eq!(
            parse("ab").unwrap(),
            Ast::Concat(vec![Ast::Literal('a'), Ast::Literal('b')])
        );
        assert_eq!(parse("a").unwrap(), Ast::Literal('a'));
        assert_eq!(parse("").unwrap(), Ast::Empty);
    }

    #[test]
    fn alternation_binds_loosest() {
        let ast = parse("ab|c").unwrap();
        match ast {
            Ast::Alternate(branches) => assert_eq!(branches.len(), 2),
            other => panic!("expected alternation, got {other:?}"),
        }
    }

    #[test]
    fn quantifiers() {
        assert_eq!(
            parse("a*").unwrap(),
            Ast::Repeat {
                node: Box::new(Ast::Literal('a')),
                min: 0,
                max: None
            }
        );
        assert!(matches!(
            parse("a{2,5}").unwrap(),
            Ast::Repeat {
                min: 2,
                max: Some(5),
                ..
            }
        ));
        assert!(matches!(
            parse("a{3}").unwrap(),
            Ast::Repeat {
                min: 3,
                max: Some(3),
                ..
            }
        ));
        assert!(matches!(
            parse("a{3,}").unwrap(),
            Ast::Repeat {
                min: 3,
                max: None,
                ..
            }
        ));
    }

    #[test]
    fn invalid_or_literal_braces() {
        // Not a counted repetition → `{` is a literal (ECMA semantics).
        assert!(parse("a{x}").is_ok());
        assert!(parse("a{,3}").is_ok());
        assert_eq!(parse("a{5,2}"), Err(RegexError::InvalidCounts { at: 1 }));
    }

    #[test]
    fn dangling_quantifier_errors() {
        assert!(matches!(
            parse("*a"),
            Err(RegexError::NothingToRepeat { .. })
        ));
        assert!(matches!(
            parse("^*"),
            Err(RegexError::NothingToRepeat { .. })
        ));
    }

    #[test]
    fn classes() {
        let ast = parse("[a-z_]").unwrap();
        assert_eq!(
            ast,
            Ast::Class {
                negated: false,
                items: vec![ClassItem::Range('a', 'z'), ClassItem::Single('_')]
            }
        );
        assert!(matches!(
            parse("[^0-9]").unwrap(),
            Ast::Class { negated: true, .. }
        ));
    }

    #[test]
    fn class_edge_cases() {
        // Leading `]` is literal; trailing `-` is literal.
        assert_eq!(
            parse("[]-]").unwrap(),
            Ast::Class {
                negated: false,
                items: vec![ClassItem::Single(']'), ClassItem::Single('-')]
            }
        );
        assert!(matches!(
            parse("[z-a]"),
            Err(RegexError::InvalidRange { .. })
        ));
        assert!(matches!(parse("[abc"), Err(RegexError::Unclosed { .. })));
    }

    #[test]
    fn shorthands_in_and_out_of_classes() {
        assert!(matches!(
            parse(r"\d").unwrap(),
            Ast::Class { negated: false, .. }
        ));
        assert!(matches!(
            parse(r"\W").unwrap(),
            Ast::Class { negated: true, .. }
        ));
        let ast = parse(r"[\d_]").unwrap();
        match ast {
            Ast::Class { items, .. } => assert_eq!(items.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn groups_and_noncapturing() {
        assert!(matches!(parse("(ab)+").unwrap(), Ast::Repeat { .. }));
        assert!(matches!(parse("(?:ab)+").unwrap(), Ast::Repeat { .. }));
        assert!(matches!(parse("(ab"), Err(RegexError::Unclosed { .. })));
    }

    #[test]
    fn escapes() {
        assert_eq!(parse(r"\.").unwrap(), Ast::Literal('.'));
        assert_eq!(parse(r"A").unwrap(), Ast::Literal('A'));
        assert!(matches!(
            parse(r"\q"),
            Err(RegexError::UnknownEscape { .. })
        ));
    }
}
