//! # jsonx-regex
//!
//! A small regular-expression engine supporting the subset of ECMA-262
//! syntax that JSON Schema's `pattern` and `patternProperties` keywords use
//! in practice: literals, `.`, character classes (with ranges, negation and
//! the `\d \w \s` families), anchors `^ $`, alternation `|`, grouping
//! `( )`, and the quantifiers `* + ? {m} {m,} {m,n}`.
//!
//! Matching is by Thompson/Pike NFA simulation — linear in
//! `pattern × input`, with **no backtracking**, so adversarial schema
//! patterns cannot blow up validation time (a property the formal JSON
//! Schema study of Pezoa et al. relies on when bounding validation
//! complexity).
//!
//! ```
//! use jsonx_regex::Regex;
//!
//! let re = Regex::compile(r"^[a-z][a-z0-9_]{2,15}$").unwrap();
//! assert!(re.is_match("user_42"));
//! assert!(!re.is_match("9lives"));
//!
//! // JSON Schema `pattern` is an unanchored search:
//! let re = Regex::compile(r"\d{4}-\d{2}").unwrap();
//! assert!(re.is_match("posted 2019-03, Lisbon"));
//! ```

pub mod ast;
pub mod nfa;
pub mod parser;
pub mod pike;
pub mod plan;
pub mod sample;

pub use ast::{Ast, ClassItem, RegexError};
pub use nfa::{CharSpec, Program};
pub use pike::Matcher;
pub use plan::MatchPlan;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    ast: Ast,
    program: Program,
}

impl Regex {
    /// Parses and compiles `pattern`.
    pub fn compile(pattern: &str) -> Result<Regex, RegexError> {
        let ast = parser::parse(pattern)?;
        let program = nfa::compile(&ast)?;
        Ok(Regex {
            pattern: pattern.to_string(),
            ast,
            program,
        })
    }

    /// The parsed syntax tree.
    pub fn ast(&self) -> &Ast {
        &self.ast
    }

    /// Generates a string matched by this pattern (see [`sample::sample`]);
    /// `None` for patterns with unsatisfiable classes like `[^\u{0}-\u{10FFFF}]`.
    pub fn sample(&self, seed: u64) -> Option<String> {
        sample::sample(&self.ast, seed)
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Unanchored search: true when the pattern matches anywhere in `text`
    /// (ECMA `RegExp.prototype.test`, the JSON Schema `pattern` semantics).
    pub fn is_match(&self, text: &str) -> bool {
        pike::search(&self.program, text)
    }

    /// Unanchored search reusing caller-owned scratch buffers: the
    /// allocation-free path for hot loops that test many inputs against
    /// (possibly many) patterns, such as the schema validator's
    /// precompiled pattern slots. One [`Matcher`] may be shared across
    /// every `Regex` in play.
    pub fn is_match_with(&self, matcher: &mut Matcher, text: &str) -> bool {
        matcher.search(&self.program, text)
    }

    /// Anchored match of the whole input (as if wrapped in `^...$`).
    pub fn is_full_match(&self, text: &str) -> bool {
        pike::full_match(&self.program, text)
    }

    /// Classifies this pattern into a specialised [`MatchPlan`] — a
    /// branch-free matcher for the common schema-pattern shapes, or
    /// [`MatchPlan::Vm`] as the general fallback. Analysis walks the AST
    /// once, so callers with a compile step (the schema validator's IR
    /// builder) plan each pattern slot up front and reuse the result.
    pub fn plan(&self) -> MatchPlan {
        MatchPlan::analyze(&self.ast)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_search_vs_full() {
        let re = Regex::compile("bc").unwrap();
        assert!(re.is_match("abcd"));
        assert!(!re.is_full_match("abcd"));
        assert!(re.is_full_match("bc"));
    }

    #[test]
    fn pattern_accessor() {
        assert_eq!(Regex::compile("a+").unwrap().pattern(), "a+");
    }
}
