//! Compile-time match plans: specialised matchers for the pattern shapes
//! JSON Schemas overwhelmingly use.
//!
//! The Pike VM ([`crate::pike`]) is the general engine — linear time,
//! no backtracking — but it pays per-character thread-list bookkeeping
//! even for patterns like `^https://` or `^[0-9a-f]{40}$` that need none
//! of it. [`MatchPlan::analyze`] classifies a parsed pattern into one of
//! three branch-free shapes (anchored literal, fixed class sequence,
//! single-class repetition) or falls back to the VM. Plans implement the
//! same *unanchored search* semantics as [`crate::Regex::is_match`]
//! (ECMA `RegExp.prototype.test`, the JSON Schema `pattern` contract);
//! agreement with the VM is asserted by the tests below and by the
//! schema crate's IR property suite.
//!
//! Analysis costs one AST walk, so it belongs in a *compile* step — the
//! schema validator's IR builder plans each pattern slot once and reuses
//! the plan for every document probed.

use crate::ast::Ast;
use crate::nfa::CharSpec;

/// A specialised matching strategy for one pattern.
#[derive(Debug, Clone)]
pub enum MatchPlan {
    /// A plain character sequence, possibly anchored on either side:
    /// `^https://`, `abc$`, `^started$`, `needle`.
    Literal {
        /// The literal text.
        lit: String,
        /// Pattern began with `^`.
        at_start: bool,
        /// Pattern ended with `$`.
        at_end: bool,
    },
    /// A fixed-length sequence of single-character matchers:
    /// `^[0-9a-f]{40}$`, `^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z$`.
    FixedSeq {
        /// One spec per input character, in order.
        specs: Vec<CharSpec>,
        /// Pattern began with `^`.
        at_start: bool,
        /// Pattern ended with `$`.
        at_end: bool,
    },
    /// One character class repeated: `^[0-9]+$`, `^a*`, `[a-z]{2,8}$`.
    RepeatClass {
        /// The repeated spec.
        spec: CharSpec,
        /// Minimum run length.
        min: usize,
        /// Maximum run length (`None` = unbounded).
        max: Option<usize>,
        /// Pattern began with `^`.
        at_start: bool,
        /// Pattern ended with `$`.
        at_end: bool,
    },
    /// An unbounded class repetition followed by a literal whose first
    /// character the class rejects: `^[a-z0-9]+/`, `\d*px$`. The
    /// disjointness makes greedy matching exact — the run must stop
    /// precisely where the literal begins — so one linear scan decides.
    RepeatThenLiteral {
        /// The repeated spec.
        spec: CharSpec,
        /// Minimum run length.
        min: usize,
        /// The literal that follows the run (non-empty; its first char is
        /// not matched by `spec`).
        lit: String,
        /// Pattern began with `^`.
        at_start: bool,
        /// Pattern ended with `$`.
        at_end: bool,
    },
    /// Anything else — alternation, groups, mixed quantifiers — runs on
    /// the Pike VM.
    Vm,
}

impl MatchPlan {
    /// Classifies a parsed pattern. Returns [`MatchPlan::Vm`] whenever the
    /// shape is not one of the specialised forms.
    pub fn analyze(ast: &Ast) -> MatchPlan {
        let mut elems = Vec::new();
        if !flatten(ast, &mut elems) {
            return MatchPlan::Vm;
        }
        let at_start = matches!(elems.first(), Some(Ast::StartAnchor));
        if at_start {
            elems.remove(0);
        }
        let at_end = matches!(elems.last(), Some(Ast::EndAnchor));
        if at_end {
            elems.pop();
        }
        // Anchors anywhere else make the pattern unmatchable in ways the
        // plans don't model; leave those to the VM.
        if elems
            .iter()
            .any(|e| matches!(e, Ast::StartAnchor | Ast::EndAnchor))
        {
            return MatchPlan::Vm;
        }

        // `^[0-9]+$` shape: exactly one single-char repetition.
        if elems.len() == 1 {
            if let Ast::Repeat { node, min, max } = elems[0] {
                if let Some(spec) = char_spec(node) {
                    return MatchPlan::RepeatClass {
                        spec,
                        min: *min as usize,
                        max: max.map(|m| m as usize),
                        at_start,
                        at_end,
                    };
                }
            }
        }

        // `^[a-z0-9]+/…` shape: one unbounded repetition, then literals,
        // with the class/literal boundary unambiguous.
        if elems.len() >= 2 {
            if let Ast::Repeat {
                node,
                min,
                max: None,
            } = elems[0]
            {
                if let Some(spec) = char_spec(node) {
                    let lit: Option<String> = elems[1..]
                        .iter()
                        .map(|e| match e {
                            Ast::Literal(c) => Some(*c),
                            _ => None,
                        })
                        .collect();
                    if let Some(lit) = lit {
                        let first = lit.chars().next().expect("len >= 2 means non-empty");
                        if !spec.matches(first) {
                            return MatchPlan::RepeatThenLiteral {
                                spec,
                                min: *min as usize,
                                lit,
                                at_start,
                                at_end,
                            };
                        }
                    }
                }
            }
        }

        // Fixed-length sequences (counted repetitions of single chars
        // expand here, mirroring the NFA compiler).
        let mut specs = Vec::new();
        for elem in &elems {
            match elem {
                Ast::Repeat {
                    node,
                    min,
                    max: Some(max),
                } if min == max => match char_spec(node) {
                    Some(spec) => {
                        specs.extend(std::iter::repeat_n(spec, *min as usize));
                    }
                    None => return MatchPlan::Vm,
                },
                other => match char_spec(other) {
                    Some(spec) => specs.push(spec),
                    None => return MatchPlan::Vm,
                },
            }
        }
        if specs.iter().all(|s| matches!(s, CharSpec::Literal(_))) {
            let lit: String = specs
                .iter()
                .map(|s| match s {
                    CharSpec::Literal(c) => *c,
                    _ => unreachable!(),
                })
                .collect();
            return MatchPlan::Literal {
                lit,
                at_start,
                at_end,
            };
        }
        MatchPlan::FixedSeq {
            specs,
            at_start,
            at_end,
        }
    }

    /// Runs the plan as an unanchored search over `text`. Returns `None`
    /// for [`MatchPlan::Vm`] — the caller falls back to the Pike VM.
    #[inline]
    pub fn eval(&self, text: &str) -> Option<bool> {
        match self {
            MatchPlan::Literal {
                lit,
                at_start,
                at_end,
            } => Some(match (at_start, at_end) {
                (true, true) => text == lit,
                (true, false) => text.starts_with(lit.as_str()),
                (false, true) => text.ends_with(lit.as_str()),
                (false, false) => text.contains(lit.as_str()),
            }),
            MatchPlan::FixedSeq {
                specs,
                at_start,
                at_end,
            } => Some(match (at_start, at_end) {
                (true, true) => {
                    let mut chars = text.chars();
                    specs
                        .iter()
                        .all(|s| chars.next().is_some_and(|c| s.matches(c)))
                        && chars.next().is_none()
                }
                (true, false) => {
                    let mut chars = text.chars();
                    specs
                        .iter()
                        .all(|s| chars.next().is_some_and(|c| s.matches(c)))
                }
                (false, true) => {
                    let mut chars = text.chars().rev();
                    specs
                        .iter()
                        .rev()
                        .all(|s| chars.next().is_some_and(|c| s.matches(c)))
                }
                (false, false) => text.char_indices().any(|(i, _)| {
                    let mut chars = text[i..].chars();
                    specs
                        .iter()
                        .all(|s| chars.next().is_some_and(|c| s.matches(c)))
                }),
            }),
            MatchPlan::RepeatClass {
                spec,
                min,
                max,
                at_start,
                at_end,
            } => Some(match (at_start, at_end) {
                // The whole input is the run, so `max` binds; elsewhere a
                // long run always contains a short-enough sub-run.
                (true, true) => {
                    let mut n = 0usize;
                    for c in text.chars() {
                        if !spec.matches(c) {
                            return Some(false);
                        }
                        n += 1;
                    }
                    n >= *min && max.is_none_or(|m| n <= m)
                }
                (true, false) => text.chars().take_while(|&c| spec.matches(c)).count() >= *min,
                (false, true) => {
                    text.chars().rev().take_while(|&c| spec.matches(c)).count() >= *min
                }
                (false, false) => {
                    if *min == 0 {
                        return Some(true);
                    }
                    let mut run = 0usize;
                    for c in text.chars() {
                        if spec.matches(c) {
                            run += 1;
                            if run >= *min {
                                return Some(true);
                            }
                        } else {
                            run = 0;
                        }
                    }
                    false
                }
            }),
            MatchPlan::RepeatThenLiteral {
                spec,
                min,
                lit,
                at_start,
                at_end,
            } => Some(if *at_start {
                let run: usize = text.chars().take_while(|&c| spec.matches(c)).count();
                let split = text.char_indices().nth(run).map_or(text.len(), |(i, _)| i);
                let rest = &text[split..];
                run >= *min
                    && if *at_end {
                        rest == lit
                    } else {
                        rest.starts_with(lit.as_str())
                    }
            } else {
                // Any occurrence of the literal sits at a run break
                // (its first char leaves the class), so checking at every
                // break position covers all candidate starts.
                let mut run = 0usize;
                for (i, c) in text.char_indices() {
                    if spec.matches(c) {
                        run += 1;
                        continue;
                    }
                    if run >= *min {
                        let rest = &text[i..];
                        let hit = if *at_end {
                            rest == lit
                        } else {
                            rest.starts_with(lit.as_str())
                        };
                        if hit {
                            return Some(true);
                        }
                    }
                    run = 0;
                }
                false
            }),
            MatchPlan::Vm => None,
        }
    }
}

/// The sequence elements of `ast`, with groups and concatenations
/// flattened. Returns false for shapes (alternation) the plans never
/// model, short-circuiting analysis.
fn flatten<'a>(ast: &'a Ast, out: &mut Vec<&'a Ast>) -> bool {
    match ast {
        Ast::Concat(items) => items.iter().all(|i| flatten(i, out)),
        Ast::Group(inner) => flatten(inner, out),
        Ast::Empty => true,
        Ast::Alternate(_) => false,
        other => {
            out.push(other);
            true
        }
    }
}

/// The single-character matcher for `ast`, if it consumes exactly one char.
fn char_spec(ast: &Ast) -> Option<CharSpec> {
    match ast {
        Ast::Literal(c) => Some(CharSpec::Literal(*c)),
        Ast::AnyChar => Some(CharSpec::AnyButNewline),
        Ast::Class { negated, items } => Some(CharSpec::Class {
            negated: *negated,
            items: items.clone(),
        }),
        Ast::Group(inner) => char_spec(inner),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Regex;

    fn plan(p: &str) -> MatchPlan {
        Regex::compile(p).unwrap().plan()
    }

    /// Every plan must agree with the VM on every input.
    fn assert_agrees(pattern: &str, inputs: &[&str]) {
        let re = Regex::compile(pattern).unwrap();
        let plan = re.plan();
        for text in inputs {
            if let Some(fast) = plan.eval(text) {
                assert_eq!(
                    fast,
                    re.is_match(text),
                    "plan {plan:?} disagrees with VM on pattern {pattern:?} input {text:?}"
                );
            }
        }
    }

    const INPUTS: &[&str] = &[
        "",
        "a",
        "abc",
        "xabcx",
        "https://x",
        "http://x",
        "0123456789",
        "12a34",
        "é日本",
        "2019-03-26T01:02:03Z",
        "deadbeefdeadbeefdeadbeefdeadbeefdeadbeef",
        "started",
        "restarted",
        "\n",
        "aaaaaa",
    ];

    #[test]
    fn classifies_schema_style_patterns() {
        assert!(matches!(
            plan("^https://"),
            MatchPlan::Literal {
                at_start: true,
                at_end: false,
                ..
            }
        ));
        assert!(matches!(
            plan("^started$"),
            MatchPlan::Literal {
                at_start: true,
                at_end: true,
                ..
            }
        ));
        assert!(matches!(
            plan("%"),
            MatchPlan::Literal {
                at_start: false,
                at_end: false,
                ..
            }
        ));
        assert!(matches!(
            plan("^[0-9a-f]{40}$"),
            MatchPlan::RepeatClass {
                min: 40,
                max: Some(40),
                at_start: true,
                at_end: true,
                ..
            }
        ));
        assert!(matches!(
            plan(r"^\d{4}-\d{2}-\d{2}$"),
            MatchPlan::FixedSeq { .. }
        ));
        assert!(matches!(
            plan("^[0-9]+$"),
            MatchPlan::RepeatClass {
                min: 1,
                max: None,
                ..
            }
        ));
        assert!(matches!(plan("^a*"), MatchPlan::RepeatClass { min: 0, .. }));
        assert!(matches!(
            plan("[a-z]{2,8}$"),
            MatchPlan::RepeatClass { max: Some(8), .. }
        ));
        assert!(matches!(
            plan("^[a-z0-9]+/"),
            MatchPlan::RepeatThenLiteral {
                min: 1,
                at_start: true,
                at_end: false,
                ..
            }
        ));
        assert!(matches!(
            plan(r"\d*px$"),
            MatchPlan::RepeatThenLiteral {
                min: 0,
                at_end: true,
                ..
            }
        ));
        assert!(matches!(plan("^(cat|dog)$"), MatchPlan::Vm));
        // The literal's first char is inside the class: greedy would be
        // wrong, so the VM keeps it.
        assert!(matches!(plan("[a-z]+z"), MatchPlan::Vm));
        assert!(matches!(plan("a{2,4}b"), MatchPlan::Vm));
    }

    #[test]
    fn repeat_then_literal_agrees_with_vm() {
        for pattern in [
            "^[a-z0-9]+/",
            "^[a-z0-9]+/$",
            "[a-z0-9]+/",
            "[a-z0-9]+/$",
            r"\d*px$",
            r"\d+px",
            "^a*-b",
        ] {
            assert_agrees(
                pattern,
                &[
                    "",
                    "/",
                    "org1/repo2",
                    "org1/",
                    "ORG/repo",
                    "a-b/",
                    "12px",
                    "px",
                    "x12pxy",
                    "12 px",
                    "-b",
                    "aa-b",
                    "é/",
                ],
            );
        }
    }

    #[test]
    fn repeat_with_max_only_binds_when_fully_anchored() {
        // `^[0-9]{1,3}$` rejects 4 digits; unanchored `[0-9]{1,3}` accepts
        // any string containing a digit — both must match the VM.
        assert!(matches!(
            plan("^[0-9]{1,3}$"),
            MatchPlan::RepeatClass { max: Some(3), .. }
        ));
        assert_agrees("^[0-9]{1,3}$", &["", "1", "123", "1234"]);
    }

    #[test]
    fn plans_agree_with_vm() {
        for pattern in [
            "^https://",
            "^started$",
            "started",
            "bc$",
            "",
            "^$",
            "^[0-9a-f]{40}$",
            r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z$",
            r"\d{2}",
            "^[0-9]+$",
            "[0-9]+",
            "^a*$",
            "a*",
            "^.{3}$",
            "^[^0-9]+$",
            r"^\w+$",
            "[a-c]{2}",
        ] {
            assert_agrees(pattern, INPUTS);
        }
    }

    #[test]
    fn unicode_sequences() {
        assert_agrees("^..$", &["日本", "日本語", "é", "ab"]);
        assert_agrees("é", &["café", "cafe", ""]);
    }
}
