//! Property tests: the Pike VM agrees with a naive backtracking oracle on
//! randomly generated small patterns and inputs.

use jsonx_regex::{parser, Ast, Regex};
use proptest::prelude::*;

/// Exponential-time but obviously-correct matcher used as the oracle.
/// Matches `ast` against `text[pos..]`, calling `k` with every end position.
fn backtrack(ast: &Ast, chars: &[char], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
    match ast {
        Ast::Empty => k(pos),
        Ast::Literal(c) => {
            if chars.get(pos) == Some(c) {
                k(pos + 1)
            } else {
                false
            }
        }
        Ast::AnyChar => {
            if chars.get(pos).is_some_and(|&c| c != '\n') {
                k(pos + 1)
            } else {
                false
            }
        }
        Ast::Class { negated, items } => {
            if let Some(&c) = chars.get(pos) {
                let inside = items.iter().any(|i| i.contains(c));
                if inside != *negated {
                    return k(pos + 1);
                }
            }
            false
        }
        Ast::StartAnchor => pos == 0 && k(pos),
        Ast::EndAnchor => pos == chars.len() && k(pos),
        Ast::Group(inner) => backtrack(inner, chars, pos, k),
        Ast::Concat(items) => concat_bt(items, chars, pos, k),
        Ast::Alternate(branches) => branches.iter().any(|b| backtrack(b, chars, pos, k)),
        Ast::Repeat { node, min, max } => repeat_bt(node, *min, *max, chars, pos, k, 0),
    }
}

fn concat_bt(items: &[Ast], chars: &[char], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
    match items.split_first() {
        None => k(pos),
        Some((head, rest)) => backtrack(head, chars, pos, &mut |p| concat_bt(rest, chars, p, k)),
    }
}

fn repeat_bt(
    node: &Ast,
    min: u32,
    max: Option<u32>,
    chars: &[char],
    pos: usize,
    k: &mut dyn FnMut(usize) -> bool,
    done: u32,
) -> bool {
    let cap = max.unwrap_or(u32::MAX).min(chars.len() as u32 + 2 + done);
    if done >= min && k(pos) {
        return true;
    }
    if done >= cap {
        return false;
    }
    backtrack(node, chars, pos, &mut |p| {
        // Refuse zero-width progress to avoid infinite recursion on (a*)*.
        if p == pos {
            done + 1 >= min && k(p)
        } else {
            repeat_bt(node, min, max, chars, p, k, done + 1)
        }
    })
}

fn oracle_search(ast: &Ast, text: &str) -> bool {
    let chars: Vec<char> = text.chars().collect();
    (0..=chars.len()).any(|start| backtrack(ast, &chars, start, &mut |_| true))
}

fn oracle_full(ast: &Ast, text: &str) -> bool {
    let chars: Vec<char> = text.chars().collect();
    backtrack(ast, &chars, 0, &mut |end| end == chars.len())
}

/// Random patterns from a small alphabet, kept tiny so the oracle stays fast.
fn arb_pattern() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just(".".to_string()),
        Just("[ab]".to_string()),
        Just("[^a]".to_string()),
        Just("[a-c]".to_string()),
    ];
    let unit = (
        atom,
        prop_oneof![
            Just(""),
            Just("*"),
            Just("+"),
            Just("?"),
            Just("{2}"),
            Just("{1,2}"),
        ],
    )
        .prop_map(|(a, q)| format!("{a}{q}"));
    prop::collection::vec(unit, 1..5).prop_map(|units| units.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn pike_agrees_with_oracle_on_search(pat in arb_pattern(), text in "[abc]{0,8}") {
        let ast = parser::parse(&pat).unwrap();
        let re = Regex::compile(&pat).unwrap();
        prop_assert_eq!(re.is_match(&text), oracle_search(&ast, &text),
            "pattern={} text={}", pat, text);
    }

    #[test]
    fn pike_agrees_with_oracle_on_full_match(pat in arb_pattern(), text in "[abc]{0,8}") {
        let ast = parser::parse(&pat).unwrap();
        let re = Regex::compile(&pat).unwrap();
        prop_assert_eq!(re.is_full_match(&text), oracle_full(&ast, &text),
            "pattern={} text={}", pat, text);
    }

    #[test]
    fn alternations_agree(a in arb_pattern(), b in arb_pattern(), text in "[abc]{0,6}") {
        let pat = format!("{a}|{b}");
        let ast = parser::parse(&pat).unwrap();
        let re = Regex::compile(&pat).unwrap();
        prop_assert_eq!(re.is_match(&text), oracle_search(&ast, &text));
    }

    #[test]
    fn compile_never_panics(pat in "\\PC{0,16}") {
        let _ = Regex::compile(&pat);
    }
}
