//! Property tests: serialize ∘ parse = id, across serializer modes.

use jsonx_data::{Number, Object, Value};
use jsonx_syntax::{parse, to_string, to_string_pretty, write_value, SerializeOptions};
use proptest::prelude::*;

/// Strategy producing arbitrary JSON values of bounded size.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(|i| Value::Num(Number::Int(i))),
        (-1e9f64..1e9f64).prop_map(|f| Value::Num(Number::from_f64(f).unwrap())),
        "\\PC{0,12}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Arr),
            prop::collection::vec(("[a-z]{0,6}", inner), 0..6)
                .prop_map(|pairs| { Value::Obj(pairs.into_iter().collect::<Object>()) }),
        ]
    })
}

proptest! {
    #[test]
    fn compact_round_trip(v in arb_value()) {
        let text = to_string(&v);
        let back = parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn pretty_round_trip(v in arb_value()) {
        let text = to_string_pretty(&v);
        let back = parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn canonical_round_trip_and_stability(v in arb_value()) {
        let opts = SerializeOptions::canonical();
        let text = write_value(&v, opts);
        let back = parse(&text).unwrap();
        prop_assert_eq!(&back, &v);
        // Canonical output is a fixed point.
        prop_assert_eq!(write_value(&back, opts), text);
    }

    #[test]
    fn event_stream_is_well_formed(v in arb_value()) {
        let text = to_string(&v);
        let events: Result<Vec<_>, _> =
            jsonx_syntax::EventParser::new(text.as_bytes()).collect();
        prop_assert!(events.is_ok());
    }

    #[test]
    fn parser_never_panics_on_garbage(s in "\\PC{0,64}") {
        let _ = parse(&s);
    }

    #[test]
    fn parser_never_panics_on_bytes(b in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = jsonx_syntax::parse_bytes(&b);
    }
}
