//! The source-agnostic record-decoding seam.
//!
//! Every streaming stage in the workspace consumes records through one
//! interface: a [`RecordDecoder`] turns the bytes of a single
//! newline-framed record into the [`RawEvent`] stream the JSON data model
//! is defined over. The pipeline engine (chunking, work stealing, fault
//! tolerance, out-of-core dispatch) never inspects record syntax — it
//! frames lines and hands them to a decoder — so a new ingestion format
//! only has to say how one record becomes events to inherit inference,
//! validation, translation, error policies and quarantine unchanged.
//!
//! Two implementations live in this crate: [`JsonDecoder`] (the NDJSON
//! baseline, wrapping [`RawEventParser`]) and
//! [`CsvDecoder`](crate::csv::CsvDecoder) (header-driven CSV rows as flat
//! objects). The facade crate adds a third, wrapping the SWAR
//! structural-index fast path behind the same trait.
//!
//! Event consumers implement [`EventReceiver`]; [`ValueBuilder`] is the
//! canonical receiver that rebuilds the DOM [`Value`] exactly as the
//! recursive-descent parser would (insertion order, duplicate keys
//! last-wins in place), and [`Tee`] fans one decode out to two receivers
//! so a single tokenisation can feed, say, a typer and a validator.

use crate::error::ParseError;
use crate::event::{RawEvent, RawEventParser};
use crate::limits::ParseLimits;
use crate::parser::{parse_with, ParserOptions};
use jsonx_data::{Object, Value};

/// Observes a record's event stream. Receivers are infallible: decode
/// errors belong to the decoder, and a receiver must tolerate being
/// abandoned mid-document (the decoder stops on the first error).
pub trait EventReceiver {
    /// Called once per event, in document order.
    fn event(&mut self, ev: &RawEvent<'_>);
}

/// The no-op receiver: compiles to nothing, for decode-only passes
/// (well-formedness checks, typing paths that read events elsewhere).
pub struct NullReceiver;

impl EventReceiver for NullReceiver {
    #[inline(always)]
    fn event(&mut self, _ev: &RawEvent<'_>) {}
}

/// Fans one event stream out to two receivers, left first.
pub struct Tee<'r, A: ?Sized, B: ?Sized>(pub &'r mut A, pub &'r mut B);

impl<A: EventReceiver + ?Sized, B: EventReceiver + ?Sized> EventReceiver for Tee<'_, A, B> {
    #[inline]
    fn event(&mut self, ev: &RawEvent<'_>) {
        self.0.event(ev);
        self.1.event(ev);
    }
}

/// Rebuilds the document [`Value`] from an event stream, mirroring the
/// DOM parser exactly: insertion order preserved, duplicate keys resolve
/// last-wins in place.
#[derive(Default)]
pub struct ValueBuilder {
    stack: Vec<Value>,
    keys: Vec<Option<String>>,
    pending_key: Option<String>,
    result: Option<Value>,
}

impl ValueBuilder {
    /// A fresh builder.
    pub fn new() -> ValueBuilder {
        ValueBuilder::default()
    }

    /// Takes the completed document ([`Value::Null`] when no value event
    /// arrived) and resets the builder for the next record.
    pub fn take(&mut self) -> Value {
        self.stack.clear();
        self.keys.clear();
        self.pending_key = None;
        self.result.take().unwrap_or(Value::Null)
    }

    fn attach(&mut self, v: Value) {
        match self.stack.last_mut() {
            Some(Value::Arr(items)) => items.push(v),
            Some(Value::Obj(obj)) => {
                let key = self.pending_key.take().expect("key precedes value");
                obj.insert(key, v);
            }
            _ => self.result = Some(v),
        }
    }
}

impl EventReceiver for ValueBuilder {
    fn event(&mut self, ev: &RawEvent<'_>) {
        match ev {
            RawEvent::StartObject => {
                self.keys.push(self.pending_key.take());
                self.stack.push(Value::Obj(Object::new()));
            }
            RawEvent::StartArray => {
                self.keys.push(self.pending_key.take());
                self.stack.push(Value::Arr(Vec::new()));
            }
            RawEvent::EndObject | RawEvent::EndArray => {
                let v = self.stack.pop().expect("balanced events");
                self.pending_key = self.keys.pop().expect("balanced events");
                self.attach(v);
            }
            RawEvent::Key(k) => self.pending_key = Some(k.as_ref().to_owned()),
            RawEvent::Null => self.attach(Value::Null),
            RawEvent::Bool(b) => self.attach(Value::Bool(*b)),
            RawEvent::Num(n) => self.attach(Value::Num(*n)),
            RawEvent::Str(s) => self.attach(Value::Str(s.as_ref().to_owned())),
        }
    }
}

/// Decodes one newline-framed record into its event stream.
///
/// Implementations are shared across a run's workers (`Sync`); mutable
/// per-worker machinery lives in the associated `Scratch` (reusable
/// buffers, speculation state, scanners), created once per worker via
/// [`scratch`](Self::scratch) and threaded through every decode.
///
/// The contract mirrors the JSON event parser's: a successful decode
/// emits a balanced event stream describing exactly one value, and an
/// error leaves the receiver abandonable (partial events may have been
/// delivered; callers reset their receivers on error). Byte offsets in
/// errors are relative to the record, not the corpus.
pub trait RecordDecoder: Sync {
    /// Per-worker reusable state.
    type Scratch;

    /// Creates one worker's scratch state.
    fn scratch(&self) -> Self::Scratch;

    /// Decodes one record, delivering its events to `recv`.
    fn decode_events<R: EventReceiver + ?Sized>(
        &self,
        scratch: &mut Self::Scratch,
        record: &str,
        recv: &mut R,
    ) -> Result<(), ParseError>;

    /// Decodes one record into a DOM [`Value`]. The default route goes
    /// through [`ValueBuilder`]; decoders with a faster direct path (a
    /// recursive-descent parser, a projecting scanner) override it — the
    /// result must equal the event-built value.
    fn decode_value(&self, scratch: &mut Self::Scratch, record: &str) -> Result<Value, ParseError> {
        let mut builder = ValueBuilder::new();
        self.decode_events(scratch, record, &mut builder)?;
        Ok(builder.take())
    }
}

/// The NDJSON baseline decoder: one JSON document per record, events
/// from [`RawEventParser`] under the configured [`ParseLimits`],
/// DOM values from the recursive-descent parser (byte-identical errors
/// to the historical streaming paths).
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonDecoder {
    /// Per-record resource limits (depth, record bytes, string bytes).
    pub limits: ParseLimits,
}

impl JsonDecoder {
    /// A decoder with [`ParseLimits::default`].
    pub fn new() -> JsonDecoder {
        JsonDecoder::default()
    }

    /// Replaces the per-record resource limits.
    pub fn with_limits(mut self, limits: ParseLimits) -> JsonDecoder {
        self.limits = limits;
        self
    }

    /// The DOM-parser options equivalent to this decoder's limits.
    pub fn parser_options(&self) -> ParserOptions {
        ParserOptions {
            max_depth: self.limits.max_depth,
            allow_trailing: false,
            max_string_bytes: self.limits.max_string_bytes,
        }
    }
}

impl RecordDecoder for JsonDecoder {
    type Scratch = ();

    fn scratch(&self) {}

    fn decode_events<R: EventReceiver + ?Sized>(
        &self,
        _scratch: &mut (),
        record: &str,
        recv: &mut R,
    ) -> Result<(), ParseError> {
        let mut parser = RawEventParser::new(record.as_bytes()).with_limits(self.limits);
        while let Some(ev) = parser.next_event()? {
            recv.event(&ev);
        }
        Ok(())
    }

    fn decode_value(&self, _scratch: &mut (), record: &str) -> Result<Value, ParseError> {
        parse_with(record.as_bytes(), self.parser_options())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn value_builder_matches_dom_parser() {
        let decoder = JsonDecoder::new();
        for doc in [
            r#"{"a": 1, "b": [true, null, {"c": "x\ny"}], "geo": {"lat": 1.5}}"#,
            r#"{"dup": 1, "dup": "last-wins", "keep": 0}"#,
            r#"[[], {}, [1, "s"]]"#,
            "42",
            "\"plain\"",
            "null",
        ] {
            let mut builder = ValueBuilder::new();
            decoder
                .decode_events(&mut (), doc, &mut builder)
                .unwrap_or_else(|e| panic!("decode {doc}: {e}"));
            assert_eq!(builder.take(), parse(doc).unwrap(), "doc {doc}");
        }
    }

    #[test]
    fn value_builder_is_reusable_after_abandonment() {
        let decoder = JsonDecoder::new();
        let mut builder = ValueBuilder::new();
        assert!(decoder
            .decode_events(&mut (), "{\"a\": [1, ", &mut builder)
            .is_err());
        let _ = builder.take(); // reset after the abandoned decode
        decoder
            .decode_events(&mut (), "{\"ok\": 1}", &mut builder)
            .unwrap();
        assert_eq!(builder.take(), parse("{\"ok\": 1}").unwrap());
    }

    #[test]
    fn decode_value_equals_event_built_value() {
        let decoder = JsonDecoder::new();
        let doc = r#"{"n": [1, 2.5], "s": "x", "o": {"k": null}}"#;
        let direct = decoder.decode_value(&mut (), doc).unwrap();
        let mut builder = ValueBuilder::new();
        decoder.decode_events(&mut (), doc, &mut builder).unwrap();
        assert_eq!(direct, builder.take());
    }

    #[test]
    fn tee_feeds_both_receivers() {
        struct Count(usize);
        impl EventReceiver for Count {
            fn event(&mut self, _ev: &RawEvent<'_>) {
                self.0 += 1;
            }
        }
        let mut a = Count(0);
        let mut b = ValueBuilder::new();
        JsonDecoder::new()
            .decode_events(&mut (), r#"{"k": [1, 2]}"#, &mut Tee(&mut a, &mut b))
            .unwrap();
        assert_eq!(a.0, 7); // {, k, [, 1, 2, ], }
        assert_eq!(b.take(), parse(r#"{"k": [1, 2]}"#).unwrap());
    }

    #[test]
    fn limits_are_enforced() {
        let decoder = JsonDecoder::new().with_limits(ParseLimits::new().with_max_depth(2));
        let err = decoder
            .decode_events(&mut (), "[[[1]]]", &mut NullReceiver)
            .unwrap_err();
        assert_eq!(err.kind, crate::ParseErrorKind::TooDeep);
    }
}
