//! JSON serialization: compact, pretty, ASCII-safe, and key-sorted modes.

use jsonx_data::{Number, Value};

/// Serializer configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerializeOptions {
    /// `Some(n)`: pretty-print with `n`-space indentation; `None`: compact.
    pub indent: Option<usize>,
    /// Escape all non-ASCII characters as `\uXXXX`.
    pub ascii_only: bool,
    /// Emit object keys in sorted order (canonical form).
    pub sort_keys: bool,
}

impl SerializeOptions {
    /// Compact output (no whitespace).
    pub fn compact() -> Self {
        Self::default()
    }

    /// Two-space pretty-printing.
    pub fn pretty() -> Self {
        SerializeOptions {
            indent: Some(2),
            ..Default::default()
        }
    }

    /// Canonical form: compact, sorted keys, ASCII-only — byte-identical
    /// output for structurally equal values.
    pub fn canonical() -> Self {
        SerializeOptions {
            indent: None,
            ascii_only: true,
            sort_keys: true,
        }
    }
}

/// Serializes compactly.
pub fn to_string(v: &Value) -> String {
    write_value(v, SerializeOptions::compact())
}

/// Serializes with two-space indentation.
pub fn to_string_pretty(v: &Value) -> String {
    write_value(v, SerializeOptions::pretty())
}

/// Serializes with explicit options.
pub fn write_value(v: &Value, opts: SerializeOptions) -> String {
    let mut out = String::new();
    write_inner(v, &opts, 0, &mut out);
    out
}

/// Appends the compact rendering of `v` to an existing buffer (no
/// intermediate allocation — the building block for template-stitching
/// encoders).
pub fn append_compact(out: &mut String, v: &Value) {
    write_inner(v, &SerializeOptions::compact(), 0, out);
}

/// Serializes straight into an [`std::io::Write`] sink (buffers one value
/// at a time; use for NDJSON streams and files without building one big
/// `String`).
pub fn write_value_to<W: std::io::Write>(
    w: &mut W,
    v: &Value,
    opts: SerializeOptions,
) -> std::io::Result<()> {
    // Rendering is infallible; only the sink can fail.
    w.write_all(write_value(v, opts).as_bytes())
}

/// Writes a collection as NDJSON into a sink.
pub fn write_ndjson_to<W: std::io::Write>(w: &mut W, docs: &[Value]) -> std::io::Result<()> {
    for doc in docs {
        write_value_to(w, doc, SerializeOptions::compact())?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

fn write_inner(v: &Value, opts: &SerializeOptions, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(n, out),
        Value::Str(s) => write_string(s, opts, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(opts, level + 1, out);
                write_inner(item, opts, level + 1, out);
            }
            newline_indent(opts, level, out);
            out.push(']');
        }
        Value::Obj(obj) => {
            if obj.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            let write_entry = |i: usize, k: &str, v: &Value, out: &mut String| {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(opts, level + 1, out);
                write_string(k, opts, out);
                out.push(':');
                if opts.indent.is_some() {
                    out.push(' ');
                }
                write_inner(v, opts, level + 1, out);
            };
            if opts.sort_keys {
                for (i, (k, v)) in obj.sorted_entries().into_iter().enumerate() {
                    write_entry(i, k, v, out);
                }
            } else {
                for (i, (k, v)) in obj.iter().enumerate() {
                    write_entry(i, k, v, out);
                }
            }
            newline_indent(opts, level, out);
            out.push('}');
        }
    }
}

fn newline_indent(opts: &SerializeOptions, level: usize, out: &mut String) {
    if let Some(width) = opts.indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
}

fn write_number(n: &Number, out: &mut String) {
    out.push_str(&n.to_string());
}

fn write_string(s: &str, opts: &SerializeOptions, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                push_u_escape(c as u32, out);
            }
            c if opts.ascii_only && !c.is_ascii() => {
                let code = c as u32;
                if code <= 0xFFFF {
                    push_u_escape(code, out);
                } else {
                    // Encode as a UTF-16 surrogate pair.
                    let v = code - 0x10000;
                    push_u_escape(0xD800 + (v >> 10), out);
                    push_u_escape(0xDC00 + (v & 0x3FF), out);
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_u_escape(code: u32, out: &mut String) {
    out.push_str(&format!("\\u{code:04x}"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use jsonx_data::json;

    #[test]
    fn compact_matches_data_crate_rendering() {
        let v = json!({"a": [1, null], "b": "x"});
        assert_eq!(to_string(&v), v.to_json_string());
    }

    #[test]
    fn pretty_layout() {
        let v = json!({"a": [1, 2]});
        assert_eq!(to_string_pretty(&v), "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn empty_containers_stay_inline() {
        let v = json!({"a": [], "b": {}});
        assert_eq!(to_string_pretty(&v), "{\n  \"a\": [],\n  \"b\": {}\n}");
    }

    #[test]
    fn canonical_is_order_insensitive() {
        let a = parse(r#"{"x":1,"y":2}"#).unwrap();
        let b = parse(r#"{"y":2,"x":1}"#).unwrap();
        let opts = SerializeOptions::canonical();
        assert_eq!(write_value(&a, opts), write_value(&b, opts));
    }

    #[test]
    fn ascii_only_escapes_non_ascii() {
        let v = json!("é😀");
        let opts = SerializeOptions {
            ascii_only: true,
            ..Default::default()
        };
        assert_eq!(write_value(&v, opts), "\"\\u00e9\\ud83d\\ude00\"");
        // And the escaped form parses back to the original.
        assert_eq!(parse(&write_value(&v, opts)).unwrap(), v);
    }

    #[test]
    fn io_writer_paths() {
        let v = json!({"a": [1, 2]});
        let mut buf: Vec<u8> = Vec::new();
        write_value_to(&mut buf, &v, SerializeOptions::compact()).unwrap();
        assert_eq!(buf, to_string(&v).as_bytes());
        let mut buf = Vec::new();
        write_ndjson_to(&mut buf, &[v.clone(), json!(null)]).unwrap();
        assert_eq!(buf, b"{\"a\":[1,2]}\nnull\n");
    }

    #[test]
    fn round_trip_through_parser() {
        let text = r#"{"nested":{"deep":[[1.5,-2,"s\n"],{"k":null}]},"t":true}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
        assert_eq!(parse(&to_string_pretty(&v)).unwrap(), v);
    }
}
