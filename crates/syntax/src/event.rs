//! Streaming (pull) event parser.
//!
//! The schema-inference tools the tutorial surveys (mongodb-schema, the
//! distributed map/reduce inferrers) process collections too large to hold
//! as DOMs. [`RawEventParser`] yields a well-formed event stream without
//! building a tree: object/array boundaries, keys, and scalar values, with
//! the same validation guarantees as the DOM parser. Its events borrow
//! string data straight from the input whenever the literal is escape-free,
//! so the common machine-generated document produces **zero per-token heap
//! allocations**. [`EventParser`] is a thin adapter yielding the owned
//! [`Event`] form for callers that need `'static` data.

use crate::error::{ParseError, ParseErrorKind, RecordLimit};
use crate::lexer::{Lexer, RawToken};
use crate::limits::ParseLimits;
use jsonx_data::Number;
use std::borrow::Cow;

/// One event of the streaming parse, borrowing from the input.
///
/// `Key`/`Str` payloads are `Cow::Borrowed` when the literal contains no
/// escapes and `Cow::Owned` only when unescaping forced a buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum RawEvent<'a> {
    StartObject,
    EndObject,
    StartArray,
    EndArray,
    /// An object member key (always followed by that member's value events).
    Key(Cow<'a, str>),
    Null,
    Bool(bool),
    Num(Number),
    Str(Cow<'a, str>),
}

impl<'a> RawEvent<'a> {
    /// Converts to the owned [`Event`], copying borrowed string data.
    pub fn into_owned(self) -> Event {
        match self {
            RawEvent::StartObject => Event::StartObject,
            RawEvent::EndObject => Event::EndObject,
            RawEvent::StartArray => Event::StartArray,
            RawEvent::EndArray => Event::EndArray,
            RawEvent::Key(k) => Event::Key(k.into_owned()),
            RawEvent::Null => Event::Null,
            RawEvent::Bool(b) => Event::Bool(b),
            RawEvent::Num(n) => Event::Num(n),
            RawEvent::Str(s) => Event::Str(s.into_owned()),
        }
    }
}

/// One event of the streaming parse, with owned string data.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    StartObject,
    EndObject,
    StartArray,
    EndArray,
    /// An object member key (always followed by that member's value events).
    Key(String),
    Null,
    Bool(bool),
    Num(Number),
    Str(String),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Frame {
    /// Inside an array; `expect_comma` when an element has been produced.
    Array { expect_comma: bool },
    /// Inside an object; `expect_comma` when a member has been produced.
    Object { expect_comma: bool },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    /// Expecting the top-level value.
    Start,
    /// Expecting any value (after `[`, `,` in array, or `:`).
    Value,
    /// Between events: consult the stack.
    Next,
    /// Completed the top-level value.
    Done,
}

/// A pull parser with borrowed events: call
/// [`RawEventParser::next_event`] until it returns `Ok(None)`.
pub struct RawEventParser<'a> {
    lexer: Lexer<'a>,
    stack: Vec<Frame>,
    state: State,
    limits: ParseLimits,
    /// Whether the first-event input-size check has run.
    started: bool,
}

impl<'a> RawEventParser<'a> {
    /// Creates an event parser over `input` with [`ParseLimits::default`].
    pub fn new(input: &'a [u8]) -> Self {
        RawEventParser {
            lexer: Lexer::new(input),
            stack: Vec::new(),
            state: State::Start,
            limits: ParseLimits::default(),
            started: false,
        }
    }

    /// Replaces all resource limits.
    pub fn with_limits(mut self, limits: ParseLimits) -> Self {
        self.limits = limits;
        self.lexer.set_max_string_bytes(limits.max_string_bytes);
        self
    }

    /// Overrides the nesting limit.
    pub fn with_max_depth(self, max_depth: usize) -> Self {
        let limits = self.limits.with_max_depth(max_depth);
        self.with_limits(limits)
    }

    /// Current nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::at(kind, self.lexer.input(), self.lexer.offset())
    }

    /// Pulls the next event; `Ok(None)` signals a complete, valid document.
    pub fn next_event(&mut self) -> Result<Option<RawEvent<'a>>, ParseError> {
        if !self.started {
            self.started = true;
            if let Some(limit) = self.limits.max_input_bytes {
                if self.lexer.input().len() > limit {
                    // Reject before touching the body; the offset marks the
                    // first byte past the allowance.
                    return Err(ParseError::at(
                        ParseErrorKind::LimitExceeded(RecordLimit::InputBytes),
                        self.lexer.input(),
                        limit,
                    ));
                }
            }
        }
        loop {
            match self.state {
                State::Done => {
                    self.lexer.skip_ws();
                    let tok = self.lexer.next_token_raw()?;
                    return if tok == RawToken::Eof {
                        Ok(None)
                    } else {
                        Err(self.err(ParseErrorKind::TrailingData))
                    };
                }
                State::Start | State::Value => {
                    let tok = self.lexer.next_token_raw()?;
                    return self.value_event(tok).map(Some);
                }
                State::Next => {
                    if let Some(ev) = self.advance()? {
                        return Ok(Some(ev));
                    }
                    // `advance` changed state without an event; loop.
                }
            }
        }
    }

    /// Handles a token in value position.
    fn value_event(&mut self, tok: RawToken<'a>) -> Result<RawEvent<'a>, ParseError> {
        let ev = match tok {
            RawToken::Null => RawEvent::Null,
            RawToken::True => RawEvent::Bool(true),
            RawToken::False => RawEvent::Bool(false),
            RawToken::Num(n) => RawEvent::Num(n),
            RawToken::Str(s) => RawEvent::Str(s),
            RawToken::LBracket => {
                self.push(Frame::Array {
                    expect_comma: false,
                })?;
                self.state = State::Next;
                return Ok(RawEvent::StartArray);
            }
            RawToken::LBrace => {
                self.push(Frame::Object {
                    expect_comma: false,
                })?;
                self.state = State::Next;
                return Ok(RawEvent::StartObject);
            }
            RawToken::RBracket if self.in_fresh_array() => {
                self.stack.pop();
                self.after_close();
                return Ok(RawEvent::EndArray);
            }
            RawToken::Eof => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            other => return Err(self.err(ParseErrorKind::UnexpectedToken(other.name()))),
        };
        self.after_scalar();
        Ok(ev)
    }

    fn in_fresh_array(&self) -> bool {
        matches!(
            self.stack.last(),
            Some(Frame::Array {
                expect_comma: false
            })
        ) && self.state == State::Value
    }

    fn push(&mut self, frame: Frame) -> Result<(), ParseError> {
        if self.stack.len() >= self.limits.max_depth {
            return Err(self.err(ParseErrorKind::TooDeep));
        }
        self.stack.push(frame);
        Ok(())
    }

    fn after_scalar(&mut self) {
        if self.stack.is_empty() {
            self.state = State::Done;
        } else {
            self.mark_member_done();
            self.state = State::Next;
        }
    }

    fn after_close(&mut self) {
        if self.stack.is_empty() {
            self.state = State::Done;
        } else {
            self.mark_member_done();
            self.state = State::Next;
        }
    }

    fn mark_member_done(&mut self) {
        match self.stack.last_mut() {
            Some(Frame::Array { expect_comma }) | Some(Frame::Object { expect_comma }) => {
                *expect_comma = true;
            }
            None => {}
        }
    }

    /// Consumes separators/closers between members. Returns an event only
    /// for container closes.
    fn advance(&mut self) -> Result<Option<RawEvent<'a>>, ParseError> {
        let frame = *self
            .stack
            .last()
            .expect("advance only runs inside containers");
        let tok = self.lexer.next_token_raw()?;
        match frame {
            Frame::Array { expect_comma } => match tok {
                RawToken::RBracket => {
                    self.stack.pop();
                    self.after_close();
                    Ok(Some(RawEvent::EndArray))
                }
                RawToken::Comma if expect_comma => {
                    self.state = State::Value;
                    Ok(None)
                }
                _ if !expect_comma => {
                    // First element: the token *is* the value.
                    self.state = State::Value;
                    self.value_event(tok).map(Some)
                }
                RawToken::Eof => Err(self.err(ParseErrorKind::UnexpectedEof)),
                other => Err(self.err(ParseErrorKind::UnexpectedToken(other.name()))),
            },
            Frame::Object { expect_comma } => {
                let key_tok = match tok {
                    RawToken::RBrace => {
                        self.stack.pop();
                        self.after_close();
                        return Ok(Some(RawEvent::EndObject));
                    }
                    RawToken::Comma if expect_comma => self.lexer.next_token_raw()?,
                    t if !expect_comma => t,
                    RawToken::Eof => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                    other => return Err(self.err(ParseErrorKind::UnexpectedToken(other.name()))),
                };
                let key = match key_tok {
                    RawToken::Str(s) => s,
                    RawToken::Eof => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                    other => return Err(self.err(ParseErrorKind::UnexpectedToken(other.name()))),
                };
                match self.lexer.next_token_raw()? {
                    RawToken::Colon => {}
                    RawToken::Eof => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                    other => return Err(self.err(ParseErrorKind::UnexpectedToken(other.name()))),
                }
                self.state = State::Value;
                Ok(Some(RawEvent::Key(key)))
            }
        }
    }

    /// Drains the remaining events, checking well-formedness.
    pub fn finish(mut self) -> Result<(), ParseError> {
        while self.next_event()?.is_some() {}
        Ok(())
    }
}

impl<'a> Iterator for RawEventParser<'a> {
    type Item = Result<RawEvent<'a>, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_event() {
            Ok(Some(ev)) => Some(Ok(ev)),
            Ok(None) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

/// A pull parser yielding owned [`Event`]s: a thin adapter over
/// [`RawEventParser`] for callers that keep events beyond the input's
/// lifetime.
pub struct EventParser<'a> {
    inner: RawEventParser<'a>,
}

impl<'a> EventParser<'a> {
    /// Creates an event parser over `input`.
    pub fn new(input: &'a [u8]) -> Self {
        EventParser {
            inner: RawEventParser::new(input),
        }
    }

    /// Replaces all resource limits.
    pub fn with_limits(mut self, limits: ParseLimits) -> Self {
        self.inner = self.inner.with_limits(limits);
        self
    }

    /// Overrides the nesting limit.
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.inner = self.inner.with_max_depth(max_depth);
        self
    }

    /// Current nesting depth.
    pub fn depth(&self) -> usize {
        self.inner.depth()
    }

    /// Pulls the next event; `Ok(None)` signals a complete, valid document.
    pub fn next_event(&mut self) -> Result<Option<Event>, ParseError> {
        Ok(self.inner.next_event()?.map(RawEvent::into_owned))
    }

    /// Drains the remaining events, checking well-formedness.
    pub fn finish(self) -> Result<(), ParseError> {
        self.inner.finish()
    }
}

impl<'a> Iterator for EventParser<'a> {
    type Item = Result<Event, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_event() {
            Ok(Some(ev)) => Some(Ok(ev)),
            Ok(None) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(s: &str) -> Result<Vec<Event>, ParseError> {
        EventParser::new(s.as_bytes()).collect()
    }

    #[test]
    fn scalar_document() {
        assert_eq!(events("42").unwrap(), vec![Event::Num(Number::Int(42))]);
    }

    #[test]
    fn object_stream() {
        use Event::*;
        assert_eq!(
            events(r#"{"a": 1, "b": [true, null]}"#).unwrap(),
            vec![
                StartObject,
                Key("a".into()),
                Num(Number::Int(1)),
                Key("b".into()),
                StartArray,
                Bool(true),
                Null,
                EndArray,
                EndObject
            ]
        );
    }

    #[test]
    fn empty_containers() {
        use Event::*;
        assert_eq!(events("[]").unwrap(), vec![StartArray, EndArray]);
        assert_eq!(events("{}").unwrap(), vec![StartObject, EndObject]);
        assert_eq!(
            events("[{}]").unwrap(),
            vec![StartArray, StartObject, EndObject, EndArray]
        );
    }

    #[test]
    fn nested_arrays() {
        use Event::*;
        assert_eq!(
            events("[[1],[2]]").unwrap(),
            vec![
                StartArray,
                StartArray,
                Num(Number::Int(1)),
                EndArray,
                StartArray,
                Num(Number::Int(2)),
                EndArray,
                EndArray
            ]
        );
    }

    #[test]
    fn malformed_streams_error() {
        for bad in ["[1,", "{\"a\"}", "[1,]", "{", "{\"a\":1,}", "1 2", "[}"] {
            assert!(events(bad).is_err(), "expected {bad:?} to fail");
        }
    }

    #[test]
    fn raw_events_borrow_escape_free_strings() {
        let doc = r#"{"plain": "value", "esc\n": "a\tb"}"#;
        let raw: Vec<RawEvent<'_>> = RawEventParser::new(doc.as_bytes())
            .collect::<Result<_, _>>()
            .unwrap();
        let cows: Vec<&Cow<'_, str>> = raw
            .iter()
            .filter_map(|ev| match ev {
                RawEvent::Key(c) | RawEvent::Str(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(cows.len(), 4);
        assert!(matches!(cows[0], Cow::Borrowed("plain")));
        assert!(matches!(cows[1], Cow::Borrowed("value")));
        assert!(matches!(cows[2], Cow::Owned(_)));
        assert!(matches!(cows[3], Cow::Owned(_)));
    }

    #[test]
    fn raw_and_owned_event_streams_agree() {
        let doc = r#"{"users":[{"id":1,"tags":["aA"]},{"id":2}],"total":2}"#;
        let raw: Vec<Event> = RawEventParser::new(doc.as_bytes())
            .map(|r| r.map(RawEvent::into_owned))
            .collect::<Result<_, _>>()
            .unwrap();
        let owned: Vec<Event> = events(doc).unwrap();
        assert_eq!(raw, owned);
    }

    #[test]
    fn agrees_with_dom_parser() {
        let doc = r#"{"users":[{"id":1,"tags":["a"]},{"id":2,"tags":[]}],"total":2}"#;
        // Rebuild a value from events and compare with the DOM parse.
        let dom = crate::parser::parse(doc).unwrap();
        let mut stack: Vec<jsonx_data::Value> = Vec::new();
        let mut keys: Vec<Option<String>> = Vec::new();
        let mut pending_key: Option<String> = None;
        let mut result = None;
        for ev in events(doc).unwrap() {
            use jsonx_data::{Object, Value};
            let done = |v: Value,
                        stack: &mut Vec<Value>,
                        pending_key: &mut Option<String>,
                        result: &mut Option<Value>| {
                if let Some(top) = stack.last_mut() {
                    match top {
                        Value::Arr(items) => items.push(v),
                        Value::Obj(o) => {
                            o.insert(pending_key.take().expect("key before value"), v);
                        }
                        _ => unreachable!(),
                    }
                } else {
                    *result = Some(v);
                }
            };
            match ev {
                Event::StartObject => {
                    stack.push(Value::Obj(Object::new()));
                    keys.push(pending_key.take());
                }
                Event::StartArray => {
                    stack.push(Value::Arr(vec![]));
                    keys.push(pending_key.take());
                }
                Event::EndObject | Event::EndArray => {
                    let v = stack.pop().unwrap();
                    pending_key = keys.pop().unwrap();
                    done(v, &mut stack, &mut pending_key, &mut result);
                }
                Event::Key(k) => pending_key = Some(k),
                Event::Null => done(Value::Null, &mut stack, &mut pending_key, &mut result),
                Event::Bool(b) => done(Value::Bool(b), &mut stack, &mut pending_key, &mut result),
                Event::Num(n) => done(Value::Num(n), &mut stack, &mut pending_key, &mut result),
                Event::Str(s) => done(Value::Str(s), &mut stack, &mut pending_key, &mut result),
            }
        }
        assert_eq!(result.unwrap(), dom);
    }

    #[test]
    fn depth_limit() {
        let deep = "[".repeat(10) + &"]".repeat(10);
        let p = EventParser::new(deep.as_bytes()).with_max_depth(5);
        assert!(p.collect::<Result<Vec<_>, _>>().is_err());
    }

    #[test]
    fn input_byte_limit_rejects_before_parsing() {
        let doc = r#"{"a": [1, 2, 3]}"#;
        let mut p = RawEventParser::new(doc.as_bytes())
            .with_limits(ParseLimits::new().with_max_input_bytes(8));
        let err = p.next_event().unwrap_err();
        assert_eq!(
            err.kind,
            ParseErrorKind::LimitExceeded(RecordLimit::InputBytes)
        );
        assert_eq!(err.offset, 8);
        // At the limit, parsing proceeds normally.
        let p = RawEventParser::new(doc.as_bytes())
            .with_limits(ParseLimits::new().with_max_input_bytes(doc.len()));
        assert!(p.collect::<Result<Vec<_>, _>>().is_ok());
    }

    #[test]
    fn string_byte_limit_threads_to_lexer() {
        let doc = r#"{"k": "0123456789"}"#;
        let p = RawEventParser::new(doc.as_bytes())
            .with_limits(ParseLimits::new().with_max_string_bytes(4));
        let err = p.collect::<Result<Vec<_>, _>>().unwrap_err();
        assert_eq!(
            err.kind,
            ParseErrorKind::LimitExceeded(RecordLimit::StringBytes)
        );
    }
}
