//! Word-parallel structural bitmaps and the projecting record scanner —
//! the fast parse path of the workspace (Mison, Li et al. PVLDB 2017;
//! Fad.js, Bonetta & Brantner PVLDB 2017).
//!
//! Two layers live here:
//!
//! 1. [`Bitmaps`] — SWAR structural bitmaps, promoted out of
//!    `jsonx-mison` so the streaming pipeline can use them without a
//!    crate cycle. Each `u64` word covers 64 input bytes, bit *i* of word
//!    *w* describing byte `w*64 + i`: per-character bitmaps by 64-lane
//!    comparison, unescaped-quote detection via backslash-run parity, the
//!    string mask via a prefix-XOR within each word (the software
//!    equivalent of the paper's carry-less multiplication by all-ones)
//!    with a carry bit propagated across words, and structural bitmaps
//!    masked to positions *outside* string literals.
//! 2. [`StructuralScanner`] — a validating skip-scanner over one NDJSON
//!    record. It walks the merged structural bitmap (quotes, colons,
//!    commas, braces, brackets) instead of the bytes, jumps over string
//!    literals quote-to-quote, and extracts the byte spans of the
//!    root-level fields named by a [`FieldSet`] (projection pushdown: the
//!    fields a compiled schema or a shred plan actually consumes).
//!
//! ## The fallback contract
//!
//! The scanner is *conservative*: [`StructuralScanner::scan`] returns
//! `false` — telling the caller to run the full parser — for anything it
//! cannot prove cheap **and** equivalent: malformed structure, `\uXXXX`
//! escapes, exponent/huge numbers (whose overflow rules the lexer owns),
//! nesting past the depth limit, escaped or (when asked) dotted keys at
//! the root. A `true` return guarantees the record parses under
//! [`parse_with`](crate::parse_with) with the same limits, and that the
//! reported spans are exactly the member values the DOM parser would
//! build — so a consumer that only reads the projected fields sees the
//! same bytes either way, and every rejected record is re-parsed by the
//! slow path whose error (kind and offset) is authoritative. The scanner
//! never accepts a record the full parser rejects; the property tests in
//! `tests/parsing_fastpath.rs` pin both directions.

use std::ops::Range;

/// Structural bitmaps for one JSON document.
#[derive(Debug, Clone, Default)]
pub struct Bitmaps {
    /// Input length in bytes.
    pub len: usize,
    /// Unescaped quotes.
    pub quote: Vec<u64>,
    /// `:` outside strings.
    pub colon: Vec<u64>,
    /// `,` outside strings.
    pub comma: Vec<u64>,
    /// `{` outside strings.
    pub lbrace: Vec<u64>,
    /// `}` outside strings.
    pub rbrace: Vec<u64>,
    /// `[` outside strings.
    pub lbracket: Vec<u64>,
    /// `]` outside strings.
    pub rbracket: Vec<u64>,
    /// 1 = byte is inside a string literal (between quotes).
    pub string_mask: Vec<u64>,
    /// Every backslash, escaped or not, inside strings or out.
    pub backslash: Vec<u64>,
    /// Control bytes (`< 0x20`), including whitespace like `\t`.
    pub control: Vec<u64>,
}

/// Prefix XOR within a word: bit i of the result is the XOR of bits 0..=i
/// of the input — the software stand-in for `PCLMULQDQ(m, ~0)`.
#[inline]
fn prefix_xor(m: u64) -> u64 {
    let mut x = m;
    x ^= x << 1;
    x ^= x << 2;
    x ^= x << 4;
    x ^= x << 8;
    x ^= x << 16;
    x ^= x << 32;
    x
}

/// SWAR byte-equality: returns a mask with `0x80` at every byte of
/// `word` equal to `byte` (the classic carry-borrow trick — 8 lanes per
/// operation, the portable stand-in for `_mm256_cmpeq_epi8`).
#[inline]
fn eq_mask(word: u64, byte: u8) -> u64 {
    const LOW: u64 = 0x0101_0101_0101_0101;
    const LOW7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
    const HIGH: u64 = 0x8080_8080_8080_8080;
    // Exact zero-byte detection: per-byte `(b & 0x7f) + 0x7f` sets bit 7
    // iff the low bits are non-zero and never carries across bytes.
    let x = word ^ (LOW * u64::from(byte));
    let t = (x & LOW7) + LOW7;
    !(t | x) & HIGH
}

/// Compresses an `eq_mask` result into 8 low bits, byte *i* → bit *i*
/// (the portable `movemask`).
#[inline]
fn movemask(m: u64) -> u64 {
    (m >> 7).wrapping_mul(0x0102_0408_1020_4080) >> 56
}

/// Builds one character's bitmap word from a 64-byte chunk.
#[inline]
fn chunk_mask(chunk: &[u8; 64], byte: u8) -> u64 {
    let mut out = 0u64;
    for (k, sub) in chunk.chunks_exact(8).enumerate() {
        let w = u64::from_le_bytes(sub.try_into().expect("8-byte subword"));
        out |= movemask(eq_mask(w, byte)) << (k * 8);
    }
    out
}

/// Bitmap word of control bytes (`< 0x20`): a byte is a control byte iff
/// its top three bits are clear, i.e. `b & 0xE0 == 0`.
#[inline]
fn chunk_control(chunk: &[u8; 64]) -> u64 {
    const TOP3: u64 = 0xE0E0_E0E0_E0E0_E0E0;
    let mut out = 0u64;
    for (k, sub) in chunk.chunks_exact(8).enumerate() {
        let w = u64::from_le_bytes(sub.try_into().expect("8-byte subword"));
        out |= movemask(eq_mask(w & TOP3, 0)) << (k * 8);
    }
    out
}

/// Builds all bitmaps for `input` using 64-lane word-parallel scanning.
///
/// The fast path assumes no backslashes in a chunk (overwhelmingly the
/// common case); chunks containing backslashes fall back to the scalar
/// escape-parity scan for their quote bits. [`build_scalar`] is the
/// byte-at-a-time reference implementation the property tests compare
/// against.
pub fn build(input: &[u8]) -> Bitmaps {
    let mut bits = Bitmaps::default();
    bits.build_from(input);
    bits
}

/// Scalar quote-bit extraction for one chunk, tracking backslash-run
/// parity across chunk boundaries.
fn quote_bits_scalar(chunk: &[u8; 64], carry_run_odd: &mut bool) -> u64 {
    let mut q = 0u64;
    let mut run_odd = *carry_run_odd;
    for (i, &b) in chunk.iter().enumerate() {
        match b {
            b'\\' => {
                run_odd = !run_odd;
                continue;
            }
            b'"' if !run_odd => q |= 1 << i,
            _ => {}
        }
        run_odd = false;
    }
    *carry_run_odd = run_odd;
    q
}

/// Byte-at-a-time reference builder (the oracle for the word-parallel
/// fast path; also what the parsing ablation benchmarks against).
pub fn build_scalar(input: &[u8]) -> Bitmaps {
    let words = input.len().div_ceil(64);
    let mut bits = Bitmaps::default();
    bits.reset(input.len(), words);
    let mut backslash_run = 0usize;
    for (i, &b) in input.iter().enumerate() {
        let (w, bit) = (i / 64, 1u64 << (i % 64));
        if b < 0x20 {
            bits.control[w] |= bit;
        }
        match b {
            b'\\' => {
                bits.backslash[w] |= bit;
                backslash_run += 1;
                continue;
            }
            b'"' if backslash_run.is_multiple_of(2) => bits.quote[w] |= bit,
            b':' => bits.colon[w] |= bit,
            b',' => bits.comma[w] |= bit,
            b'{' => bits.lbrace[w] |= bit,
            b'}' => bits.rbrace[w] |= bit,
            b'[' => bits.lbracket[w] |= bit,
            b']' => bits.rbracket[w] |= bit,
            _ => {}
        }
        backslash_run = 0;
    }
    bits.finish_masks(words);
    bits
}

impl Bitmaps {
    /// Clears and resizes every bitmap for a `len`-byte input.
    fn reset(&mut self, len: usize, words: usize) {
        self.len = len;
        for v in [
            &mut self.quote,
            &mut self.colon,
            &mut self.comma,
            &mut self.lbrace,
            &mut self.rbrace,
            &mut self.lbracket,
            &mut self.rbracket,
            &mut self.string_mask,
            &mut self.backslash,
            &mut self.control,
        ] {
            v.clear();
            v.resize(words, 0);
        }
    }

    /// String mask from the quote bitmap, then masks structural characters
    /// that sit inside strings.
    fn finish_masks(&mut self, words: usize) {
        // String mask: prefix-XOR per word with cross-word carry. The
        // opening quote's own bit is set in the mask while the closing
        // one is not; neither quote is a structural character, so the
        // off-by-one at the quotes themselves is harmless.
        let mut carry = 0u64; // all-ones when a string spans into this word
        for w in 0..words {
            let m = prefix_xor(self.quote[w]) ^ carry;
            self.string_mask[w] = m;
            // Carry flips when the word holds an odd number of quotes.
            if self.quote[w].count_ones() % 2 == 1 {
                carry = !carry;
            }
        }
        for w in 0..words {
            let outside = !self.string_mask[w];
            self.colon[w] &= outside;
            self.comma[w] &= outside;
            self.lbrace[w] &= outside;
            self.rbrace[w] &= outside;
            self.lbracket[w] &= outside;
            self.rbracket[w] &= outside;
        }
    }

    /// Rebuilds the bitmaps in place for a new input, reusing the word
    /// buffers — the per-record entry point of [`StructuralScanner`].
    pub fn build_from(&mut self, input: &[u8]) {
        let words = input.len().div_ceil(64);
        self.reset(input.len(), words);

        // Parity of the backslash run carried into the current chunk.
        let mut carry_run_odd = false;
        let mut w = 0usize;
        let mut chunks = input.chunks_exact(64);
        for chunk in &mut chunks {
            let chunk: &[u8; 64] = chunk.try_into().expect("exact chunk");
            self.colon[w] = chunk_mask(chunk, b':');
            self.comma[w] = chunk_mask(chunk, b',');
            self.lbrace[w] = chunk_mask(chunk, b'{');
            self.rbrace[w] = chunk_mask(chunk, b'}');
            self.lbracket[w] = chunk_mask(chunk, b'[');
            self.rbracket[w] = chunk_mask(chunk, b']');
            self.control[w] = chunk_control(chunk);
            let bs = chunk_mask(chunk, b'\\');
            self.backslash[w] = bs;
            let mut q = chunk_mask(chunk, b'"');
            if bs == 0 {
                // Fast path: only the first byte can be escaped (by a run
                // ending in the previous chunk).
                if carry_run_odd {
                    q &= !1u64;
                }
                carry_run_odd = false;
            } else {
                // Slow path: scalar escape-parity over this chunk.
                q = quote_bits_scalar(chunk, &mut carry_run_odd);
            }
            self.quote[w] = q;
            w += 1;
        }
        // Tail (< 64 bytes): scalar.
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let base = w * 64;
            let mut run_odd = carry_run_odd;
            for (i, &b) in rem.iter().enumerate() {
                let bit = 1u64 << ((base + i) % 64);
                if b < 0x20 {
                    self.control[w] |= bit;
                }
                match b {
                    b'\\' => {
                        self.backslash[w] |= bit;
                        run_odd = !run_odd;
                        continue;
                    }
                    b'"' if !run_odd => self.quote[w] |= bit,
                    b':' => self.colon[w] |= bit,
                    b',' => self.comma[w] |= bit,
                    b'{' => self.lbrace[w] |= bit,
                    b'}' => self.rbrace[w] |= bit,
                    b'[' => self.lbracket[w] |= bit,
                    b']' => self.rbracket[w] |= bit,
                    _ => {}
                }
                run_odd = false;
            }
        }
        self.finish_masks(words);
    }

    /// Iterates the set-bit positions of one bitmap.
    pub fn positions(bitmap: &[u64]) -> impl Iterator<Item = usize> + '_ {
        bitmap
            .iter()
            .enumerate()
            .flat_map(|(w, &word)| BitIter { word }.map(move |bit| w * 64 + bit))
    }

    /// True when the byte at `pos` lies inside a string literal.
    pub fn in_string(&self, pos: usize) -> bool {
        self.string_mask
            .get(pos / 64)
            .is_some_and(|w| w & (1 << (pos % 64)) != 0)
    }

    /// The OR of every structural bitmap for one word — quotes, colons,
    /// commas, braces, brackets — the merged stream the scanner walks.
    #[inline]
    fn structural_word(&self, w: usize) -> u64 {
        self.quote[w]
            | self.colon[w]
            | self.comma[w]
            | self.lbrace[w]
            | self.rbrace[w]
            | self.lbracket[w]
            | self.rbracket[w]
    }

    #[inline]
    fn bit_at(words: &[u64], pos: usize) -> bool {
        words[pos / 64] & (1 << (pos % 64)) != 0
    }

    /// Whether any bit is set in `range` of one bitmap.
    fn any_in_range(words: &[u64], range: Range<usize>) -> bool {
        if range.start >= range.end {
            return false;
        }
        let (fw, lw) = (range.start / 64, (range.end - 1) / 64);
        for (w, &bits) in words.iter().enumerate().take(lw + 1).skip(fw) {
            let mut word = bits;
            if w == fw {
                word &= !0u64 << (range.start % 64);
            }
            if w == lw {
                let top = (range.end - 1) % 64;
                word &= if top == 63 {
                    !0
                } else {
                    (1u64 << (top + 1)) - 1
                };
            }
            if word != 0 {
                return true;
            }
        }
        false
    }
}

struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(bit)
    }
}

// ---------------------------------------------------------------------------
// Projection: the field set a consumer actually reads
// ---------------------------------------------------------------------------

/// The root-level field names a consumer (compiled schema, shred plan)
/// actually reads — the projection the scanner pushes down. Sorted for
/// binary search; keys compare as raw UTF-8 bytes.
#[derive(Debug, Clone, Default)]
pub struct FieldSet {
    names: Vec<Box<[u8]>>,
}

impl FieldSet {
    /// Builds a set from field names, deduplicating.
    pub fn new<I, S>(names: I) -> FieldSet
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut names: Vec<Box<[u8]>> = names
            .into_iter()
            .map(|n| n.into().into_bytes().into_boxed_slice())
            .collect();
        names.sort();
        names.dedup();
        FieldSet { names }
    }

    /// Whether `key` (raw, escape-free bytes) names a projected field.
    #[inline]
    pub fn contains(&self, key: &[u8]) -> bool {
        self.names.binary_search_by(|n| n.as_ref().cmp(key)).is_ok()
    }

    /// Number of projected fields.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no field is projected (every root field is skipped).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Knobs for one [`StructuralScanner::scan`] call.
#[derive(Debug, Clone, Copy)]
pub struct ScanOptions {
    /// Nesting-depth cap, matching [`ParserOptions`] `max_depth`
    /// (root container = depth 1) — past it the scanner rejects, and the
    /// full parser reports the authoritative `TooDeep`.
    ///
    /// [`ParserOptions`]: crate::ParserOptions
    pub max_depth: usize,
    /// Reject records whose *skipped* root keys contain a `.` — required
    /// when the consumer addresses fields by dotted path (the shred
    /// plan), where a literal dotted root key would alias a nested
    /// column.
    pub reject_dotted_skipped: bool,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            max_depth: crate::DEFAULT_MAX_DEPTH,
            reject_dotted_skipped: false,
        }
    }
}

/// One projected root field: the byte span of its (escape-free) key and
/// the tight byte span of its value, in document order. Duplicate keys
/// yield one entry per occurrence, so a last-wins consumer reproduces the
/// DOM parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjectedField {
    /// Key content (between the quotes).
    pub key: Range<usize>,
    /// Value span, tight (no surrounding whitespace).
    pub value: Range<usize>,
}

/// Remembered shape of one root-field ordinal — the Fad.js speculation:
/// stable collections repeat field order, so the ordinal's key usually
/// matches and the set lookup is replaced by one memcmp. A miss simply
/// re-resolves and updates the hint (verified fallback, never trusted
/// blindly).
#[derive(Debug, Default, Clone)]
struct SpecHint {
    key: Vec<u8>,
    projected: bool,
}

/// Cap on remembered ordinals, bounding speculation memory on records
/// with thousands of fields.
const SPEC_ORDINALS: usize = 256;

/// A reusable validating skip-scanner over single NDJSON records.
///
/// One scanner per worker: the bitmap buffers, container stack, field
/// output, and speculation hints persist across
/// [`scan`](StructuralScanner::scan) calls, so steady-state scanning of
/// uniform records performs no allocation.
#[derive(Debug, Default)]
pub struct StructuralScanner {
    bits: Bitmaps,
    stack: Vec<u8>,
    fields: Vec<ProjectedField>,
    spec: Vec<SpecHint>,
    /// Identity of the [`FieldSet`] the hints were computed against
    /// (buffer address + length); hints are dropped when it changes.
    spec_set: (usize, usize),
}

/// What the walk expects at the next structural position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// A value must start (after `:` or an array comma).
    Value,
    /// A value or the `]` of an empty array.
    ValueOrClose,
    /// A key or the `}` of an empty object.
    KeyOrClose,
    /// A key must start (after an object comma).
    Key,
    /// The `:` between key and value.
    Colon,
    /// `,`, or the close of the current container.
    CommaOrClose,
    /// Root value complete; only whitespace may remain.
    End,
}

/// Monotone cursor over the merged structural bitmap.
struct Structurals<'a> {
    bits: &'a Bitmaps,
    words: usize,
    w: usize,
    word: u64,
}

impl<'a> Structurals<'a> {
    fn new(bits: &'a Bitmaps) -> Self {
        let words = bits.quote.len();
        let word = if words > 0 {
            bits.structural_word(0)
        } else {
            0
        };
        Structurals {
            bits,
            words,
            w: 0,
            word,
        }
    }

    /// Next structural position, consuming it.
    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.word != 0 {
                let bit = self.word.trailing_zeros() as usize;
                self.word &= self.word - 1;
                return Some(self.w * 64 + bit);
            }
            self.w += 1;
            if self.w >= self.words {
                return None;
            }
            self.word = self.bits.structural_word(self.w);
        }
    }
}

impl StructuralScanner {
    /// A fresh scanner with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scans one record. Returns `true` when the record is proven
    /// well-formed under `opts` and the projected root fields (per
    /// `set`) have been collected — readable via
    /// [`fields`](StructuralScanner::fields) until the next scan. Returns
    /// `false` when the caller must fall back to the full parser; the
    /// scanner holds no claim about the record either way.
    pub fn scan(&mut self, input: &[u8], set: &FieldSet, opts: &ScanOptions) -> bool {
        self.fields.clear();
        self.stack.clear();

        // Speculation hints are only valid against the set they were
        // resolved with; a different set invalidates them.
        let set_id = (set.names.as_ptr() as usize, set.names.len());
        if self.spec_set != set_id {
            self.spec.clear();
            self.spec_set = set_id;
        }

        // The fast path only serves object roots: projection is
        // meaningless elsewhere and the slow path owns non-record
        // semantics.
        let first = input
            .iter()
            .position(|b| !matches!(b, b' ' | b'\t' | b'\n' | b'\r'));
        if first.is_none_or(|i| input[i] != b'{') {
            return false;
        }

        self.bits.build_from(input);

        // Whole-line prechecks, word-parallel: control bytes inside
        // strings are always errors; backslashes get one escape-validity
        // pass (`\uXXXX` punts to the full parser, which owns surrogate
        // rules).
        let words = self.bits.quote.len();
        let mut has_backslash = false;
        for w in 0..words {
            if self.bits.control[w] & self.bits.string_mask[w] != 0 {
                return false;
            }
            has_backslash |= self.bits.backslash[w] != 0;
        }
        if has_backslash && !self.escapes_ok(input) {
            return false;
        }

        let bits = std::mem::take(&mut self.bits);
        let ok = self.walk(input, set, opts, &bits);
        self.bits = bits;
        ok
    }

    /// The projected fields of the last successful scan, document order.
    pub fn fields(&self) -> &[ProjectedField] {
        &self.fields
    }

    /// Validates every backslash escape outside of `\u` (which falls
    /// back). Backslashes outside strings are structural errors.
    fn escapes_ok(&self, input: &[u8]) -> bool {
        let mut skip = 0usize;
        for p in Bitmaps::positions(&self.bits.backslash) {
            if p < skip {
                continue;
            }
            if !self.bits.in_string(p) {
                return false;
            }
            // Walk the backslash run; an odd-length run escapes the byte
            // after it.
            let mut q = p;
            while q < input.len() && input[q] == b'\\' {
                q += 1;
            }
            if (q - p) % 2 == 1 {
                match input.get(q) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    // `\uXXXX`: surrogate-pair rules live in the lexer.
                    _ => return false,
                }
                skip = q + 1;
            } else {
                skip = q;
            }
        }
        true
    }

    /// Resolves whether the root key at `ordinal` is projected, through
    /// the speculation hints.
    #[inline]
    fn key_projected(&mut self, ordinal: usize, key: &[u8], set: &FieldSet) -> bool {
        if let Some(hint) = self.spec.get(ordinal) {
            if hint.key == key {
                return hint.projected;
            }
        }
        let projected = set.contains(key);
        if ordinal < self.spec.len() {
            let hint = &mut self.spec[ordinal];
            hint.key.clear();
            hint.key.extend_from_slice(key);
            hint.projected = projected;
        } else if ordinal < SPEC_ORDINALS {
            self.spec.push(SpecHint {
                key: key.to_vec(),
                projected,
            });
        }
        projected
    }

    /// Records a completed root member (scalar/string span or container
    /// close) when the active key is projected. Only meaningful at stack
    /// depth 1, i.e. direct members of the root object.
    #[inline]
    fn member_done(&mut self, value: Range<usize>, cur_key: &Range<usize>, cur_projected: bool) {
        if self.stack.len() == 1 && cur_projected {
            self.fields.push(ProjectedField {
                key: cur_key.clone(),
                value,
            });
        }
    }

    /// The structural walk: token positions come from the merged bitmap,
    /// gaps between them are validated as whitespace or one scalar,
    /// strings are jumped quote-to-quote, and depth is tracked on the
    /// container stack.
    fn walk(&mut self, input: &[u8], set: &FieldSet, opts: &ScanOptions, bits: &Bitmaps) -> bool {
        let len = input.len();
        let mut st = Structurals::new(bits);
        let mut pos = 0usize;
        let mut expect = Expect::Value;
        let mut ordinal = 0usize;
        // Root-member bookkeeping, meaningful only at stack depth 1.
        let mut cur_key: Range<usize> = 0..0;
        let mut cur_projected = false;
        let mut vstart = 0usize;

        loop {
            let s = st.next();
            let gap_end = s.unwrap_or(len);
            let gap = &input[pos..gap_end];

            // The gap may hold one scalar token where a value is
            // expected; anywhere else it must be pure whitespace.
            match expect {
                Expect::Value | Expect::ValueOrClose => {
                    let (ts, te) = trim_ws(gap, pos);
                    if ts < te {
                        if !valid_scalar(&input[ts..te]) {
                            return false;
                        }
                        self.member_done(ts..te, &cur_key, cur_projected);
                        expect = Expect::CommaOrClose;
                    }
                }
                _ => {
                    if !all_ws(gap) {
                        return false;
                    }
                }
            }

            let Some(s) = s else {
                // Input exhausted: accept iff the root object closed (the
                // trailing gap was whitespace-checked above).
                return expect == Expect::End && self.stack.is_empty();
            };

            match (expect, input[s]) {
                (Expect::Value | Expect::ValueOrClose, b'"') => {
                    // String value: jump to the closing quote — interior
                    // bytes were cleared by prechecks + string masking.
                    let Some(close) = st.next() else { return false };
                    if !Bitmaps::bit_at(&bits.quote, close) {
                        return false;
                    }
                    self.member_done(s..close + 1, &cur_key, cur_projected);
                    expect = Expect::CommaOrClose;
                    pos = close + 1;
                    continue;
                }
                (Expect::Value | Expect::ValueOrClose, b'{') => {
                    if self.stack.len() == 1 {
                        vstart = s;
                    }
                    if self.stack.len() + 1 > opts.max_depth {
                        return false;
                    }
                    self.stack.push(b'{');
                    expect = Expect::KeyOrClose;
                }
                (Expect::Value | Expect::ValueOrClose, b'[') => {
                    if self.stack.len() == 1 {
                        vstart = s;
                    }
                    if self.stack.len() + 1 > opts.max_depth {
                        return false;
                    }
                    self.stack.push(b'[');
                    expect = Expect::ValueOrClose;
                }
                (Expect::ValueOrClose | Expect::CommaOrClose, b']') => {
                    if self.stack.pop() != Some(b'[') {
                        return false;
                    }
                    self.member_done(vstart..s + 1, &cur_key, cur_projected);
                    expect = if self.stack.is_empty() {
                        Expect::End
                    } else {
                        Expect::CommaOrClose
                    };
                }
                (Expect::KeyOrClose | Expect::CommaOrClose, b'}') => {
                    if self.stack.pop() != Some(b'{') {
                        return false;
                    }
                    self.member_done(vstart..s + 1, &cur_key, cur_projected);
                    expect = if self.stack.is_empty() {
                        Expect::End
                    } else {
                        Expect::CommaOrClose
                    };
                }
                (Expect::KeyOrClose | Expect::Key, b'"') => {
                    let Some(close) = st.next() else { return false };
                    if !Bitmaps::bit_at(&bits.quote, close) {
                        return false;
                    }
                    if self.stack.len() == 1 {
                        let key = s + 1..close;
                        // Escaped root keys would need unescaping before
                        // set membership — fall back.
                        if Bitmaps::any_in_range(&bits.backslash, key.clone()) {
                            return false;
                        }
                        cur_projected = self.key_projected(ordinal, &input[key.clone()], set);
                        ordinal += 1;
                        if !cur_projected
                            && opts.reject_dotted_skipped
                            && input[key.clone()].contains(&b'.')
                        {
                            return false;
                        }
                        cur_key = key;
                    }
                    expect = Expect::Colon;
                    pos = close + 1;
                    continue;
                }
                (Expect::Colon, b':') => {
                    expect = Expect::Value;
                }
                (Expect::CommaOrClose, b',') => {
                    expect = match self.stack.last() {
                        Some(b'{') => Expect::Key,
                        Some(b'[') => Expect::Value,
                        _ => return false,
                    };
                }
                _ => return false,
            }
            pos = s + 1;
        }
    }
}

/// Trims JSON whitespace from a gap, returning absolute token bounds.
#[inline]
fn trim_ws(gap: &[u8], base: usize) -> (usize, usize) {
    let mut start = 0;
    let mut end = gap.len();
    while start < end && matches!(gap[start], b' ' | b'\t' | b'\n' | b'\r') {
        start += 1;
    }
    while end > start && matches!(gap[end - 1], b' ' | b'\t' | b'\n' | b'\r') {
        end -= 1;
    }
    (base + start, base + end)
}

/// Whether a gap is all JSON whitespace.
#[inline]
fn all_ws(gap: &[u8]) -> bool {
    gap.iter()
        .all(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
}

/// Validates a scalar token against the subset of the number/keyword
/// grammar the scanner can prove without the lexer's overflow rules:
/// keywords, and numbers with no exponent and at most 17 integer digits
/// (finite in f64 by construction). Everything else falls back.
fn valid_scalar(tok: &[u8]) -> bool {
    match tok {
        b"true" | b"false" | b"null" => return true,
        _ => {}
    }
    let mut i = 0;
    if tok.first() == Some(&b'-') {
        i = 1;
    }
    let int_start = i;
    match tok.get(i) {
        Some(b'0') => i += 1,
        Some(b'1'..=b'9') => {
            while i < tok.len() && tok[i].is_ascii_digit() {
                i += 1;
            }
            if i - int_start > 17 {
                return false;
            }
        }
        _ => return false,
    }
    if i == tok.len() {
        return true;
    }
    if tok[i] != b'.' {
        return false; // exponents (and junk) fall back to the lexer
    }
    i += 1;
    let frac_start = i;
    while i < tok.len() && tok[i].is_ascii_digit() {
        i += 1;
    }
    i > frac_start && i == tok.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_with, ParserOptions};

    fn colon_positions(s: &str) -> Vec<usize> {
        let b = build(s.as_bytes());
        Bitmaps::positions(&b.colon).collect()
    }

    #[test]
    fn prefix_xor_basics() {
        assert_eq!(prefix_xor(0), 0);
        // Single bit at 0 → all bits from 0 upward set.
        assert_eq!(prefix_xor(1), u64::MAX);
        // Bits at 1 and 3 → mask covers bits 1 and 2 (the [1,3) span).
        assert_eq!(prefix_xor(0b1010), 0b0110);
    }

    #[test]
    fn structural_positions() {
        let s = r#"{"a": 1, "b": [2, 3]}"#;
        assert_eq!(colon_positions(s), vec![4, 12]);
        let b = build(s.as_bytes());
        assert_eq!(
            Bitmaps::positions(&b.comma).collect::<Vec<_>>(),
            vec![7, 16]
        );
        assert_eq!(Bitmaps::positions(&b.lbrace).collect::<Vec<_>>(), vec![0]);
        assert_eq!(
            Bitmaps::positions(&b.lbracket).collect::<Vec<_>>(),
            vec![14]
        );
    }

    #[test]
    fn colons_inside_strings_are_masked() {
        let s = r#"{"time": "12:30:00", "x": 1}"#;
        // Only the two key colons survive.
        assert_eq!(colon_positions(s).len(), 2);
    }

    #[test]
    fn escaped_quotes_do_not_toggle_strings() {
        let s = r#"{"k\"ey": "va\\\"l:ue", "x": 1}"#;
        // The only structural colons are after "k\"ey" and "x".
        let cols = colon_positions(s);
        assert_eq!(cols.len(), 2);
        // Braces inside the values stay masked.
        let b = build(s.as_bytes());
        assert_eq!(Bitmaps::positions(&b.lbrace).count(), 1);
    }

    #[test]
    fn escaped_backslash_before_quote() {
        // "b\\" — the quote after two backslashes IS a real closing quote.
        let s = r#"{"a": "b\\", "c": 1}"#;
        assert_eq!(colon_positions(s).len(), 2);
    }

    #[test]
    fn string_mask_spans_words() {
        // A string longer than 64 bytes must keep the mask set across the
        // word boundary.
        let long = format!(r#"{{"k": "{}", "x": 1}}"#, "a:".repeat(64));
        let cols = colon_positions(&long);
        assert_eq!(
            cols.len(),
            2,
            "colons inside the long string must be masked"
        );
    }

    #[test]
    fn in_string_probe() {
        let s = r#"{"a": "x:y"}"#;
        let b = build(s.as_bytes());
        let colon_in_string = s.find(":y").unwrap();
        assert!(b.in_string(colon_in_string));
        assert!(!b.in_string(4)); // the structural colon
    }

    #[test]
    fn swar_primitives() {
        let word = u64::from_le_bytes(*b"a:b::cd\"");
        let m = eq_mask(word, b':');
        assert_eq!(movemask(m), 0b0011010);
        assert_eq!(movemask(eq_mask(word, b'"')), 0b10000000);
        assert_eq!(movemask(eq_mask(word, b'x')), 0);
    }

    #[test]
    fn control_and_backslash_bitmaps() {
        let s = "{\"a\": \"b\\n\", \"t\": 1}\t";
        let b = build(s.as_bytes());
        let bs: Vec<usize> = Bitmaps::positions(&b.backslash).collect();
        assert_eq!(bs, vec![s.find('\\').unwrap()]);
        let ctl: Vec<usize> = Bitmaps::positions(&b.control).collect();
        assert_eq!(ctl, vec![s.len() - 1]); // the trailing tab
        let raw = "{\"a\": \"x\u{1}y\"}";
        let b = build(raw.as_bytes());
        let ctl: Vec<usize> = Bitmaps::positions(&b.control).collect();
        assert_eq!(ctl, vec![raw.find('\u{1}').unwrap()]);
        assert!(b.in_string(ctl[0]));
    }

    #[test]
    fn word_parallel_matches_scalar_reference() {
        let samples: Vec<String> = vec![
            r#"{"a": 1, "b": [true, "x:y"], "c\\": "d\""}"#.to_string(),
            "x".repeat(200),
            format!(r#"{{"long": "{}"}}"#, "ab\\\"c".repeat(40)),
            format!("{}{}", "\\".repeat(63), '"'),
            format!("{}{}", "\\".repeat(64), '"'),
            "{\"ctl\": \"\u{1}\u{2}\", \"ws\": \t1}".to_string(),
            String::new(),
        ];
        for text in samples {
            let fast = build(text.as_bytes());
            let slow = build_scalar(text.as_bytes());
            assert_eq!(fast.quote, slow.quote, "quotes differ on {text:?}");
            assert_eq!(fast.colon, slow.colon, "colons differ on {text:?}");
            assert_eq!(
                fast.string_mask, slow.string_mask,
                "mask differs on {text:?}"
            );
            assert_eq!(fast.lbrace, slow.lbrace);
            assert_eq!(fast.comma, slow.comma);
            assert_eq!(fast.backslash, slow.backslash, "backslash on {text:?}");
            assert_eq!(fast.control, slow.control, "control on {text:?}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let b = build(b"");
        assert_eq!(b.len, 0);
        assert_eq!(Bitmaps::positions(&b.colon).count(), 0);
        let b = build(b"1");
        assert_eq!(b.len, 1);
    }

    #[test]
    fn buffer_reuse_across_records() {
        let mut bits = Bitmaps::default();
        bits.build_from(br#"{"a": "a very long string to size the buffers", "b": [1, 2]}"#);
        let cap = bits.quote.capacity();
        bits.build_from(br#"{"x": 1}"#);
        assert_eq!(bits.len, 8);
        assert_eq!(Bitmaps::positions(&bits.quote).count(), 2);
        assert!(bits.quote.capacity() >= 1 && cap >= bits.quote.capacity());
    }

    // ---- scanner ----

    fn scan_fields(input: &str, names: &[&str]) -> Option<Vec<(String, String)>> {
        let mut sc = StructuralScanner::new();
        let set = FieldSet::new(names.iter().map(|s| s.to_string()));
        if !sc.scan(input.as_bytes(), &set, &ScanOptions::default()) {
            return None;
        }
        Some(
            sc.fields()
                .iter()
                .map(|f| {
                    (
                        input[f.key.clone()].to_string(),
                        input[f.value.clone()].to_string(),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn projects_requested_fields_with_tight_spans() {
        let doc = r#"{ "id": 7, "name": "ada", "skip": [1, {"x": ":"}], "geo": {"lat": 1.5} }"#;
        let fields = scan_fields(doc, &["id", "geo"]).expect("clean record scans");
        assert_eq!(
            fields,
            vec![
                ("id".to_string(), "7".to_string()),
                ("geo".to_string(), r#"{"lat": 1.5}"#.to_string()),
            ]
        );
    }

    #[test]
    fn duplicate_projected_keys_keep_every_occurrence_in_order() {
        let doc = r#"{"a": 1, "b": 2, "a": 3}"#;
        let fields = scan_fields(doc, &["a"]).unwrap();
        assert_eq!(
            fields,
            vec![
                ("a".to_string(), "1".to_string()),
                ("a".to_string(), "3".to_string()),
            ]
        );
    }

    #[test]
    fn empty_set_still_validates_structure() {
        assert_eq!(
            scan_fields(r#"{"a": [1, "x"], "b": null}"#, &[]),
            Some(vec![])
        );
        assert_eq!(scan_fields("{}", &[]), Some(vec![]));
        assert_eq!(scan_fields(r#"{"a": tru}"#, &[]), None);
        assert_eq!(scan_fields(r#"{"a": 1,}"#, &[]), None);
        assert_eq!(scan_fields(r#"{"a" 1}"#, &[]), None);
        assert_eq!(scan_fields(r#"{"a": 1"#, &[]), None);
        assert_eq!(scan_fields(r#"{"a": 1} extra"#, &[]), None);
        assert_eq!(scan_fields(r#"{"a": 01}"#, &[]), None);
        assert_eq!(scan_fields(r#"{"a": [1, 2,]}"#, &[]), None);
        assert_eq!(scan_fields(r#"{"a": [,1]}"#, &[]), None);
        assert_eq!(scan_fields(r#"{"a": 1]}"#, &[]), None);
    }

    #[test]
    fn non_object_roots_fall_back() {
        for doc in ["[1, 2]", "42", "\"s\"", "null", "  [1]", "", "   "] {
            assert_eq!(scan_fields(doc, &["a"]), None, "doc {doc}");
        }
    }

    #[test]
    fn conservative_fallbacks() {
        // \u escape: surrogate rules belong to the lexer.
        let unicode = "{\"a\": \"\\u0041\"}";
        assert_eq!(scan_fields(unicode, &["a"]), None);
        // Escaped key could unescape into a projected name.
        assert_eq!(scan_fields(r#"{"a\tb": 1}"#, &["a"]), None);
        // Unknown escape is malformed anyway.
        assert_eq!(scan_fields(r#"{"a": "\x41"}"#, &["a"]), None);
        // Exponents (overflow rules) fall back.
        assert_eq!(scan_fields(r#"{"a": 1e3}"#, &["a"]), None);
        // Control byte inside a string.
        assert_eq!(scan_fields("{\"a\": \"x\u{1}\"}", &["a"]), None);
        // Depth past the cap.
        let mut sc = StructuralScanner::new();
        let deep = format!(r#"{{"a": {}1{}}}"#, "[".repeat(5), "]".repeat(5));
        let set = FieldSet::new(["a".to_string()]);
        assert!(!sc.scan(
            deep.as_bytes(),
            &set,
            &ScanOptions {
                max_depth: 4,
                reject_dotted_skipped: false
            }
        ));
        assert!(sc.scan(deep.as_bytes(), &set, &ScanOptions::default()));
        assert_eq!(sc.fields().len(), 1);
    }

    #[test]
    fn dotted_skipped_keys_fall_back_only_when_asked() {
        let doc = r#"{"geo.lat": 1, "id": 2}"#;
        assert!(scan_fields(doc, &["id"]).is_some());
        let mut sc = StructuralScanner::new();
        let set = FieldSet::new(["id".to_string()]);
        let opts = ScanOptions {
            max_depth: 128,
            reject_dotted_skipped: true,
        };
        assert!(!sc.scan(doc.as_bytes(), &set, &opts));
        // Projected dotted keys are fine — the consumer asked for them.
        let set = FieldSet::new(["geo.lat".to_string(), "id".to_string()]);
        assert!(sc.scan(doc.as_bytes(), &set, &opts));
        assert_eq!(sc.fields().len(), 2);
    }

    #[test]
    fn speculation_hints_survive_reordering() {
        let mut sc = StructuralScanner::new();
        let set = FieldSet::new(["id".to_string()]);
        let opts = ScanOptions::default();
        for _ in 0..3 {
            assert!(sc.scan(br#"{"id": 1, "name": "a"}"#, &set, &opts));
            assert_eq!(sc.fields().len(), 1);
        }
        // Field order flips: hints miss, verified fallback re-resolves.
        let doc = r#"{"name": "a", "id": 2}"#;
        assert!(sc.scan(doc.as_bytes(), &set, &opts));
        assert_eq!(sc.fields().len(), 1);
        assert_eq!(&doc[sc.fields()[0].value.clone()], "2");
    }

    #[test]
    fn accepted_records_parse_and_spans_match_dom() {
        let docs = [
            r#"{"id": 0, "tags": ["a", "b:c"], "name": "x,y", "f": 1.25, "n": null}"#,
            r#"{ "a" : { "b" : [ true , false ] } , "c" : -0.5 }"#,
            r#"{"empty": {}, "earr": [], "s": "", "a": [[1], {"b": 2}]}"#,
        ];
        let set = FieldSet::new(["id", "a", "c", "s", "tags"].map(String::from));
        let mut sc = StructuralScanner::new();
        for doc in docs {
            assert!(
                sc.scan(doc.as_bytes(), &set, &ScanOptions::default()),
                "doc {doc}"
            );
            let dom = parse_with(doc.as_bytes(), ParserOptions::default()).expect("valid");
            assert!(!sc.fields().is_empty(), "doc {doc}");
            for f in sc.fields() {
                let key = &doc[f.key.clone()];
                let span_value =
                    parse_with(doc[f.value.clone()].as_bytes(), ParserOptions::default())
                        .expect("span parses");
                assert_eq!(
                    dom.get(key).expect("field exists"),
                    &span_value,
                    "field {key} of {doc}"
                );
            }
        }
    }

    #[test]
    fn scalar_grammar_subset() {
        for ok in ["0", "-0", "7", "123", "1.5", "-0.25", "10.00"] {
            assert!(valid_scalar(ok.as_bytes()), "{ok}");
        }
        for fallback in [
            "01",
            "1.",
            ".5",
            "+1",
            "-",
            "1e3",
            "1E3",
            "1e400",
            "--1",
            "0x1",
            "nul",
            "True",
            "123456789012345678", // >17 integer digits: overflow is the lexer's call
        ] {
            assert!(!valid_scalar(fallback.as_bytes()), "{fallback}");
        }
    }
}
