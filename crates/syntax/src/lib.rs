//! # jsonx-syntax
//!
//! A from-scratch JSON syntax layer: lexer, recursive-descent DOM parser,
//! streaming (pull) event parser, serializer/pretty-printer, and
//! newline-delimited collection I/O.
//!
//! This crate is the *baseline* parser of the workspace. The tutorial's §4.2
//! surveys parsers (Mison, Fad.js) whose headline claims are speedups
//! relative to a conventional eager DOM parser — this is that conventional
//! parser, implemented carefully per RFC 8259: full string escapes with
//! surrogate pairs, the exact number grammar, configurable nesting limits,
//! and byte-precise error positions. The [`structural`] module carries the
//! word-parallel counterpart: SWAR structural bitmaps and a projecting
//! skip-scanner that the streaming pipeline uses as its fast path, with
//! this parser as the verified fallback.
//!
//! ```
//! use jsonx_syntax::{parse, to_string_pretty};
//!
//! let v = parse(r#"{"greeting": "hello", "n": [1, 2.5, -3e2]}"#).unwrap();
//! assert_eq!(v.get("n").unwrap().get_index(2).unwrap().as_f64(), Some(-300.0));
//! let pretty = to_string_pretty(&v);
//! assert!(pretty.contains("\"greeting\""));
//! ```

pub mod csv;
pub mod decoder;
pub mod error;
pub mod event;
pub mod lexer;
pub mod limits;
pub mod ndjson;
pub mod parser;
pub mod serializer;
pub mod structural;

pub use csv::CsvDecoder;
pub use decoder::{EventReceiver, JsonDecoder, NullReceiver, RecordDecoder, Tee, ValueBuilder};
pub use error::{ParseError, ParseErrorKind, RecordLimit};
pub use event::{Event, EventParser, RawEvent, RawEventParser};
pub use lexer::{Lexer, RawToken, Token};
pub use limits::{ParseLimits, DEFAULT_MAX_DEPTH};
pub use ndjson::{parse_ndjson, write_ndjson};
pub use parser::{parse, parse_bytes, parse_with, ParserOptions};
pub use serializer::{
    append_compact, to_string, to_string_pretty, write_ndjson_to, write_value, write_value_to,
    SerializeOptions,
};
pub use structural::{Bitmaps, FieldSet, ProjectedField, ScanOptions, StructuralScanner};
