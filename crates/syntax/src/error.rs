//! Parse errors with byte-precise positions.

use std::fmt;

/// Which resource limit a record blew through.
///
/// Depth violations keep their own kind
/// ([`ParseErrorKind::TooDeep`]); this enum covers the byte-size guards
/// added by [`ParseLimits`](crate::ParseLimits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordLimit {
    /// The whole record exceeded `max_input_bytes`.
    InputBytes,
    /// A single string literal exceeded `max_string_bytes`.
    StringBytes,
}

/// What went wrong while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended inside a value.
    UnexpectedEof,
    /// A byte that cannot start or continue any token.
    UnexpectedByte(u8),
    /// A token that is valid JSON but not valid *here* (e.g. `,` after `[`).
    UnexpectedToken(&'static str),
    /// Malformed number literal (leading zero, bare `-`, `1.`, `1e`, …).
    BadNumber,
    /// A number literal that parses but is not finite in `f64`.
    NumberOutOfRange,
    /// Malformed `\`-escape inside a string.
    BadEscape,
    /// `\uXXXX` with invalid hex digits.
    BadUnicodeEscape,
    /// A lone or mismatched UTF-16 surrogate in `\u` escapes.
    LoneSurrogate,
    /// Raw control character (U+0000..U+001F) inside a string.
    ControlCharacterInString,
    /// Input is not valid UTF-8.
    InvalidUtf8,
    /// Nesting exceeded [`ParserOptions::max_depth`](crate::ParserOptions).
    TooDeep,
    /// Valid value followed by non-whitespace garbage.
    TrailingData,
    /// A keyword prefix that is not `true`/`false`/`null`.
    BadKeyword,
    /// A [`ParseLimits`](crate::ParseLimits) byte-size guard tripped.
    LimitExceeded(RecordLimit),
}

impl ParseErrorKind {
    /// A stable, machine-readable label for this error kind.
    ///
    /// Used as the grouping key in error summaries and as the `"kind"`
    /// field of quarantine diagnostics, so the set of labels is part of the
    /// quarantine file format.
    pub fn label(&self) -> &'static str {
        match self {
            ParseErrorKind::UnexpectedEof => "unexpected-eof",
            ParseErrorKind::UnexpectedByte(_) => "unexpected-byte",
            ParseErrorKind::UnexpectedToken(_) => "unexpected-token",
            ParseErrorKind::BadNumber => "bad-number",
            ParseErrorKind::NumberOutOfRange => "number-out-of-range",
            ParseErrorKind::BadEscape => "bad-escape",
            ParseErrorKind::BadUnicodeEscape => "bad-unicode-escape",
            ParseErrorKind::LoneSurrogate => "lone-surrogate",
            ParseErrorKind::ControlCharacterInString => "control-character-in-string",
            ParseErrorKind::InvalidUtf8 => "invalid-utf8",
            ParseErrorKind::TooDeep => "too-deep",
            ParseErrorKind::TrailingData => "trailing-data",
            ParseErrorKind::BadKeyword => "bad-keyword",
            ParseErrorKind::LimitExceeded(RecordLimit::InputBytes) => "limit-exceeded-input-bytes",
            ParseErrorKind::LimitExceeded(RecordLimit::StringBytes) => {
                "limit-exceeded-string-bytes"
            }
        }
    }
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            ParseErrorKind::UnexpectedByte(b) => {
                if b.is_ascii_graphic() {
                    write!(f, "unexpected character '{}'", *b as char)
                } else {
                    write!(f, "unexpected byte 0x{b:02x}")
                }
            }
            ParseErrorKind::UnexpectedToken(tok) => write!(f, "unexpected token {tok}"),
            ParseErrorKind::BadNumber => write!(f, "malformed number literal"),
            ParseErrorKind::NumberOutOfRange => write!(f, "number out of representable range"),
            ParseErrorKind::BadEscape => write!(f, "invalid escape sequence"),
            ParseErrorKind::BadUnicodeEscape => write!(f, "invalid \\u escape"),
            ParseErrorKind::LoneSurrogate => write!(f, "lone UTF-16 surrogate in \\u escape"),
            ParseErrorKind::ControlCharacterInString => {
                write!(f, "raw control character inside string")
            }
            ParseErrorKind::InvalidUtf8 => write!(f, "input is not valid UTF-8"),
            ParseErrorKind::TooDeep => write!(f, "nesting depth limit exceeded"),
            ParseErrorKind::TrailingData => write!(f, "trailing data after JSON value"),
            ParseErrorKind::BadKeyword => write!(f, "invalid keyword (expected true/false/null)"),
            ParseErrorKind::LimitExceeded(RecordLimit::InputBytes) => {
                write!(f, "record exceeds the configured byte limit")
            }
            ParseErrorKind::LimitExceeded(RecordLimit::StringBytes) => {
                write!(f, "string literal exceeds the configured byte limit")
            }
        }
    }
}

/// A parse error at a byte offset, with derived line/column (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (in bytes from the line start).
    pub column: usize,
}

impl ParseError {
    /// Builds an error, computing line/column from the input.
    pub fn at(kind: ParseErrorKind, input: &[u8], offset: usize) -> Self {
        let clamped = offset.min(input.len());
        let mut line = 1;
        let mut line_start = 0;
        for (i, &b) in input[..clamped].iter().enumerate() {
            if b == b'\n' {
                line += 1;
                line_start = i + 1;
            }
        }
        ParseError {
            kind,
            offset,
            line,
            column: clamped - line_start + 1,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at line {}, column {} (byte {})",
            self.kind, self.line, self.column, self.offset
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_one_based() {
        let input = b"{\n  \"a\": x";
        let err = ParseError::at(ParseErrorKind::UnexpectedByte(b'x'), input, 9);
        assert_eq!(err.line, 2);
        assert_eq!(err.column, 8);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn offset_past_end_is_clamped() {
        let err = ParseError::at(ParseErrorKind::UnexpectedEof, b"ab", 99);
        assert_eq!(err.line, 1);
        assert_eq!(err.column, 3);
    }
}
