//! CSV ingestion front-end for the record-decoding seam.
//!
//! [`CsvDecoder`] implements [`RecordDecoder`] over one CSV data row per
//! record: each row decodes to the event stream of a flat JSON object
//! whose keys come from the header and whose scalar values are sniffed
//! from the cell text. Because it sits behind the same seam as the NDJSON
//! decoder, CSV corpora inherit the whole pipeline — type inference,
//! schema validation, columnar translation, error policies, quarantine,
//! work stealing, out-of-core chunking — without any stage knowing the
//! source was not JSON.
//!
//! ## Dialect
//!
//! The dialect is RFC-4180-within-a-line, chosen so records stay aligned
//! with the engine's chunk boundaries:
//!
//! * The newline is a hard record boundary. Quoted fields may not contain
//!   literal line breaks — a row whose quote is still open at end-of-line
//!   is a malformed record (`unexpected-eof`), and both halves reject
//!   cleanly under the run's error policy instead of silently merging
//!   across a chunk split. (Escaped content is unrestricted: `""` encodes
//!   a quote, and any other byte is taken literally.)
//! * A field is *quoted* only when its first byte is `"`. Inside, `""`
//!   encodes one quote; the field ends at the closing quote, which must be
//!   followed by the delimiter or end-of-line (`unexpected-byte`
//!   otherwise). Quoted cells always decode as strings — quoting is the
//!   escape hatch from sniffing (`"5"` is the string, `5` the integer).
//! * Unquoted cells are taken literally and sniffed: empty → `null`,
//!   `true`/`false` → booleans, then an `i64` parse, then a finite `f64`
//!   parse, else a string. (Number sniffing is as lenient as Rust's
//!   numeric `FromStr` — `+5`, `05`, `1e3`, `.5` all read as numbers;
//!   quote a cell to opt out.)
//! * Rows shorter than the header simply omit the trailing fields — under
//!   inference those fields become optional, exactly like absent keys in
//!   heterogeneous NDJSON. Rows with *extra* fields are malformed
//!   (`trailing-data` at the first extra cell).
//! * Duplicate header names are kept; a row emits one key event per cell
//!   and downstream object semantics resolve duplicates last-wins, same
//!   as duplicate keys in a JSON document.
//!
//! Record indices reported by the engine count *data* rows: the caller
//! peels the header line off the input before streaming starts (see the
//! CLI's `--format csv`), so "record 0" is the first row after the
//! header.

use std::borrow::Cow;

use crate::decoder::{EventReceiver, RecordDecoder};
use crate::error::{ParseError, ParseErrorKind, RecordLimit};
use crate::event::RawEvent;
use crate::limits::ParseLimits;
use jsonx_data::Number;

/// Header-driven CSV row decoder. See the module docs for the dialect.
#[derive(Debug, Clone)]
pub struct CsvDecoder {
    fields: Vec<String>,
    delimiter: u8,
    limits: ParseLimits,
}

/// One parsed cell: where it started, its unescaped text, and whether it
/// was quoted (quoted cells skip scalar sniffing).
struct Cell<'a> {
    start: usize,
    text: Cow<'a, str>,
    quoted: bool,
}

impl CsvDecoder {
    /// A decoder with explicit field names and the `,` delimiter.
    pub fn new<S: Into<String>>(fields: Vec<S>) -> CsvDecoder {
        CsvDecoder {
            fields: fields.into_iter().map(Into::into).collect(),
            delimiter: b',',
            limits: ParseLimits::default(),
        }
    }

    /// Builds a decoder from a header line, parsed with the same cell
    /// grammar as data rows (so header names may be quoted). The line
    /// must not include its newline terminator.
    pub fn from_header(header: &str) -> Result<CsvDecoder, ParseError> {
        Self::from_header_with(header, b',')
    }

    /// [`from_header`](Self::from_header) with a custom delimiter.
    pub fn from_header_with(header: &str, delimiter: u8) -> Result<CsvDecoder, ParseError> {
        let template = CsvDecoder {
            fields: Vec::new(),
            delimiter,
            limits: ParseLimits::default(),
        };
        let mut fields = Vec::new();
        let mut pos = 0;
        let bytes = header.as_bytes();
        loop {
            let cell = template.take_cell(header, pos)?;
            let end = cell_end(bytes, &cell, delimiter);
            fields.push(cell.text.into_owned());
            match bytes.get(end) {
                Some(_) => pos = end + 1,
                None => break,
            }
        }
        Ok(CsvDecoder {
            fields,
            delimiter,
            limits: ParseLimits::default(),
        })
    }

    /// Replaces the delimiter (e.g. `b'\t'` for TSV).
    pub fn with_delimiter(mut self, delimiter: u8) -> CsvDecoder {
        self.delimiter = delimiter;
        self
    }

    /// Replaces the per-record resource limits (`max_input_bytes` bounds
    /// the row, `max_string_bytes` each cell; depth does not apply to the
    /// flat rows CSV produces).
    pub fn with_limits(mut self, limits: ParseLimits) -> CsvDecoder {
        self.limits = limits;
        self
    }

    /// The header-derived field names, in column order.
    pub fn fields(&self) -> &[String] {
        &self.fields
    }

    /// Parses the cell starting at `start`, returning its unescaped text
    /// and quoting. The cell's end is recomputed by [`cell_end`] (closing
    /// delimiter position or end-of-line).
    fn take_cell<'a>(&self, record: &'a str, start: usize) -> Result<Cell<'a>, ParseError> {
        let bytes = record.as_bytes();
        if bytes.get(start) == Some(&b'"') {
            // Quoted cell: scan for the closing quote, unescaping "".
            let mut buf: Option<String> = None;
            let mut seg_start = start + 1;
            let mut i = start + 1;
            loop {
                match bytes.get(i) {
                    None => {
                        // Quote still open at end-of-line: the newline is a
                        // hard record boundary, so this row is malformed.
                        return Err(ParseError::at(
                            ParseErrorKind::UnexpectedEof,
                            bytes,
                            bytes.len(),
                        ));
                    }
                    Some(b'"') if bytes.get(i + 1) == Some(&b'"') => {
                        let buf = buf.get_or_insert_with(String::new);
                        buf.push_str(&record[seg_start..i]);
                        buf.push('"');
                        i += 2;
                        seg_start = i;
                    }
                    Some(b'"') => {
                        match bytes.get(i + 1) {
                            None => {}
                            Some(&d) if d == self.delimiter => {}
                            Some(&other) => {
                                return Err(ParseError::at(
                                    ParseErrorKind::UnexpectedByte(other),
                                    bytes,
                                    i + 1,
                                ));
                            }
                        }
                        let text = match buf {
                            Some(mut b) => {
                                b.push_str(&record[seg_start..i]);
                                Cow::Owned(b)
                            }
                            None => Cow::Borrowed(&record[seg_start..i]),
                        };
                        return Ok(Cell {
                            start,
                            text,
                            quoted: true,
                        });
                    }
                    Some(_) => i += 1,
                }
            }
        } else {
            let end = bytes[start..]
                .iter()
                .position(|&b| b == self.delimiter)
                .map(|p| start + p)
                .unwrap_or(bytes.len());
            Ok(Cell {
                start,
                text: Cow::Borrowed(&record[start..end]),
                quoted: false,
            })
        }
    }

    /// Sniffs an unquoted cell's scalar type. Quoted cells are always
    /// strings; this is only called for unquoted text.
    fn sniff<'a>(text: &Cow<'a, str>) -> RawEvent<'a> {
        let t: &str = text;
        if t.is_empty() {
            return RawEvent::Null;
        }
        match t {
            "true" => return RawEvent::Bool(true),
            "false" => return RawEvent::Bool(false),
            _ => {}
        }
        if let Ok(i) = t.parse::<i64>() {
            return RawEvent::Num(Number::Int(i));
        }
        if let Ok(f) = t.parse::<f64>() {
            if let Some(n) = Number::from_f64(f) {
                return RawEvent::Num(n);
            }
        }
        RawEvent::Str(text.clone())
    }
}

/// The byte position just past `cell`'s content (the delimiter position,
/// or the line length when the cell is last).
fn cell_end(bytes: &[u8], cell: &Cell<'_>, delimiter: u8) -> usize {
    if cell.quoted {
        // start + opening quote + content (escaped "" doubles back to two
        // source bytes per produced quote) + closing quote.
        let escaped_quotes = cell.text.matches('"').count();
        cell.start + 1 + cell.text.len() + escaped_quotes + 1
    } else {
        bytes[cell.start..]
            .iter()
            .position(|&b| b == delimiter)
            .map(|p| cell.start + p)
            .unwrap_or(bytes.len())
    }
}

impl RecordDecoder for CsvDecoder {
    type Scratch = ();

    fn scratch(&self) {}

    fn decode_events<R: EventReceiver + ?Sized>(
        &self,
        _scratch: &mut (),
        record: &str,
        recv: &mut R,
    ) -> Result<(), ParseError> {
        let bytes = record.as_bytes();
        if let Some(cap) = self.limits.max_input_bytes {
            if bytes.len() > cap {
                return Err(ParseError::at(
                    ParseErrorKind::LimitExceeded(RecordLimit::InputBytes),
                    bytes,
                    cap,
                ));
            }
        }
        recv.event(&RawEvent::StartObject);
        let mut pos = 0;
        let mut idx = 0;
        loop {
            let cell = self.take_cell(record, pos)?;
            if idx >= self.fields.len() {
                return Err(ParseError::at(
                    ParseErrorKind::TrailingData,
                    bytes,
                    cell.start,
                ));
            }
            if let Some(cap) = self.limits.max_string_bytes {
                if cell.text.len() > cap {
                    return Err(ParseError::at(
                        ParseErrorKind::LimitExceeded(RecordLimit::StringBytes),
                        bytes,
                        cell.start,
                    ));
                }
            }
            recv.event(&RawEvent::Key(Cow::Borrowed(&self.fields[idx])));
            if cell.quoted {
                recv.event(&RawEvent::Str(cell.text.clone()));
            } else {
                recv.event(&Self::sniff(&cell.text));
            }
            idx += 1;
            let end = cell_end(bytes, &cell, self.delimiter);
            match bytes.get(end) {
                Some(_) => pos = end + 1,
                None => break,
            }
        }
        recv.event(&RawEvent::EndObject);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::ValueBuilder;
    use crate::parser::parse;
    use jsonx_data::Value;

    fn decode(decoder: &CsvDecoder, row: &str) -> Result<Value, ParseError> {
        decoder.decode_value(&mut (), row)
    }

    fn expect(decoder: &CsvDecoder, row: &str, json: &str) {
        assert_eq!(
            decode(decoder, row).unwrap_or_else(|e| panic!("row {row:?}: {e}")),
            parse(json).unwrap(),
            "row {row:?}"
        );
    }

    #[test]
    fn header_drives_field_names() {
        let d = CsvDecoder::from_header("id,name,score").unwrap();
        assert_eq!(d.fields(), ["id", "name", "score"]);
        expect(&d, "1,ada,9.5", r#"{"id": 1, "name": "ada", "score": 9.5}"#);
    }

    #[test]
    fn quoted_headers_and_cells_unescape() {
        let d = CsvDecoder::from_header(r#""a,b","say ""hi""",c"#).unwrap();
        assert_eq!(d.fields(), ["a,b", "say \"hi\"", "c"]);
        expect(
            &d,
            r#""x,y","""quoted""",3"#,
            r#"{"a,b": "x,y", "say \"hi\"": "\"quoted\"", "c": 3}"#,
        );
    }

    #[test]
    fn sniffing_covers_null_bool_int_float_string() {
        let d = CsvDecoder::new(vec!["n", "b", "i", "f", "s"]);
        expect(
            &d,
            ",true,-7,2.5e2,plain text",
            r#"{"n": null, "b": true, "i": -7, "f": 250.0, "s": "plain text"}"#,
        );
    }

    #[test]
    fn quoting_opts_out_of_sniffing() {
        let d = CsvDecoder::new(vec!["a", "b", "c"]);
        expect(
            &d,
            r#""5","true","""#,
            r#"{"a": "5", "b": "true", "c": ""}"#,
        );
    }

    #[test]
    fn non_finite_numbers_stay_strings() {
        let d = CsvDecoder::new(vec!["a", "b"]);
        expect(&d, "inf,NaN", r#"{"a": "inf", "b": "NaN"}"#);
    }

    #[test]
    fn short_rows_omit_trailing_fields() {
        let d = CsvDecoder::from_header("a,b,c").unwrap();
        expect(&d, "1,2", r#"{"a": 1, "b": 2}"#);
        expect(&d, "1,", r#"{"a": 1, "b": null}"#);
    }

    #[test]
    fn extra_cells_are_trailing_data() {
        let d = CsvDecoder::from_header("a,b").unwrap();
        let err = decode(&d, "1,2,3").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::TrailingData);
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn open_quote_at_eol_is_unexpected_eof() {
        let d = CsvDecoder::from_header("a,b").unwrap();
        let err = decode(&d, r#"1,"unterminated"#).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnexpectedEof);
        assert_eq!(err.offset, 15);
    }

    #[test]
    fn garbage_after_closing_quote_is_rejected() {
        let d = CsvDecoder::from_header("a,b").unwrap();
        let err = decode(&d, r#""x"y,2"#).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnexpectedByte(b'y'));
        assert_eq!(err.offset, 3);
    }

    #[test]
    fn duplicate_headers_resolve_last_wins() {
        let d = CsvDecoder::from_header("k,k").unwrap();
        expect(&d, "1,2", r#"{"k": 2}"#);
    }

    #[test]
    fn custom_delimiter_tsv() {
        let d = CsvDecoder::from_header_with("a\tb", b'\t').unwrap();
        assert_eq!(d.fields(), ["a", "b"]);
        expect(&d, "1\tx,y", r#"{"a": 1, "b": "x,y"}"#);
    }

    #[test]
    fn limits_guard_row_and_cell_sizes() {
        let d = CsvDecoder::from_header("a,b")
            .unwrap()
            .with_limits(ParseLimits::new().with_max_input_bytes(8));
        let err = decode(&d, "123456,789").unwrap_err();
        assert_eq!(
            err.kind,
            ParseErrorKind::LimitExceeded(RecordLimit::InputBytes)
        );

        let d = CsvDecoder::from_header("a,b")
            .unwrap()
            .with_limits(ParseLimits::new().with_max_string_bytes(3));
        let err = decode(&d, "1,abcdef").unwrap_err();
        assert_eq!(
            err.kind,
            ParseErrorKind::LimitExceeded(RecordLimit::StringBytes)
        );
    }

    #[test]
    fn events_match_decoded_value() {
        let d = CsvDecoder::from_header("a,b").unwrap();
        let mut builder = ValueBuilder::new();
        d.decode_events(&mut (), "1,x", &mut builder).unwrap();
        assert_eq!(builder.take(), decode(&d, "1,x").unwrap());
    }

    #[test]
    fn empty_record_is_one_null_cell() {
        let d = CsvDecoder::from_header("a,b").unwrap();
        expect(&d, "", r#"{"a": null}"#);
    }
}
