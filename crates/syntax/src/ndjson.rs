//! Newline-delimited JSON collections.
//!
//! Every dataset in this workspace — the generated GitHub/Twitter/NYTimes
//! corpora, the inference inputs, the Mison workloads — is a *collection* of
//! JSON documents, stored one per line (the NDJSON convention that both
//! Spark and the massive-inference papers assume).

use crate::error::ParseError;
use crate::parser::{parse_with, ParserOptions};
use crate::serializer::to_string;
use jsonx_data::Value;

/// Parses an NDJSON text into a vector of documents.
///
/// Blank lines are skipped. The returned error carries the 0-based line
/// index of the offending record alongside the inner parse error.
pub fn parse_ndjson(text: &str) -> Result<Vec<Value>, (usize, ParseError)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_with(line.as_bytes(), ParserOptions::default()).map_err(|e| (idx, e))?;
        out.push(v);
    }
    Ok(out)
}

/// Serializes a collection as NDJSON (one compact document per line, with a
/// trailing newline when non-empty).
pub fn write_ndjson(docs: &[Value]) -> String {
    let mut out = String::new();
    for doc in docs {
        out.push_str(&to_string(doc));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    #[test]
    fn round_trip() {
        let docs = vec![json!({"a": 1}), json!([true, null]), json!("s")];
        let text = write_ndjson(&docs);
        assert_eq!(parse_ndjson(&text).unwrap(), docs);
    }

    #[test]
    fn blank_lines_skipped() {
        let docs = parse_ndjson("{\"a\":1}\n\n  \n{\"b\":2}\n").unwrap();
        assert_eq!(docs.len(), 2);
    }

    #[test]
    fn error_carries_line_index() {
        let err = parse_ndjson("{\"a\":1}\n{bad}\n").unwrap_err();
        assert_eq!(err.0, 1);
    }

    #[test]
    fn empty_input() {
        assert!(parse_ndjson("").unwrap().is_empty());
        assert_eq!(write_ndjson(&[]), "");
    }
}
