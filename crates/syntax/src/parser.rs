//! Recursive-descent DOM parser.

use crate::error::{ParseError, ParseErrorKind};
use crate::lexer::{Lexer, Token};
use crate::limits::DEFAULT_MAX_DEPTH;
use jsonx_data::{Object, Value};

/// Parser configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParserOptions {
    /// Maximum nesting depth of arrays/objects (guards against stack
    /// exhaustion on adversarial inputs).
    pub max_depth: usize,
    /// When `false` (default), non-whitespace after the value is an error.
    pub allow_trailing: bool,
    /// Cap on one string literal's content bytes; `None` disables the
    /// guard. Mirrors [`ParseLimits::max_string_bytes`] so the DOM path
    /// enforces the same bound as the event path.
    ///
    /// [`ParseLimits::max_string_bytes`]: crate::ParseLimits::max_string_bytes
    pub max_string_bytes: Option<usize>,
}

impl Default for ParserOptions {
    fn default() -> Self {
        ParserOptions {
            max_depth: DEFAULT_MAX_DEPTH,
            allow_trailing: false,
            max_string_bytes: None,
        }
    }
}

/// Parses a complete JSON document from text.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    parse_bytes(text.as_bytes())
}

/// Parses a complete JSON document from bytes.
pub fn parse_bytes(bytes: &[u8]) -> Result<Value, ParseError> {
    parse_with(bytes, ParserOptions::default())
}

/// Parses with explicit [`ParserOptions`]. Returns the value and, when
/// `allow_trailing` is set, ignores anything after it.
pub fn parse_with(bytes: &[u8], opts: ParserOptions) -> Result<Value, ParseError> {
    let mut p = Parser {
        lexer: Lexer::new(bytes),
        opts,
    };
    p.lexer.set_max_string_bytes(opts.max_string_bytes);
    let tok = p.lexer.next_token()?;
    let value = p.parse_value(tok, 0)?;
    if !opts.allow_trailing {
        p.lexer.skip_ws();
        if p.lexer.offset() != bytes.len() {
            return Err(ParseError::at(
                ParseErrorKind::TrailingData,
                bytes,
                p.lexer.offset(),
            ));
        }
    }
    Ok(value)
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    opts: ParserOptions,
}

impl<'a> Parser<'a> {
    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::at(kind, self.lexer.input(), self.lexer.offset())
    }

    fn parse_value(&mut self, tok: Token, depth: usize) -> Result<Value, ParseError> {
        match tok {
            Token::Null => Ok(Value::Null),
            Token::True => Ok(Value::Bool(true)),
            Token::False => Ok(Value::Bool(false)),
            Token::Num(n) => Ok(Value::Num(n)),
            Token::Str(s) => Ok(Value::Str(s)),
            Token::LBracket => self.parse_array(depth + 1),
            Token::LBrace => self.parse_object(depth + 1),
            Token::Eof => Err(self.err(ParseErrorKind::UnexpectedEof)),
            other => Err(self.err(ParseErrorKind::UnexpectedToken(other.name()))),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > self.opts.max_depth {
            return Err(self.err(ParseErrorKind::TooDeep));
        }
        let mut items = Vec::new();
        let mut tok = self.lexer.next_token()?;
        if tok == Token::RBracket {
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value(tok, depth)?);
            match self.lexer.next_token()? {
                Token::Comma => tok = self.lexer.next_token()?,
                Token::RBracket => return Ok(Value::Arr(items)),
                Token::Eof => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                other => return Err(self.err(ParseErrorKind::UnexpectedToken(other.name()))),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > self.opts.max_depth {
            return Err(self.err(ParseErrorKind::TooDeep));
        }
        let mut obj = Object::new();
        let mut tok = self.lexer.next_token()?;
        if tok == Token::RBrace {
            return Ok(Value::Obj(obj));
        }
        loop {
            let key = match tok {
                Token::Str(s) => s,
                Token::Eof => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                other => return Err(self.err(ParseErrorKind::UnexpectedToken(other.name()))),
            };
            match self.lexer.next_token()? {
                Token::Colon => {}
                Token::Eof => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                other => return Err(self.err(ParseErrorKind::UnexpectedToken(other.name()))),
            }
            let vtok = self.lexer.next_token()?;
            let value = self.parse_value(vtok, depth)?;
            obj.insert(key, value);
            match self.lexer.next_token()? {
                Token::Comma => tok = self.lexer.next_token()?,
                Token::RBrace => return Ok(Value::Obj(obj)),
                Token::Eof => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                other => return Err(self.err(ParseErrorKind::UnexpectedToken(other.name()))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RecordLimit;
    use jsonx_data::json;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-3").unwrap(), Value::from(-3));
        assert_eq!(parse("\"s\"").unwrap(), Value::from("s"));
    }

    #[test]
    fn composites() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": false}"#).unwrap();
        assert_eq!(v, json!({"a": [1, {"b": null}], "c": false}));
    }

    #[test]
    fn empty_composites() {
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), json!({}));
        assert_eq!(parse("[[]]").unwrap(), json!([[]]));
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k"), Some(&Value::from(2)));
        assert_eq!(v.as_object().unwrap().len(), 1);
    }

    #[test]
    fn syntax_errors() {
        for bad in [
            "",
            "[1,]",
            "{,}",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\":}",
            "{1:2}",
            "[",
            "{\"a\":1,}",
            "]",
            ",",
            "[1]]",
        ] {
            assert!(parse(bad).is_err(), "expected {bad:?} to fail");
        }
    }

    #[test]
    fn trailing_data_policy() {
        assert!(parse("1 2").is_err());
        let opts = ParserOptions {
            allow_trailing: true,
            ..Default::default()
        };
        assert_eq!(parse_with(b"1 2", opts).unwrap(), Value::from(1));
    }

    #[test]
    fn string_byte_limit_enforced_on_dom_path() {
        let opts = ParserOptions {
            max_string_bytes: Some(4),
            ..Default::default()
        };
        // Exactly at the cap parses; one over is rejected — in values
        // and in object keys alike.
        assert!(parse_with(br#"{"k": "abcd"}"#, opts).is_ok());
        let err = parse_with(br#"{"k": "abcde"}"#, opts).unwrap_err();
        assert_eq!(
            err.kind,
            ParseErrorKind::LimitExceeded(RecordLimit::StringBytes)
        );
        assert!(parse_with(br#"{"abcde": 1}"#, opts).is_err());
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = parse(&deep).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::TooDeep);
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn whitespace_everywhere() {
        let v = parse(" \t\r\n{ \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v, json!({"a": [1, 2]}));
    }

    #[test]
    fn error_position_is_meaningful() {
        let err = parse("{\"a\": @}").unwrap_err();
        assert_eq!(err.offset, 6);
    }
}
