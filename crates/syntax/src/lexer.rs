//! The JSON tokenizer.
//!
//! Operates over raw bytes, validating UTF-8 only where it can appear
//! (inside strings), so that pure-ASCII structural scanning stays cheap.

use crate::error::{ParseError, ParseErrorKind, RecordLimit};
use jsonx_data::Number;
use std::borrow::Cow;

/// A lexical token whose string payload borrows from the input when the
/// literal contains no escapes — the common case in machine-generated
/// JSON — and owns an unescaped buffer otherwise.
#[derive(Debug, Clone, PartialEq)]
pub enum RawToken<'a> {
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Colon,
    Comma,
    /// A string literal: borrowed when escape-free, owned when unescaped.
    Str(Cow<'a, str>),
    /// A number literal.
    Num(Number),
    True,
    False,
    Null,
    /// End of input.
    Eof,
}

impl<'a> RawToken<'a> {
    /// Converts to the owned [`Token`], copying borrowed string data.
    pub fn into_owned(self) -> Token {
        match self {
            RawToken::LBrace => Token::LBrace,
            RawToken::RBrace => Token::RBrace,
            RawToken::LBracket => Token::LBracket,
            RawToken::RBracket => Token::RBracket,
            RawToken::Colon => Token::Colon,
            RawToken::Comma => Token::Comma,
            RawToken::Str(s) => Token::Str(s.into_owned()),
            RawToken::Num(n) => Token::Num(n),
            RawToken::True => Token::True,
            RawToken::False => Token::False,
            RawToken::Null => Token::Null,
            RawToken::Eof => Token::Eof,
        }
    }

    /// Short name used in error messages.
    pub fn name(&self) -> &'static str {
        match self {
            RawToken::LBrace => "'{'",
            RawToken::RBrace => "'}'",
            RawToken::LBracket => "'['",
            RawToken::RBracket => "']'",
            RawToken::Colon => "':'",
            RawToken::Comma => "','",
            RawToken::Str(_) => "string",
            RawToken::Num(_) => "number",
            RawToken::True => "'true'",
            RawToken::False => "'false'",
            RawToken::Null => "'null'",
            RawToken::Eof => "end of input",
        }
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Colon,
    Comma,
    /// A string literal, unescaped.
    Str(String),
    /// A number literal.
    Num(Number),
    True,
    False,
    Null,
    /// End of input.
    Eof,
}

impl Token {
    /// Short name used in error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Token::LBrace => "'{'",
            Token::RBrace => "'}'",
            Token::LBracket => "'['",
            Token::RBracket => "']'",
            Token::Colon => "':'",
            Token::Comma => "','",
            Token::Str(_) => "string",
            Token::Num(_) => "number",
            Token::True => "'true'",
            Token::False => "'false'",
            Token::Null => "'null'",
            Token::Eof => "end of input",
        }
    }
}

/// A resumable tokenizer over a byte slice.
pub struct Lexer<'a> {
    input: &'a [u8],
    pos: usize,
    /// Cap on one string literal's content bytes; `None` disables the guard.
    max_string_bytes: Option<usize>,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `input`.
    pub fn new(input: &'a [u8]) -> Self {
        Lexer {
            input,
            pos: 0,
            max_string_bytes: None,
        }
    }

    /// Caps one string literal's content size in bytes.
    ///
    /// On the owned (escaped) path the check runs *before* the unescape
    /// buffer grows, so an oversized literal is rejected without the
    /// allocation it was trying to force.
    pub fn set_max_string_bytes(&mut self, limit: Option<usize>) {
        self.max_string_bytes = limit;
    }

    /// Current byte offset (start of the next token after whitespace).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Underlying input.
    pub fn input(&self) -> &'a [u8] {
        self.input
    }

    fn err(&self, kind: ParseErrorKind, at: usize) -> ParseError {
        ParseError::at(kind, self.input, at)
    }

    /// Skips insignificant whitespace.
    pub fn skip_ws(&mut self) {
        while let Some(&b) = self.input.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// Scans the next token, borrowing string data when possible.
    pub fn next_token_raw(&mut self) -> Result<RawToken<'a>, ParseError> {
        self.skip_ws();
        let Some(&b) = self.input.get(self.pos) else {
            return Ok(RawToken::Eof);
        };
        match b {
            b'{' => {
                self.pos += 1;
                Ok(RawToken::LBrace)
            }
            b'}' => {
                self.pos += 1;
                Ok(RawToken::RBrace)
            }
            b'[' => {
                self.pos += 1;
                Ok(RawToken::LBracket)
            }
            b']' => {
                self.pos += 1;
                Ok(RawToken::RBracket)
            }
            b':' => {
                self.pos += 1;
                Ok(RawToken::Colon)
            }
            b',' => {
                self.pos += 1;
                Ok(RawToken::Comma)
            }
            b'"' => self.scan_string_cow().map(RawToken::Str),
            b'-' | b'0'..=b'9' => self.scan_number().map(RawToken::Num),
            b't' => self.scan_keyword(b"true", RawToken::True),
            b'f' => self.scan_keyword(b"false", RawToken::False),
            b'n' => self.scan_keyword(b"null", RawToken::Null),
            other => Err(self.err(ParseErrorKind::UnexpectedByte(other), self.pos)),
        }
    }

    /// Scans the next token into the owned [`Token`] form.
    pub fn next_token(&mut self) -> Result<Token, ParseError> {
        self.next_token_raw().map(RawToken::into_owned)
    }

    fn scan_keyword(
        &mut self,
        word: &'static [u8],
        tok: RawToken<'a>,
    ) -> Result<RawToken<'a>, ParseError> {
        let end = self.pos + word.len();
        if self.input.len() >= end && &self.input[self.pos..end] == word {
            self.pos = end;
            Ok(tok)
        } else {
            Err(self.err(ParseErrorKind::BadKeyword, self.pos))
        }
    }

    /// Scans a string literal (cursor on the opening quote), borrowing the
    /// input slice when the literal contains no escapes.
    ///
    /// This is the zero-copy hot path: escape-free strings cost one UTF-8
    /// validation pass and no heap allocation. Escaped strings fall back to
    /// [`scan_string`](Self::scan_string), which builds the unescaped
    /// buffer.
    pub fn scan_string_cow(&mut self) -> Result<Cow<'a, str>, ParseError> {
        debug_assert_eq!(self.input[self.pos], b'"');
        let start = self.pos;
        self.pos += 1;
        let body_start = self.pos;
        loop {
            let Some(&b) = self.input.get(self.pos) else {
                return Err(self.err(ParseErrorKind::UnexpectedEof, start));
            };
            match b {
                b'"' => {
                    let chunk = &self.input[body_start..self.pos];
                    if let Some(limit) = self.max_string_bytes {
                        if chunk.len() > limit {
                            return Err(self.err(
                                ParseErrorKind::LimitExceeded(RecordLimit::StringBytes),
                                start,
                            ));
                        }
                    }
                    let s = std::str::from_utf8(chunk).map_err(|e| {
                        self.err(ParseErrorKind::InvalidUtf8, body_start + e.valid_up_to())
                    })?;
                    self.pos += 1;
                    return Ok(Cow::Borrowed(s));
                }
                b'\\' => {
                    // Escape seen: rewind and take the owned slow path.
                    self.pos = start;
                    return self.scan_string().map(Cow::Owned);
                }
                0x00..=0x1F => {
                    return Err(self.err(ParseErrorKind::ControlCharacterInString, self.pos));
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Scans a string literal (cursor on the opening quote).
    pub fn scan_string(&mut self) -> Result<String, ParseError> {
        debug_assert_eq!(self.input[self.pos], b'"');
        let start = self.pos;
        self.pos += 1;
        let mut out = String::new();
        // Fast path: copy runs of plain bytes between escapes.
        let mut run_start = self.pos;
        loop {
            let Some(&b) = self.input.get(self.pos) else {
                return Err(self.err(ParseErrorKind::UnexpectedEof, start));
            };
            match b {
                b'"' => {
                    self.flush_run(run_start, &mut out)?;
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.flush_run(run_start, &mut out)?;
                    self.pos += 1;
                    self.scan_escape(&mut out)?;
                    run_start = self.pos;
                }
                0x00..=0x1F => {
                    return Err(self.err(ParseErrorKind::ControlCharacterInString, self.pos));
                }
                _ => self.pos += 1,
            }
        }
    }

    fn flush_run(&self, run_start: usize, out: &mut String) -> Result<(), ParseError> {
        if run_start < self.pos {
            let chunk = &self.input[run_start..self.pos];
            if let Some(limit) = self.max_string_bytes {
                // Checked before the buffer grows: the literal is rejected
                // without paying for the allocation it would have forced.
                if out.len() + chunk.len() > limit {
                    return Err(self.err(
                        ParseErrorKind::LimitExceeded(RecordLimit::StringBytes),
                        run_start,
                    ));
                }
            }
            let s = std::str::from_utf8(chunk)
                .map_err(|e| self.err(ParseErrorKind::InvalidUtf8, run_start + e.valid_up_to()))?;
            out.push_str(s);
        }
        Ok(())
    }

    fn scan_escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        let at = self.pos - 1;
        let Some(&esc) = self.input.get(self.pos) else {
            return Err(self.err(ParseErrorKind::UnexpectedEof, at));
        };
        self.pos += 1;
        match esc {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.scan_hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: must be followed by \uDC00..\uDFFF.
                    if self.input.get(self.pos) == Some(&b'\\')
                        && self.input.get(self.pos + 1) == Some(&b'u')
                    {
                        self.pos += 2;
                        let lo = self.scan_hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err(ParseErrorKind::LoneSurrogate, at));
                        }
                        let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        out.push(char::from_u32(c).expect("valid supplementary code point"));
                    } else {
                        return Err(self.err(ParseErrorKind::LoneSurrogate, at));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err(ParseErrorKind::LoneSurrogate, at));
                } else {
                    out.push(char::from_u32(hi).expect("BMP non-surrogate code point"));
                }
            }
            _ => return Err(self.err(ParseErrorKind::BadEscape, at)),
        }
        Ok(())
    }

    fn scan_hex4(&mut self) -> Result<u32, ParseError> {
        let at = self.pos;
        if self.pos + 4 > self.input.len() {
            return Err(self.err(ParseErrorKind::UnexpectedEof, at));
        }
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.input[self.pos];
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err(ParseErrorKind::BadUnicodeEscape, at)),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    /// Scans a number literal (cursor on `-` or a digit).
    pub fn scan_number(&mut self) -> Result<Number, ParseError> {
        let start = self.pos;
        let bytes = self.input;
        let mut i = self.pos;
        let mut is_float = false;

        if bytes.get(i) == Some(&b'-') {
            i += 1;
        }
        // Integer part: `0` or non-zero digit followed by digits.
        match bytes.get(i) {
            Some(b'0') => i += 1,
            Some(b'1'..=b'9') => {
                while matches!(bytes.get(i), Some(b'0'..=b'9')) {
                    i += 1;
                }
            }
            _ => return Err(self.err(ParseErrorKind::BadNumber, start)),
        }
        // Reject a second digit after a leading zero (e.g. "01").
        if matches!(bytes.get(i), Some(b'0'..=b'9')) {
            return Err(self.err(ParseErrorKind::BadNumber, start));
        }
        if bytes.get(i) == Some(&b'.') {
            is_float = true;
            i += 1;
            if !matches!(bytes.get(i), Some(b'0'..=b'9')) {
                return Err(self.err(ParseErrorKind::BadNumber, start));
            }
            while matches!(bytes.get(i), Some(b'0'..=b'9')) {
                i += 1;
            }
        }
        if matches!(bytes.get(i), Some(b'e' | b'E')) {
            is_float = true;
            i += 1;
            if matches!(bytes.get(i), Some(b'+' | b'-')) {
                i += 1;
            }
            if !matches!(bytes.get(i), Some(b'0'..=b'9')) {
                return Err(self.err(ParseErrorKind::BadNumber, start));
            }
            while matches!(bytes.get(i), Some(b'0'..=b'9')) {
                i += 1;
            }
        }

        let text = std::str::from_utf8(&bytes[start..i]).expect("number bytes are ASCII");
        self.pos = i;
        if !is_float {
            if let Ok(int) = text.parse::<i64>() {
                return Ok(Number::Int(int));
            }
            // Integer overflowing i64 degrades to f64, like most parsers.
        }
        let f: f64 = text
            .parse()
            .map_err(|_| self.err(ParseErrorKind::BadNumber, start))?;
        Number::from_f64(f).ok_or_else(|| self.err(ParseErrorKind::NumberOutOfRange, start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_all(s: &str) -> Result<Vec<Token>, ParseError> {
        let mut lx = Lexer::new(s.as_bytes());
        let mut out = Vec::new();
        loop {
            let t = lx.next_token()?;
            if t == Token::Eof {
                return Ok(out);
            }
            out.push(t);
        }
    }

    #[test]
    fn structural_tokens() {
        assert_eq!(
            lex_all("{ } [ ] : ,").unwrap(),
            vec![
                Token::LBrace,
                Token::RBrace,
                Token::LBracket,
                Token::RBracket,
                Token::Colon,
                Token::Comma
            ]
        );
    }

    #[test]
    fn keywords() {
        assert_eq!(
            lex_all("true false null").unwrap(),
            vec![Token::True, Token::False, Token::Null]
        );
        assert!(lex_all("tru").is_err());
        assert!(lex_all("nul").is_err());
    }

    #[test]
    fn simple_strings() {
        assert_eq!(
            lex_all(r#""hello""#).unwrap(),
            vec![Token::Str("hello".into())]
        );
        assert_eq!(lex_all(r#""""#).unwrap(), vec![Token::Str(String::new())]);
    }

    #[test]
    fn escapes() {
        assert_eq!(
            lex_all(r#""a\"b\\c\/d\n\t\r\b\f""#).unwrap(),
            vec![Token::Str("a\"b\\c/d\n\t\r\u{8}\u{c}".into())]
        );
        assert_eq!(
            lex_all(r#""Aé中""#).unwrap(),
            vec![Token::Str("Aé中".into())]
        );
    }

    #[test]
    fn surrogate_pairs() {
        assert_eq!(lex_all(r#""😀""#).unwrap(), vec![Token::Str("😀".into())]);
        assert!(lex_all(r#""\ud83d""#).is_err()); // lone high
        assert!(lex_all(r#""\ude00""#).is_err()); // lone low
        assert!(lex_all(r#""\ud83dx""#).is_err()); // high not followed by \u
    }

    #[test]
    fn raw_utf8_passthrough() {
        assert_eq!(
            lex_all("\"héllo→\"").unwrap(),
            vec![Token::Str("héllo→".into())]
        );
    }

    #[test]
    fn control_characters_rejected() {
        assert!(lex_all("\"a\u{1}b\"").is_err());
        assert!(lex_all("\"a\nb\"").is_err()); // raw newline must be escaped
    }

    #[test]
    fn numbers_integral_and_float() {
        assert_eq!(lex_all("0").unwrap(), vec![Token::Num(Number::Int(0))]);
        assert_eq!(lex_all("-12").unwrap(), vec![Token::Num(Number::Int(-12))]);
        assert_eq!(
            lex_all("3.25").unwrap(),
            vec![Token::Num(Number::Float(3.25))]
        );
        assert_eq!(
            lex_all("1e3").unwrap(),
            vec![Token::Num(Number::Float(1000.0))]
        );
        assert_eq!(
            lex_all("-2.5E-1").unwrap(),
            vec![Token::Num(Number::Float(-0.25))]
        );
    }

    #[test]
    fn number_grammar_rejections() {
        for bad in ["01", "-", "1.", ".5", "1e", "1e+", "+1", "--1", "1.e3"] {
            assert!(lex_all(bad).is_err(), "expected {bad:?} to fail");
        }
    }

    #[test]
    fn huge_integer_degrades_to_float() {
        let toks = lex_all("123456789012345678901234567890").unwrap();
        match &toks[0] {
            Token::Num(Number::Float(f)) => assert!(*f > 1e29),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn number_overflow_to_infinity_is_error() {
        assert!(lex_all("1e400").is_err());
    }

    #[test]
    fn error_positions() {
        let mut lx = Lexer::new(b"   @");
        let err = lx.next_token().unwrap_err();
        assert_eq!(err.offset, 3);
        assert_eq!(err.kind, ParseErrorKind::UnexpectedByte(b'@'));
    }

    #[test]
    fn invalid_utf8_in_string() {
        let mut lx = Lexer::new(b"\"\xff\"");
        assert_eq!(
            lx.next_token().unwrap_err().kind,
            ParseErrorKind::InvalidUtf8
        );
    }

    #[test]
    fn escape_free_strings_borrow_from_input() {
        let input = r#""plain key" "héllo→😀""#;
        let mut lx = Lexer::new(input.as_bytes());
        for expected in ["plain key", "héllo→😀"] {
            match lx.next_token_raw().unwrap() {
                RawToken::Str(cow) => {
                    assert!(
                        matches!(cow, Cow::Borrowed(_)),
                        "escape-free string must not allocate: {cow:?}"
                    );
                    assert_eq!(cow, expected);
                }
                other => panic!("expected string, got {other:?}"),
            }
        }
    }

    #[test]
    fn escaped_strings_fall_back_to_owned() {
        let mut lx = Lexer::new(br#""a\nb""#);
        match lx.next_token_raw().unwrap() {
            RawToken::Str(cow) => {
                assert!(matches!(cow, Cow::Owned(_)));
                assert_eq!(cow, "a\nb");
            }
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn raw_and_owned_lexing_agree() {
        let input = r#"{"k": ["a\t", 1, true, null, "z"]}"#;
        let mut raw = Lexer::new(input.as_bytes());
        let mut owned = Lexer::new(input.as_bytes());
        loop {
            let r = raw.next_token_raw().unwrap();
            let o = owned.next_token().unwrap();
            let done = r == RawToken::Eof;
            assert_eq!(r.into_owned(), o);
            if done {
                break;
            }
        }
    }

    #[test]
    fn string_byte_limit_guards_both_paths() {
        // Borrowed (escape-free) path.
        let mut lx = Lexer::new(br#""abcdefgh""#);
        lx.set_max_string_bytes(Some(4));
        assert_eq!(
            lx.next_token_raw().unwrap_err().kind,
            ParseErrorKind::LimitExceeded(RecordLimit::StringBytes)
        );
        // Owned (escaped) path: rejected before the unescape buffer grows.
        let mut lx = Lexer::new(br#""ab\ncdefgh""#);
        lx.set_max_string_bytes(Some(4));
        assert_eq!(
            lx.next_token_raw().unwrap_err().kind,
            ParseErrorKind::LimitExceeded(RecordLimit::StringBytes)
        );
        // At or under the limit both paths succeed.
        for input in [&br#""abcd""#[..], br#""ab\ncd""#] {
            let mut lx = Lexer::new(input);
            lx.set_max_string_bytes(Some(6));
            assert!(matches!(lx.next_token_raw().unwrap(), RawToken::Str(_)));
        }
    }

    #[test]
    fn cow_errors_match_owned_errors() {
        for bad in [&b"\"a"[..], b"\"a\x01b\"", b"\"\xffz\""] {
            let raw_err = Lexer::new(bad).next_token_raw().unwrap_err();
            let owned_err = Lexer::new(bad).next_token().unwrap_err();
            assert_eq!(raw_err.kind, owned_err.kind);
            assert_eq!(raw_err.offset, owned_err.offset);
        }
    }
}
