//! Resource limits shared by the DOM parser and the streaming event
//! parser.
//!
//! Real-world NDJSON collections contain pathological records: nesting
//! bombs that would overflow a recursive walk, multi-megabyte lines, and
//! giant string literals whose unescape buffers can OOM a worker. One
//! [`ParseLimits`] value bounds all three, so a single bad record costs a
//! [`LimitExceeded`](crate::ParseErrorKind::LimitExceeded) (or
//! [`TooDeep`](crate::ParseErrorKind::TooDeep)) error instead of a stack
//! overflow or an allocation spike.
//!
//! [`DEFAULT_MAX_DEPTH`] is the single source of the nesting default: both
//! [`ParserOptions`](crate::ParserOptions) and
//! [`RawEventParser`](crate::RawEventParser) construct from it, so the DOM
//! and streaming paths can never silently diverge on how deep a document
//! may nest.

/// Default nesting-depth cap shared by [`ParserOptions`](crate::ParserOptions)
/// and [`RawEventParser`](crate::RawEventParser).
pub const DEFAULT_MAX_DEPTH: usize = 128;

/// Per-record resource limits.
///
/// `max_depth` is always enforced; the byte limits are opt-in (`None`
/// disables them) because the right bound depends on the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum nesting depth of arrays/objects (guards the frame stack).
    pub max_depth: usize,
    /// Maximum size of one record (one NDJSON line) in bytes.
    pub max_input_bytes: Option<usize>,
    /// Maximum size of one string literal's content in bytes (guards the
    /// unescape buffer).
    pub max_string_bytes: Option<usize>,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_depth: DEFAULT_MAX_DEPTH,
            max_input_bytes: None,
            max_string_bytes: None,
        }
    }
}

impl ParseLimits {
    /// The defaults: depth capped at [`DEFAULT_MAX_DEPTH`], byte limits off.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the nesting-depth cap.
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Caps one record's total size in bytes.
    pub fn with_max_input_bytes(mut self, limit: usize) -> Self {
        self.max_input_bytes = Some(limit);
        self
    }

    /// Caps one string literal's content size in bytes.
    pub fn with_max_string_bytes(mut self, limit: usize) -> Self {
        self.max_string_bytes = Some(limit);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_historical_depth() {
        let l = ParseLimits::default();
        assert_eq!(l.max_depth, 128);
        assert_eq!(l.max_input_bytes, None);
        assert_eq!(l.max_string_bytes, None);
    }

    #[test]
    fn builders_compose() {
        let l = ParseLimits::new()
            .with_max_depth(4)
            .with_max_input_bytes(1024)
            .with_max_string_bytes(64);
        assert_eq!(l.max_depth, 4);
        assert_eq!(l.max_input_bytes, Some(1024));
        assert_eq!(l.max_string_bytes, Some(64));
    }
}
